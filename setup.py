"""Legacy setup shim.

The environment this reproduction targets has no ``wheel`` package, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` goes through this shim instead.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
