"""Slotted adjacency slabs: many small int sets in one flat array.

The dict-of-sets adjacency layout pays >200 bytes of ``set`` overhead
per node before storing a single neighbour.  :class:`SlotSlabs` packs
all the per-node sequences ("slots") into one shared ``array('q')``
data slab with three parallel header arrays (offset, length, capacity).
A slot with no members costs 16 bytes of headers; each member costs 8
bytes plus amortized-doubling slack.

Growth policy
-------------
A full slot doubles: its segment is copied to the tail of the data slab
and the old segment becomes a tombstone (counted in ``_dead``).  When
tombstones exceed half the slab (and a 4096-cell floor), the slab is
compacted in one O(live) pass that rewrites every live segment with a
tight capacity.  Removal is swap-with-last inside the segment, so the
slab never tombstones on removal — only growth and slot clearing leave
dead cells behind.

Membership
----------
Small slots answer membership/position queries with ``array.index`` (a
C scan over at most ``OVERLAY_MIN`` cells).  Slots that reach
``OVERLAY_MIN`` members get a per-slot overlay ``dict[value -> pos]``
so hub nodes keep O(1) membership and removal; the overlay is dropped
once the slot shrinks well below the threshold (hysteresis at 1/4).

Slots hold *sets* semantically: callers must not append duplicates
(the graph/index layers check membership first, exactly as the dict
core's ``set.add`` paths did behind their own pre-checks).
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator

#: slots at or above this many members carry a value→position overlay dict
OVERLAY_MIN = 256
#: compaction floor: never compact slabs smaller than this many dead cells
COMPACT_MIN_DEAD = 4096


class SlotSlabs:
    """A collection of growable int sequences packed into one array."""

    __slots__ = ("_data", "_off", "_len", "_cap", "_free", "_dead", "_overlay")

    def __init__(self) -> None:
        self._data = array("q")
        self._off = array("q")
        self._len = array("i")
        self._cap = array("i")
        self._free: list[int] = []
        self._dead: int = 0
        self._overlay: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------

    def new_slot(self) -> int:
        """Allocate an empty slot (recycling freed ids) and return it."""
        if self._free:
            return self._free.pop()
        slot = len(self._off)
        self._off.append(0)
        self._len.append(0)
        self._cap.append(0)
        return slot

    def free_slot(self, slot: int) -> None:
        """Clear *slot* and return its id to the freelist."""
        self.clear_slot(slot)
        self._free.append(slot)

    def clear_slot(self, slot: int) -> None:
        """Drop all members of *slot*; its segment becomes tombstones."""
        self._dead += self._cap[slot]
        self._off[slot] = 0
        self._len[slot] = 0
        self._cap[slot] = 0
        self._overlay.pop(slot, None)
        self._maybe_compact()

    @property
    def num_slots(self) -> int:
        return len(self._off)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def length(self, slot: int) -> int:
        return self._len[slot]

    def contains(self, slot: int, value: int) -> bool:
        overlay = self._overlay.get(slot)
        if overlay is not None:
            return value in overlay
        off = self._off[slot]
        try:
            self._data.index(value, off, off + self._len[slot])
            return True
        except ValueError:
            return False

    def to_list(self, slot: int) -> list[int]:
        off = self._off[slot]
        return self._data[off : off + self._len[slot]].tolist()

    def segment(self, slot: int) -> array:
        """The slot's members as a fresh ``array('q')`` (C-speed copy)."""
        off = self._off[slot]
        return self._data[off : off + self._len[slot]]

    def iter_slot(self, slot: int) -> Iterator[int]:
        """Iterate the slot's members; the slab must not be mutated."""
        data = self._data
        off = self._off[slot]
        return iter(data[off : off + self._len[slot]])

    # ------------------------------------------------------------------
    # Mutators
    # ------------------------------------------------------------------

    def append(self, slot: int, value: int) -> None:
        """Add *value* to *slot* (caller guarantees it is not present)."""
        length = self._len[slot]
        if length == self._cap[slot]:
            self._grow(slot)
        self._data[self._off[slot] + length] = value
        self._len[slot] = length + 1
        overlay = self._overlay.get(slot)
        if overlay is not None:
            overlay[value] = length
        elif length + 1 >= OVERLAY_MIN:
            self._build_overlay(slot)

    def remove(self, slot: int, value: int, missing_ok: bool = False) -> bool:
        """Swap-remove *value* from *slot*; returns whether it was present."""
        off = self._off[slot]
        length = self._len[slot]
        overlay = self._overlay.get(slot)
        if overlay is not None:
            pos = overlay.pop(value, None)
            if pos is None:
                if missing_ok:
                    return False
                raise ValueError(f"value {value} not in slot {slot}")
        else:
            try:
                pos = self._data.index(value, off, off + length) - off
            except ValueError:
                if missing_ok:
                    return False
                raise ValueError(f"value {value} not in slot {slot}") from None
        last = length - 1
        if pos != last:
            moved = self._data[off + last]
            self._data[off + pos] = moved
            if overlay is not None:
                overlay[moved] = pos
        self._len[slot] = last
        if overlay is not None and last < OVERLAY_MIN // 4:
            del self._overlay[slot]
        return True

    # ------------------------------------------------------------------
    # Growth and compaction
    # ------------------------------------------------------------------

    def _grow(self, slot: int) -> None:
        cap = self._cap[slot]
        new_cap = 4 if cap == 0 else cap * 2
        data = self._data
        new_off = len(data)
        if cap:
            old_off = self._off[slot]
            data.extend(data[old_off : old_off + cap])
            self._dead += cap
        data.frombytes(bytes(8 * (new_cap - cap)))
        self._off[slot] = new_off
        self._cap[slot] = new_cap
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._dead > COMPACT_MIN_DEAD and self._dead * 2 > len(self._data):
            self.compact()

    def compact(self) -> None:
        """Rewrite every live segment contiguously with tight capacity."""
        old = self._data
        new = array("q")
        for slot in range(len(self._off)):
            length = self._len[slot]
            new_off = len(new)
            if length:
                off = self._off[slot]
                new.extend(old[off : off + length])
            self._off[slot] = new_off
            self._cap[slot] = length
        self._data = new
        self._dead = 0

    def _build_overlay(self, slot: int) -> None:
        off = self._off[slot]
        segment = self._data[off : off + self._len[slot]]
        self._overlay[slot] = {value: pos for pos, value in enumerate(segment)}

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def copy(self) -> "SlotSlabs":
        clone = SlotSlabs()
        clone._data = array("q", self._data)
        clone._off = array("q", self._off)
        clone._len = array("i", self._len)
        clone._cap = array("i", self._cap)
        clone._free = list(self._free)
        clone._dead = self._dead
        clone._overlay = {slot: dict(ov) for slot, ov in self._overlay.items()}
        return clone

    def approx_bytes(self) -> int:
        """Resident bytes of the slab, headers, freelist and overlays."""
        total = (
            sys.getsizeof(self._data)
            + sys.getsizeof(self._off)
            + sys.getsizeof(self._len)
            + sys.getsizeof(self._cap)
            + sys.getsizeof(self._free)
            + sys.getsizeof(self._overlay)
        )
        for overlay in self._overlay.values():
            total += sys.getsizeof(overlay) + 32 * len(overlay)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SlotSlabs slots={len(self._off)} cells={len(self._data)} "
            f"dead={self._dead} overlays={len(self._overlay)}>"
        )
