"""String↔int label interning for the graph core.

A million-node XMark graph carries a few dozen distinct labels; storing
one Python str reference per node in a dict costs ~50 bytes per entry
even with shared string objects.  The slab core stores an ``array('i')``
of label ids instead (4 bytes per node) and resolves them through this
two-way table.  The table is append-only: labels of deleted nodes stay
interned (a handful of strings), so label ids are stable for the life of
the graph — which is what lets the journal undo paths restore a removed
node's label by re-interning it.
"""

from __future__ import annotations

import sys


class LabelInterner:
    """An append-only two-way string↔int table."""

    __slots__ = ("_names", "_ids")

    def __init__(self) -> None:
        self._names: list[str] = []
        self._ids: dict[str, int] = {}

    def intern(self, name: str) -> int:
        """The id of *name*, assigning the next free id on first sight."""
        label_id = self._ids.get(name)
        if label_id is None:
            label_id = len(self._names)
            self._names.append(name)
            self._ids[name] = label_id
        return label_id

    def name_of(self, label_id: int) -> str:
        return self._names[label_id]

    def id_of(self, name: str) -> int:
        """The id of *name*; raises :class:`KeyError` if never interned."""
        return self._ids[name]

    def __contains__(self, name: object) -> bool:
        return name in self._ids

    def __len__(self) -> int:
        return len(self._names)

    def copy(self) -> "LabelInterner":
        clone = LabelInterner()
        clone._names = list(self._names)
        clone._ids = dict(self._ids)
        return clone

    def approx_bytes(self) -> int:
        total = sys.getsizeof(self._names) + sys.getsizeof(self._ids)
        for name in self._names:
            total += sys.getsizeof(name) + 32  # string + dict entry overhead
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LabelInterner labels={len(self._names)}>"
