"""Deep resident-size accounting shared by ``approx_bytes()`` methods.

``sys.getsizeof`` is shallow; :func:`deep_sizeof` walks the standard
container types iteratively (cycle-safe via an id-set) and sums the
allocations.  It deliberately does **not** follow arbitrary object
attributes: the cores hold only dicts/sets/lists/arrays of ints and
strings, and bounding the walk to those keeps the accounting fast and
deterministic.  Interpreter-level sharing (small-int cache, interned
strings) means the figure is an upper bound on private bytes — the
same bound for both cores, which is all the A/B ratio needs.
"""

from __future__ import annotations

import sys
from array import array

_CONTAINERS = (dict, list, tuple, set, frozenset)


def deep_sizeof(obj: object, seen: set[int] | None = None) -> int:
    """Deep ``getsizeof`` over standard containers, cycle-safe."""
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    while stack:
        item = stack.pop()
        item_id = id(item)
        if item_id in seen:
            continue
        seen.add(item_id)
        total += sys.getsizeof(item)
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, _CONTAINERS):
            stack.extend(item)
        elif isinstance(item, array):
            pass  # flat buffer; getsizeof already counts it
    return total
