"""Array-backed storage primitives for the graph and index cores.

The dict-of-sets representation that carried the reproduction to ~150k
nodes spends most of its bytes on per-object overhead: a Python ``set``
costs >200 bytes before it holds a single element, and a million sparse
oid keys cost a dict slot plus a boxed int each.  This package provides
the compact building blocks the rewritten cores are made of:

* :class:`~repro.core.intmap.PagedIntMap` — an int→int map stored as
  fixed-size ``array('q')`` pages (~8 bytes per entry for dense keys);
* :class:`~repro.core.slab.SlotSlabs` — slotted adjacency slabs: many
  small int sequences packed into one ``array('q')`` with per-slot
  capacity, amortized-doubling growth and tombstone compaction;
* :class:`~repro.core.labels.LabelInterner` — a string↔int label table;
* :mod:`~repro.core.codec` — delta codecs for sorted int arrays (the
  wire format of v2 extents);
* :mod:`~repro.core.sizing` — deep ``approx_bytes`` accounting;
* :mod:`~repro.core.refimpl` — the retained dict-backed reference
  implementations (:class:`DictGraph`/:class:`DictIndex`), kept as the
  differential-testing oracle and the ``--legacy-core`` A/B baseline.
"""

from repro.core.codec import delta_decode, delta_encode
from repro.core.intmap import PagedIntMap
from repro.core.labels import LabelInterner
from repro.core.sizing import deep_sizeof
from repro.core.slab import SlotSlabs

__all__ = [
    "PagedIntMap",
    "SlotSlabs",
    "LabelInterner",
    "delta_encode",
    "delta_decode",
    "deep_sizeof",
]
