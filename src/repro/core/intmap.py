"""A paged int→int map: the dense-id lookup table of the slab core.

``dict[int, int]`` costs ~100 bytes per entry (slot + two boxed ints);
for the core's hot mappings (oid → slot, oid → inode id, oid → extent
position) the keys are dense machine ints, so a paged flat array gets
the same O(1) lookup at ~8 bytes per entry.  Keys hash by ``key >> 10``
into fixed 1024-entry ``array('q')`` pages; absent entries hold ``-1``.

Values must be non-negative (``-1`` is the absence sentinel).  Keys may
be any int, including negatives — Python's floor-division semantics
make ``key >> PAGE_BITS`` / ``key & PAGE_MASK`` well-defined there too.
Non-int keys are simply absent (lookups return the default), matching
the dict-backed core where a str key was never found among int oids.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional

PAGE_BITS = 10
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1

_EMPTY_PAGE_BYTES = b"\xff" * (8 * PAGE_SIZE)  # -1 in two's complement


def _new_page() -> array:
    return array("q", _EMPTY_PAGE_BYTES)


class PagedIntMap:
    """An int→int mapping stored as pages of ``array('q')``.

    Implements the read surface the journal/serving layers rely on
    (``get``, ``__contains__``, ``__getitem__``, iteration in ascending
    key order) plus the mutators the cores need.
    """

    __slots__ = ("_pages", "_count")

    def __init__(self) -> None:
        self._pages: dict[int, array] = {}
        self._count: int = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: int, default: Optional[int] = None) -> Optional[int]:
        """The value at *key*, or *default* when absent (dict semantics)."""
        if type(key) is not int:
            if not isinstance(key, int):  # bool is fine; str/float are absent
                return default
            key = int(key)
        page = self._pages.get(key >> PAGE_BITS)
        if page is None:
            return default
        value = page[key & PAGE_MASK]
        return default if value < 0 else value

    def __getitem__(self, key: int) -> int:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __contains__(self, key: object) -> bool:
        return self.get(key) is not None  # type: ignore[arg-type]

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        """Iterate over present keys in ascending order."""
        for page_no in sorted(self._pages):
            page = self._pages[page_no]
            base = page_no << PAGE_BITS
            for offset in range(PAGE_SIZE):
                if page[offset] >= 0:
                    yield base + offset

    def keys(self) -> Iterator[int]:
        return iter(self)

    def items(self) -> Iterator[tuple[int, int]]:
        for page_no in sorted(self._pages):
            page = self._pages[page_no]
            base = page_no << PAGE_BITS
            for offset in range(PAGE_SIZE):
                value = page[offset]
                if value >= 0:
                    yield base + offset, value

    # ------------------------------------------------------------------
    # Mutators
    # ------------------------------------------------------------------

    def __setitem__(self, key: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"PagedIntMap values must be >= 0, got {value}")
        page_no = key >> PAGE_BITS
        page = self._pages.get(page_no)
        if page is None:
            page = self._pages[page_no] = _new_page()
        offset = key & PAGE_MASK
        if page[offset] < 0:
            self._count += 1
        page[offset] = value

    def __delitem__(self, key: int) -> None:
        page = self._pages.get(key >> PAGE_BITS)
        offset = key & PAGE_MASK
        if page is None or page[offset] < 0:
            raise KeyError(key)
        page[offset] = -1
        self._count -= 1

    def pop(self, key: int, *default: int) -> Optional[int]:
        value = self.get(key)
        if value is None:
            if default:
                return default[0]
            raise KeyError(key)
        del self[key]
        return value

    def clear(self) -> None:
        self._pages.clear()
        self._count = 0

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def set_all(self, keys, value: int) -> None:
        """Bulk ``self[k] = value`` over *keys*.

        The keys must be distinct and previously absent (the index-build
        fast path: assigning a freshly created inode to a block of
        dnodes) — the count is advanced without per-key occupancy
        checks.
        """
        if value < 0:
            raise ValueError(f"PagedIntMap values must be >= 0, got {value}")
        pages = self._pages
        count = 0
        for key in keys:
            page_no = key >> PAGE_BITS
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = _new_page()
            page[key & PAGE_MASK] = value
            count += 1
        self._count += count

    def set_enumerated(self, keys) -> None:
        """Bulk ``self[keys[i]] = i``.

        Same distinct/previously-absent contract as :meth:`set_all`; the
        index-build fast path uses it to assign extent positions to a
        block in one pass.
        """
        pages = self._pages
        position = 0
        for key in keys:
            page_no = key >> PAGE_BITS
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = _new_page()
            page[key & PAGE_MASK] = position
            position += 1
        self._count += position

    def copy(self) -> "PagedIntMap":
        clone = PagedIntMap()
        clone._pages = {no: array("q", page) for no, page in self._pages.items()}
        clone._count = self._count
        return clone

    def approx_bytes(self) -> int:
        """Resident bytes of the pages plus the page directory."""
        import sys

        total = sys.getsizeof(self._pages)
        for page in self._pages.values():
            total += sys.getsizeof(page) + 64  # page + dict entry overhead
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PagedIntMap len={self._count} pages={len(self._pages)}>"
