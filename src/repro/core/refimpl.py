"""The retained dict-backed reference core (pre-slab fossils).

:class:`DictGraph` and :class:`DictIndex` are the dict-of-sets
implementations that :class:`~repro.graph.datagraph.DataGraph` and
:class:`~repro.index.base.StructuralIndex` had before the array-backed
rewrite, preserved verbatim (modulo class names).  They serve two
purposes:

* the **differential oracle** — ``tests/core/test_differential.py``
  drives both cores through identical mutation scripts and asserts
  byte-identical observable state, rollbacks and fingerprints;
* the **memory/speed baseline** — ``bench_hotpath``'s memory tiers and
  the ``--legacy-core`` escape hatch A/B the slab core against this one.

Do not "fix" or modernise this module: its value is that it reproduces
the historical behaviour exactly.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any, Optional

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    InvalidIndexError,
    NodeNotFoundError,
    RootError,
    StructuralIndexError,
)
from repro.graph.datagraph import ROOT_LABEL, EdgeKind


class DictGraph:
    """The dict-of-sets data graph (historical ``DataGraph``).

    Public API and journal semantics are identical to
    :class:`~repro.graph.datagraph.DataGraph`; only the storage differs.
    """

    __slots__ = (
        "_labels",
        "_values",
        "_succ",
        "_pred",
        "_edge_kinds",
        "_root",
        "_next_oid",
        "_num_edges",
        "_journal",
        "_generation",
        "_succ_view",
        "_pred_view",
        "_view_generation",
    )

    def __init__(self) -> None:
        self._labels: dict[int, str] = {}
        self._values: dict[int, Any] = {}
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        self._edge_kinds: dict[tuple[int, int], EdgeKind] = {}
        self._root: Optional[int] = None
        self._next_oid: int = 0
        self._num_edges: int = 0
        self._journal = None
        self._generation: int = 0
        self._succ_view: dict[int, frozenset[int]] = {}
        self._pred_view: dict[int, frozenset[int]] = {}
        self._view_generation: int = 0

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    def add_node(self, label: str, value: Any = None, oid: Optional[int] = None) -> int:
        if oid is None:
            oid = self._next_oid
            while oid in self._labels:  # skip oids taken explicitly
                oid += 1
        elif oid in self._labels:
            raise DuplicateNodeError(oid)
        if not isinstance(label, str):
            raise TypeError(f"label must be a string, got {type(label).__name__}")
        prev_next_oid = self._next_oid
        self._labels[oid] = label
        if value is not None:
            self._values[oid] = value
        self._succ[oid] = set()
        self._pred[oid] = set()
        self._next_oid = max(self._next_oid, oid + 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_added", (oid, prev_next_oid))
        return oid

    def add_root(self, oid: Optional[int] = None) -> int:
        if self._root is not None:
            raise RootError("data graph already has a root node")
        root = self.add_node(ROOT_LABEL, oid=oid)
        self._root = root
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "root_set", (root,))
        return root

    def remove_node(self, oid: int) -> None:
        self._require_node(oid)
        for target in list(self._succ[oid]):
            self.remove_edge(oid, target)
        for source in list(self._pred[oid]):
            self.remove_edge(source, oid)
        label = self._labels[oid]
        value = self._values.get(oid)
        was_root = self._root == oid
        del self._labels[oid]
        self._values.pop(oid, None)
        del self._succ[oid]
        del self._pred[oid]
        if was_root:
            self._root = None
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_removed", (oid, label, value, was_root))

    def has_node(self, oid: int) -> bool:
        return oid in self._labels

    def label(self, oid: int) -> str:
        self._require_node(oid)
        return self._labels[oid]

    def value(self, oid: int) -> Any:
        self._require_node(oid)
        return self._values.get(oid)

    def set_value(self, oid: int, value: Any) -> None:
        self._require_node(oid)
        old = self._values.get(oid)
        if value is None:
            self._values.pop(oid, None)
        else:
            self._values[oid] = value
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "value_set", (oid, old))

    def relabel_node(self, oid: int, label: str) -> None:
        self._require_node(oid)
        if oid == self._root and label != ROOT_LABEL:
            raise RootError("the root node must keep the ROOT label")
        old = self._labels[oid]
        self._labels[oid] = label
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "relabeled", (oid, old))

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE) -> None:
        self._require_node(source)
        self._require_node(target)
        if target in self._succ[source]:
            raise DuplicateEdgeError(source, target)
        if target == self._root:
            raise RootError("the root node cannot have incoming edges")
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._edge_kinds[(source, target)] = kind
        self._num_edges += 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_added", (source, target))

    def remove_edge(self, source: int, target: int) -> None:
        self._require_node(source)
        self._require_node(target)
        if target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        kind = self._edge_kinds[(source, target)]
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        del self._edge_kinds[(source, target)]
        self._num_edges -= 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_removed", (source, target, kind))

    def has_edge(self, source: int, target: int) -> bool:
        return source in self._succ and target in self._succ[source]

    def edge_kind(self, source: int, target: int) -> EdgeKind:
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._edge_kinds[(source, target)]

    # ------------------------------------------------------------------
    # Views and queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        if self._root is None:
            raise RootError("data graph has no root node")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root is not None

    @property
    def generation(self) -> int:
        return self._generation

    def succ(self, oid: int) -> frozenset[int]:
        self._require_node(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._succ_view.get(oid)
        if view is None:
            view = self._succ_view[oid] = frozenset(self._succ[oid])
        return view

    def pred(self, oid: int) -> frozenset[int]:
        self._require_node(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._pred_view.get(oid)
        if view is None:
            view = self._pred_view[oid] = frozenset(self._pred[oid])
        return view

    def iter_succ(self, oid: int) -> Iterator[int]:
        self._require_node(oid)
        return iter(self._succ[oid])

    def iter_pred(self, oid: int) -> Iterator[int]:
        self._require_node(oid)
        return iter(self._pred[oid])

    def out_degree(self, oid: int) -> int:
        self._require_node(oid)
        return len(self._succ[oid])

    def in_degree(self, oid: int) -> int:
        self._require_node(oid)
        return len(self._pred[oid])

    def nodes(self) -> Iterator[int]:
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[int, int]]:
        return iter(self._edge_kinds)

    def edges_of_kind(self, kind: EdgeKind) -> Iterator[tuple[int, int]]:
        return (edge for edge, k in self._edge_kinds.items() if k is kind)

    def labels(self) -> set[str]:
        return set(self._labels.values())

    def nodes_with_label(self, label: str) -> list[int]:
        return [oid for oid, lab in self._labels.items() if lab == label]

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, Hashable) and oid in self._labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DictGraph nodes={self.num_nodes} edges={self.num_edges} "
            f"labels={len(self.labels())}>"
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def copy(self) -> "DictGraph":
        clone = DictGraph()
        clone._labels = dict(self._labels)
        clone._values = dict(self._values)
        clone._succ = {oid: set(s) for oid, s in self._succ.items()}
        clone._pred = {oid: set(p) for oid, p in self._pred.items()}
        clone._edge_kinds = dict(self._edge_kinds)
        clone._root = self._root
        clone._next_oid = self._next_oid
        clone._num_edges = self._num_edges
        return clone

    def add_subgraph(self, other: "DictGraph", preserve_oids: bool = False) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for oid in other.nodes():
            if preserve_oids:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid), oid=oid)
            else:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid))
        for source, target in other.edges():
            self.add_edge(mapping[source], mapping[target], other.edge_kind(source, target))
        return mapping

    def subgraph_from(self, start: int, follow_idref: bool = False) -> "DictGraph":
        reachable = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in self._succ[node]:
                if child in reachable:
                    continue
                if not follow_idref and self._edge_kinds[(node, child)] is EdgeKind.IDREF:
                    continue
                reachable.add(child)
                stack.append(child)
        sub = DictGraph()
        for oid in reachable:
            sub.add_node(self._labels[oid], self._values.get(oid), oid=oid)
            if oid == self._root:
                sub._root = oid
        for oid in reachable:
            for child in self._succ[oid]:
                if child in reachable:
                    sub.add_edge(oid, child, self._edge_kinds[(oid, child)])
        return sub

    def remove_nodes(self, oids: Iterable[int]) -> None:
        for oid in list(oids):
            if self.has_node(oid):
                self.remove_node(oid)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        assert set(self._succ) == set(self._labels), "succ keys out of sync"
        assert set(self._pred) == set(self._labels), "pred keys out of sync"
        edge_count = 0
        for source, targets in self._succ.items():
            for target in targets:
                assert source in self._pred[target], f"pred missing for {source}->{target}"
                assert (source, target) in self._edge_kinds, f"kind missing {source}->{target}"
                edge_count += 1
        for target, sources in self._pred.items():
            for source in sources:
                assert target in self._succ[source], f"succ missing for {source}->{target}"
        assert edge_count == self._num_edges, "edge counter out of sync"
        assert edge_count == len(self._edge_kinds), "edge kinds out of sync"
        for (source, target), kind in self._edge_kinds.items():
            assert isinstance(kind, EdgeKind), f"non-EdgeKind kind for {source}->{target}"
            assert target in self._succ.get(source, ()), (
                f"kind entry for non-edge {source}->{target}"
            )
            if kind is EdgeKind.IDREF:
                assert target != self._root, f"IDREF edge {source}->{target} targets root"
        if self._root is not None:
            assert self._labels[self._root] == ROOT_LABEL, "root label corrupted"
            assert not self._pred[self._root], "root must have no incoming edges"

    # ------------------------------------------------------------------
    # Journal undo (repro.resilience)
    # ------------------------------------------------------------------

    def _undo_journal(self, op: str, payload: tuple) -> None:
        self._generation += 1
        if op == "edge_added":
            source, target = payload
            self._succ[source].discard(target)
            self._pred[target].discard(source)
            del self._edge_kinds[(source, target)]
            self._num_edges -= 1
        elif op == "edge_removed":
            source, target, kind = payload
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._edge_kinds[(source, target)] = kind
            self._num_edges += 1
        elif op == "node_added":
            oid, prev_next_oid = payload
            del self._labels[oid]
            self._values.pop(oid, None)
            del self._succ[oid]
            del self._pred[oid]
            self._next_oid = prev_next_oid
        elif op == "node_removed":
            oid, label, value, was_root = payload
            self._labels[oid] = label
            if value is not None:
                self._values[oid] = value
            self._succ[oid] = set()
            self._pred[oid] = set()
            if was_root:
                self._root = oid
        elif op == "root_set":
            self._root = None
        elif op == "relabeled":
            oid, old = payload
            self._labels[oid] = old
        elif op == "value_set":
            oid, old = payload
            if old is None:
                self._values.pop(oid, None)
            else:
                self._values[oid] = old
        else:  # pragma: no cover - guards against journal format drift
            raise ValueError(f"unknown graph journal op {op!r}")

    def approx_bytes(self) -> int:
        """Deep resident bytes of the graph's containers."""
        from repro.core.sizing import deep_sizeof

        seen: set[int] = set()
        return sum(
            deep_sizeof(container, seen)
            for container in (
                self._labels,
                self._values,
                self._succ,
                self._pred,
                self._edge_kinds,
            )
        )

    def _require_node(self, oid: int) -> None:
        if oid not in self._labels:
            raise NodeNotFoundError(oid)


class DictIndex:
    """The dict-of-sets structural index (historical ``StructuralIndex``)."""

    def __init__(self, graph):
        self.graph = graph
        self._inode_of: dict[int, int] = {}
        self._extent: dict[int, set[int]] = {}
        self._label: dict[int, str] = {}
        self._succ_support: dict[int, dict[int, int]] = {}
        self._pred_support: dict[int, dict[int, int]] = {}
        self._next_id = 0
        self._journal = None
        self._generation: int = 0
        self._ipred_view: dict[int, frozenset[int]] = {}
        self._isucc_view: dict[int, frozenset[int]] = {}
        self._view_generation: int = 0

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------

    @classmethod
    def from_partition(cls, graph, blocks: Iterable[Iterable[int]]) -> "DictIndex":
        index = cls(graph)
        for block in blocks:
            members = list(block)
            if not members:
                continue
            labels = {graph.label(w) for w in members}
            if len(labels) != 1:
                raise InvalidIndexError(f"block {sorted(members)} mixes labels {labels}")
            inode = index.new_inode(labels.pop())
            for w in members:
                if w in index._inode_of:
                    raise InvalidIndexError(f"dnode {w} appears in two blocks")
                index._inode_of[w] = inode
                index._extent[inode].add(w)
        missing = set(graph.nodes()) - set(index._inode_of)
        if missing:
            raise InvalidIndexError(f"partition misses dnodes {sorted(missing)[:5]}...")
        index.rebuild_iedges()
        return index

    def new_inode(self, label: str) -> int:
        inode = self._next_id
        self._next_id += 1
        self._extent[inode] = set()
        self._label[inode] = label
        self._succ_support[inode] = {}
        self._pred_support[inode] = {}
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "inode_created", (inode,))
        return inode

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def inode_of(self, dnode: int) -> int:
        try:
            return self._inode_of[dnode]
        except KeyError:
            raise StructuralIndexError(f"dnode {dnode} is not covered by the index") from None

    def covers(self, dnode: int) -> bool:
        return dnode in self._inode_of

    def extent(self, inode: int) -> set[int]:
        self._require(inode)
        return self._extent[inode]

    def extent_size(self, inode: int) -> int:
        self._require(inode)
        return len(self._extent[inode])

    def label_of(self, inode: int) -> str:
        self._require(inode)
        return self._label[inode]

    def has_inode(self, inode: int) -> bool:
        return inode in self._extent

    def inodes(self) -> Iterator[int]:
        return iter(self._extent)

    @property
    def num_inodes(self) -> int:
        return len(self._extent)

    @property
    def num_iedges(self) -> int:
        return sum(len(targets) for targets in self._succ_support.values())

    def __len__(self) -> int:
        return len(self._extent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DictIndex inodes={self.num_inodes} iedges={self.num_iedges}>"

    # ------------------------------------------------------------------
    # Index-graph navigation
    # ------------------------------------------------------------------

    def isucc(self, inode: int) -> Iterator[int]:
        self._require(inode)
        return iter(self._succ_support[inode])

    def ipred(self, inode: int) -> Iterator[int]:
        self._require(inode)
        return iter(self._pred_support[inode])

    @property
    def generation(self) -> int:
        return self._generation

    def ipred_set(self, inode: int) -> frozenset[int]:
        self._require(inode)
        if self._view_generation != self._generation:
            self._ipred_view.clear()
            self._isucc_view.clear()
            self._view_generation = self._generation
        view = self._ipred_view.get(inode)
        if view is None:
            view = self._ipred_view[inode] = frozenset(self._pred_support[inode])
        return view

    def isucc_set(self, inode: int) -> frozenset[int]:
        self._require(inode)
        if self._view_generation != self._generation:
            self._ipred_view.clear()
            self._isucc_view.clear()
            self._view_generation = self._generation
        view = self._isucc_view.get(inode)
        if view is None:
            view = self._isucc_view[inode] = frozenset(self._succ_support[inode])
        return view

    def has_iedge(self, source: int, target: int) -> bool:
        self._require(source)
        self._require(target)
        return target in self._succ_support[source]

    def support(self, source: int, target: int) -> int:
        self._require(source)
        self._require(target)
        return self._succ_support[source].get(target, 0)

    def succ_extent(self, inode: int) -> set[int]:
        self._require(inode)
        result: set[int] = set()
        for w in self._extent[inode]:
            result.update(self.graph.iter_succ(w))
        return result

    def succ_extent_of(self, inodes: Iterable[int]) -> set[int]:
        result: set[int] = set()
        for inode in inodes:
            result.update(self.succ_extent(inode))
        return result

    def dnode_iparents(self, dnode: int) -> frozenset[int]:
        return frozenset(self._inode_of[p] for p in self.graph.iter_pred(dnode))

    # ------------------------------------------------------------------
    # Partition surgery
    # ------------------------------------------------------------------

    def move_dnode(self, dnode: int, to_inode: int) -> None:
        self._require(to_inode)
        source = self.inode_of(dnode)
        if source == to_inode:
            return
        if self._label[to_inode] != self.graph.label(dnode):
            raise InvalidIndexError(
                f"cannot move dnode {dnode} ({self.graph.label(dnode)!r}) "
                f"into inode labeled {self._label[to_inode]!r}"
            )
        self._detach(dnode)
        self._extent[source].discard(dnode)
        self._extent[to_inode].add(dnode)
        self._inode_of[dnode] = to_inode
        self._attach(dnode)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_moved", (dnode, source))

    def split_off(self, inode: int, members: Iterable[int]) -> int:
        member_list = list(members)
        extent = self.extent(inode)
        if not member_list:
            raise StructuralIndexError("cannot split off an empty set")
        for w in member_list:
            if w not in extent:
                raise StructuralIndexError(f"dnode {w} not in inode {inode}")
        if len(member_list) == len(extent):
            raise StructuralIndexError("cannot split off the whole extent")
        new_inode = self.new_inode(self._label[inode])
        for w in member_list:
            self.move_dnode(w, new_inode)
        return new_inode

    def merge_inodes(self, inodes: Iterable[int]) -> int:
        ids = list(dict.fromkeys(inodes))
        if len(ids) < 2:
            raise StructuralIndexError("merge needs at least two distinct inodes")
        labels = {self.label_of(i) for i in ids}
        if len(labels) != 1:
            raise InvalidIndexError(f"cannot merge inodes with labels {labels}")
        survivor = max(ids, key=lambda i: len(self._extent[i]))
        for other in ids:
            if other != survivor:
                self._fold_into(survivor, other)
        return survivor

    def _fold_into(self, survivor: int, other: int) -> None:
        before = None
        if self._journal is not None:
            before = (
                survivor,
                other,
                self._label[other],
                frozenset(self._extent[other]),
                dict(self._succ_support[other]),
                dict(self._pred_support[other]),
                dict(self._succ_support[survivor]),
                dict(self._pred_support[survivor]),
            )
        for w in self._extent[other]:
            self._inode_of[w] = survivor
        self._extent[survivor].update(self._extent[other])

        surv_succ = self._succ_support[survivor]
        surv_pred = self._pred_support[survivor]

        count = surv_succ.pop(other, 0)
        if count:
            self._bump(surv_succ, survivor, count)
            self._bump(surv_pred, survivor, count)
        count = surv_pred.pop(other, 0)
        if count:
            self._bump(surv_succ, survivor, count)
            self._bump(surv_pred, survivor, count)

        for target, count in self._succ_support[other].items():
            if target == survivor:
                continue  # already folded above
            if target == other:
                self._bump(surv_succ, survivor, count)
                self._bump(surv_pred, survivor, count)
                continue
            self._bump(surv_succ, target, count)
            target_pred = self._pred_support[target]
            target_pred.pop(other)
            self._bump(target_pred, survivor, count)
        for origin, count in self._pred_support[other].items():
            if origin in (survivor, other):
                continue  # already folded above
            self._bump(surv_pred, origin, count)
            origin_succ = self._succ_support[origin]
            origin_succ.pop(other)
            self._bump(origin_succ, survivor, count)

        del self._extent[other]
        del self._label[other]
        del self._succ_support[other]
        del self._pred_support[other]
        self._generation += 1
        if before is not None:
            self._journal.record(self, "merge_folded", before)

    def remove_if_empty(self, inode: int) -> bool:
        if inode not in self._extent or self._extent[inode]:
            return False
        if self._succ_support[inode] or self._pred_support[inode]:
            raise StructuralIndexError(
                f"empty inode {inode} still has iedges; supports corrupted"
            )
        label = self._label[inode]
        del self._extent[inode]
        del self._label[inode]
        del self._succ_support[inode]
        del self._pred_support[inode]
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "inode_destroyed", (inode, label))
        return True

    def add_dnode(self, dnode: int, inode: Optional[int] = None) -> int:
        if dnode in self._inode_of:
            raise StructuralIndexError(f"dnode {dnode} is already covered")
        label = self.graph.label(dnode)
        if inode is None:
            inode = self.new_inode(label)
        elif self._label[inode] != label:
            raise InvalidIndexError(
                f"dnode {dnode} ({label!r}) cannot join inode labeled "
                f"{self._label[inode]!r}"
            )
        self._extent[inode].add(dnode)
        self._inode_of[dnode] = inode
        self._attach(dnode)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_covered", (dnode, inode))
        return inode

    def absorb_blocks(self, blocks: Iterable[Iterable[int]]) -> list[int]:
        new_ids: list[int] = []
        new_nodes: set[int] = set()
        for block in blocks:
            members = list(block)
            if not members:
                continue
            inode = self.new_inode(self.graph.label(members[0]))
            new_ids.append(inode)
            for w in members:
                if w in self._inode_of:
                    raise StructuralIndexError(f"dnode {w} is already covered")
                if self.graph.label(w) != self._label[inode]:
                    raise InvalidIndexError(f"block mixes labels at dnode {w}")
                self._inode_of[w] = inode
                self._extent[inode].add(w)
                new_nodes.add(w)
        self._account_new_nodes(new_nodes, 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "blocks_absorbed", (frozenset(new_nodes),))
        return new_ids

    def _account_new_nodes(self, new_nodes: set[int], sign: int) -> None:
        for w in new_nodes:
            wi = self._inode_of[w]
            for c in self.graph.iter_succ(w):
                ci = self._inode_of.get(c)
                if ci is not None:
                    self._bump(self._succ_support[wi], ci, sign)
                    self._bump(self._pred_support[ci], wi, sign)
            for p in self.graph.iter_pred(w):
                if p in new_nodes or p == w:
                    continue  # internal edges were counted from the succ side
                pi = self._inode_of.get(p)
                if pi is not None:
                    self._bump(self._succ_support[pi], wi, sign)
                    self._bump(self._pred_support[wi], pi, sign)

    def drop_dnode(self, dnode: int) -> None:
        inode = self.inode_of(dnode)
        self._detach(dnode)
        self._extent[inode].discard(dnode)
        del self._inode_of[dnode]
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_dropped", (dnode, inode))
        self.remove_if_empty(inode)

    # ------------------------------------------------------------------
    # Dedge notifications
    # ------------------------------------------------------------------

    def note_edge_added(self, source: int, target: int) -> None:
        si = self.inode_of(source)
        ti = self.inode_of(target)
        self._bump(self._succ_support[si], ti, 1)
        self._bump(self._pred_support[ti], si, 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "support_bumped", (si, ti, 1))

    def note_edge_removed(self, source: int, target: int) -> None:
        si = self.inode_of(source)
        ti = self.inode_of(target)
        self._bump(self._succ_support[si], ti, -1)
        self._bump(self._pred_support[ti], si, -1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "support_bumped", (si, ti, -1))

    # ------------------------------------------------------------------
    # Oracles / invariants
    # ------------------------------------------------------------------

    def rebuild_iedges(self) -> None:
        for inode in self._extent:
            self._succ_support[inode] = {}
            self._pred_support[inode] = {}
        for source, target in self.graph.edges():
            si = self._inode_of[source]
            ti = self._inode_of[target]
            self._bump(self._succ_support[si], ti, 1)
            self._bump(self._pred_support[ti], si, 1)
        self._generation += 1

    def partition(self) -> list[frozenset[int]]:
        return [frozenset(extent) for extent in self._extent.values()]

    def as_blocks(self) -> set[frozenset[int]]:
        return {frozenset(extent) for extent in self._extent.values()}

    def copy(self) -> "DictIndex":
        clone = DictIndex(self.graph)
        clone._inode_of = dict(self._inode_of)
        clone._extent = {i: set(e) for i, e in self._extent.items()}
        clone._label = dict(self._label)
        clone._succ_support = {i: dict(s) for i, s in self._succ_support.items()}
        clone._pred_support = {i: dict(p) for i, p in self._pred_support.items()}
        clone._next_id = self._next_id
        return clone

    def check_invariants(self) -> None:
        covered: set[int] = set()
        for inode, extent in self._extent.items():
            assert extent, f"inode {inode} has an empty extent"
            for w in extent:
                assert self._inode_of.get(w) == inode, f"mapping broken for dnode {w}"
                assert self.graph.label(w) == self._label[inode], (
                    f"label mismatch in inode {inode}"
                )
            assert not (covered & extent), "extents overlap"
            covered |= extent
        assert covered == set(self.graph.nodes()), "partition does not cover the graph"

        oracle: dict[int, dict[int, int]] = {i: {} for i in self._extent}
        for source, target in self.graph.edges():
            self._bump(oracle[self._inode_of[source]], self._inode_of[target], 1)
        for inode in self._extent:
            assert self._succ_support[inode] == oracle[inode], (
                f"succ supports of inode {inode} drifted: "
                f"{self._succ_support[inode]} != {oracle[inode]}"
            )
        pred_oracle: dict[int, dict[int, int]] = {i: {} for i in self._extent}
        for source, targets in oracle.items():
            for target, count in targets.items():
                self._bump(pred_oracle[target], source, count)
        for inode in self._extent:
            assert self._pred_support[inode] == pred_oracle[inode], (
                f"pred supports of inode {inode} drifted"
            )

    # ------------------------------------------------------------------
    # Journal undo (repro.resilience)
    # ------------------------------------------------------------------

    def _undo_journal(self, op: str, payload: tuple) -> None:
        self._generation += 1
        if op == "support_bumped":
            si, ti, delta = payload
            self._bump(self._succ_support[si], ti, -delta)
            self._bump(self._pred_support[ti], si, -delta)
        elif op == "dnode_moved":
            dnode, from_inode = payload
            to_inode = self._inode_of[dnode]
            self._detach(dnode)
            self._extent[to_inode].discard(dnode)
            self._extent[from_inode].add(dnode)
            self._inode_of[dnode] = from_inode
            self._attach(dnode)
        elif op == "dnode_covered":
            dnode, inode = payload
            self._detach(dnode)
            self._extent[inode].discard(dnode)
            del self._inode_of[dnode]
        elif op == "dnode_dropped":
            dnode, inode = payload
            self._extent[inode].add(dnode)
            self._inode_of[dnode] = inode
            self._attach(dnode)
        elif op == "inode_created":
            (inode,) = payload
            del self._extent[inode]
            del self._label[inode]
            del self._succ_support[inode]
            del self._pred_support[inode]
            self._next_id = inode
        elif op == "inode_destroyed":
            inode, label = payload
            self._extent[inode] = set()
            self._label[inode] = label
            self._succ_support[inode] = {}
            self._pred_support[inode] = {}
        elif op == "merge_folded":
            (
                survivor,
                other,
                other_label,
                other_extent,
                other_succ,
                other_pred,
                surv_succ,
                surv_pred,
            ) = payload
            self._extent[other] = set(other_extent)
            self._label[other] = other_label
            self._succ_support[other] = dict(other_succ)
            self._pred_support[other] = dict(other_pred)
            self._succ_support[survivor] = dict(surv_succ)
            self._pred_support[survivor] = dict(surv_pred)
            self._extent[survivor] -= other_extent
            for w in other_extent:
                self._inode_of[w] = other
            for target, count in other_succ.items():
                if target in (survivor, other):
                    continue
                target_pred = self._pred_support[target]
                self._bump(target_pred, survivor, -count)
                self._bump(target_pred, other, count)
            for origin, count in other_pred.items():
                if origin in (survivor, other):
                    continue
                origin_succ = self._succ_support[origin]
                self._bump(origin_succ, survivor, -count)
                self._bump(origin_succ, other, count)
        elif op == "blocks_absorbed":
            (new_nodes,) = payload
            members = set(new_nodes)
            self._account_new_nodes(members, -1)
            for w in members:
                self._extent[self._inode_of[w]].discard(w)
                del self._inode_of[w]
        else:  # pragma: no cover - guards against journal format drift
            raise ValueError(f"unknown index journal op {op!r}")

    def approx_bytes(self) -> int:
        """Deep resident bytes of the index's containers (graph excluded)."""
        from repro.core.sizing import deep_sizeof

        seen: set[int] = set()
        return sum(
            deep_sizeof(container, seen)
            for container in (
                self._inode_of,
                self._extent,
                self._label,
                self._succ_support,
                self._pred_support,
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _detach(self, dnode: int) -> None:
        inode = self._inode_of[dnode]
        for p in self.graph.iter_pred(dnode):
            pi = self._inode_of[p]
            self._bump(self._succ_support[pi], inode, -1)
            self._bump(self._pred_support[inode], pi, -1)
        for c in self.graph.iter_succ(dnode):
            if c == dnode:
                continue  # the self-loop was handled in the pred pass
            ci = self._inode_of[c]
            self._bump(self._succ_support[inode], ci, -1)
            self._bump(self._pred_support[ci], inode, -1)

    def _attach(self, dnode: int) -> None:
        inode = self._inode_of[dnode]
        for p in self.graph.iter_pred(dnode):
            pi = self._inode_of[p]
            self._bump(self._succ_support[pi], inode, 1)
            self._bump(self._pred_support[inode], pi, 1)
        for c in self.graph.iter_succ(dnode):
            if c == dnode:
                continue
            ci = self._inode_of[c]
            self._bump(self._succ_support[inode], ci, 1)
            self._bump(self._pred_support[ci], inode, 1)

    @staticmethod
    def _bump(counter: dict[int, int], key: int, delta: int) -> None:
        new = counter.get(key, 0) + delta
        if new < 0:
            raise StructuralIndexError("support counter went negative; state corrupted")
        if new == 0:
            counter.pop(key, None)
        else:
            counter[key] = new

    def _require(self, inode: int) -> None:
        if inode not in self._extent:
            raise StructuralIndexError(f"inode {inode} does not exist")


# ----------------------------------------------------------------------
# Conversion and construction helpers for A/B runs
# ----------------------------------------------------------------------


def to_dict_graph(graph) -> DictGraph:
    """Replay any graph implementing the DataGraph API into a DictGraph.

    Nodes are replayed in ascending-oid order and edges sorted, so the
    resulting dict graph's iteration order matches the slab core's —
    which makes from-scratch index builds assign identical inode ids on
    both cores (the fingerprint-equality contract of the A/B benches).
    """
    clone = DictGraph()
    root = graph.root if graph.has_root else None
    for oid in sorted(graph.nodes()):
        if oid == root:
            clone.add_root(oid=oid)
            if graph.value(oid) is not None:
                clone.set_value(oid, graph.value(oid))
        else:
            clone.add_node(graph.label(oid), graph.value(oid), oid=oid)
    for source, target in sorted(graph.edges()):
        clone.add_edge(source, target, graph.edge_kind(source, target))
    clone._next_oid = graph._next_oid
    return clone


def build_dict_one_index(graph: DictGraph) -> DictIndex:
    """The minimum 1-index over a DictGraph via signature iteration.

    Mirrors ``OneIndex.build(graph)`` on the slab core; the generic
    (dict-adjacency) path of the construction functions is used.
    """
    from repro.index.construction import bisimulation_partition, blocks_of

    return DictIndex.from_partition(graph, blocks_of(bisimulation_partition(graph)))
