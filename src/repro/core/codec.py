"""Delta codecs for sorted int sequences (wire format v2 extents).

Index extents serialize as sorted oid lists.  At rest the gaps between
consecutive sorted oids are small (document-local allocation makes them
mostly 1), so v2 wire dumps store ``[first, gap, gap, ...]`` instead of
absolute oids: JSON then emits one or two characters per member instead
of a full oid.  The codec is exact and order-preserving; the in-memory
core never stores extents this way (live extents are unsorted compact
arrays with O(1) swap-removal).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def delta_encode(sorted_values: Sequence[int]) -> list[int]:
    """``[v0, v1, v2, ...]`` (ascending) → ``[v0, v1-v0, v2-v1, ...]``."""
    out: list[int] = []
    prev = 0
    for value in sorted_values:
        out.append(value - prev)
        prev = value
    return out


def delta_decode(deltas: Iterable[int]) -> list[int]:
    """Inverse of :func:`delta_encode`."""
    out: list[int] = []
    acc = 0
    for delta in deltas:
        acc += delta
        out.append(acc)
    return out
