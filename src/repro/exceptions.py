"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses distinguish the layer that
raised them (graph substrate, index layer, maintenance, query parsing).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Invalid operation on a :class:`~repro.graph.datagraph.DataGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, oid: int):
        super().__init__(f"node {oid!r} does not exist in the data graph")
        self.oid = oid


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that does not exist in the graph.

    *step*, when given, is the index of the workload operation that
    referenced the edge — workloads validate operations at their
    boundary so a desynchronised stream fails loudly instead of deep
    inside a maintainer (see :mod:`repro.workload.updates`).
    """

    def __init__(self, source: int, target: int, step: int | None = None):
        message = f"edge ({source!r} -> {target!r}) does not exist"
        if step is not None:
            message += f" (workload step {step})"
        super().__init__(message)
        self.source = source
        self.target = target
        self.step = step


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice."""

    def __init__(self, oid: int):
        super().__init__(f"node {oid!r} already exists in the data graph")
        self.oid = oid


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was added twice (the data model has no parallel edges).

    *step* carries the workload operation index when the duplicate was
    caught at the workload boundary (see :class:`EdgeNotFoundError`).
    """

    def __init__(self, source: int, target: int, step: int | None = None):
        message = f"edge ({source!r} -> {target!r}) already exists"
        if step is not None:
            message += f" (workload step {step})"
        super().__init__(message)
        self.source = source
        self.target = target
        self.step = step


class RootError(GraphError):
    """The single-root invariant of the data model was violated."""


class IndexError_(ReproError):
    """Invalid operation on a structural index.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``StructuralIndexError``.
    """


StructuralIndexError = IndexError_


class InvalidIndexError(StructuralIndexError):
    """An index failed a validity check (partition or stability broken)."""


class MaintenanceError(ReproError):
    """An incremental maintenance operation could not be applied."""


class SerializationError(GraphError, ValueError):
    """A persisted graph payload is malformed or inconsistent.

    Raised by the loader in :mod:`repro.graph.serialize` instead of the
    bare ``KeyError`` / ``TypeError`` / ``ValueError`` that malformed
    input would otherwise surface (index payloads raise
    :class:`InvalidIndexError` the same way).  Subclasses
    :class:`GraphError` because a malformed payload cannot name a live
    graph object — callers catching graph errors get these too.
    """


class ResilienceError(ReproError):
    """Base class for the transactional-maintenance layer (``repro.resilience``)."""


class InjectedFaultError(ResilienceError):
    """The deterministic fault injector fired (chaos testing only)."""

    def __init__(self, trigger: str, record_number: int):
        super().__init__(
            f"injected fault ({trigger}) at journal record {record_number}"
        )
        self.trigger = trigger
        self.record_number = record_number


class InvariantViolationError(ResilienceError):
    """A guarded post-check found the graph or index in an invalid state."""


class RollbackError(ResilienceError):
    """A transaction rollback could not restore the pre-update state.

    After this error the graph/index pair must be considered corrupt;
    the only safe recovery is a from-scratch rebuild (the ``degrade``
    policy) or abandoning the structures.
    """


class StoreError(ReproError):
    """Base class for the durable persistence layer (``repro.store``)."""


class WalCorruptionError(StoreError):
    """A write-ahead-log segment is corrupt beyond torn-tail repair.

    A torn *tail* (a crash mid-append) is expected and silently truncated
    by the reader; this error means a record **before** the tail failed
    its CRC or LSN check — i.e. the log was damaged after it was written,
    which replay must not paper over.
    """

    def __init__(self, segment: str, offset: int, reason: str):
        super().__init__(
            f"WAL segment {segment!r} corrupt at byte {offset}: {reason}"
        )
        self.segment = segment
        self.offset = offset
        self.reason = reason


class CheckpointError(StoreError):
    """A checkpoint file is malformed, truncated, or from a future format."""


class RecoveryError(StoreError):
    """A store directory could not be recovered into a consistent state."""


class ReplicationError(ReproError):
    """Base class for the WAL-shipping replication layer (``repro.replication``)."""


class ReplicationTimeoutError(ReplicationError):
    """A replication fetch ran out of attempts or exceeded its deadline.

    Raised by :class:`~repro.replication.link.ReplicationLink` after its
    retry budget is spent; a single dropped or torn response is retried
    silently (with capped exponential backoff) and never surfaces.
    """


class StaleEpochError(ReplicationError):
    """A replication message carried an epoch older than one already seen.

    A follower that has observed epoch *N* must refuse feed responses
    stamped with an earlier epoch — they come from a demoted (zombie)
    primary whose writes were fenced off, and applying them would fork
    the replica from the promoted timeline.
    """

    def __init__(self, seen_epoch: int, frame_epoch: int):
        super().__init__(
            f"feed response from epoch {frame_epoch} but epoch "
            f"{seen_epoch} was already observed (zombie primary?)"
        )
        self.seen_epoch = seen_epoch
        self.frame_epoch = frame_epoch


class StalePrimaryError(ReplicationError):
    """A fenced (demoted) primary tried to commit a write.

    After failover promotes a follower, the cluster epoch advances; the
    old primary discovers this — through an explicit :meth:`fence` call
    or the durable epoch check in its commit path — and every write
    from then on raises this error instead of splitting the WAL's
    history.  Reads remain allowed (they are just stale).
    """

    def __init__(self, own_epoch: int, current_epoch: int):
        super().__init__(
            f"primary at epoch {own_epoch} was superseded by epoch "
            f"{current_epoch}; writes are fenced off"
        )
        self.own_epoch = own_epoch
        self.current_epoch = current_epoch


class WorkloadError(ReproError):
    """A workload generator was driven outside its prepared envelope."""


class WorkloadExhaustedError(WorkloadError):
    """A workload was asked for more operations than it prepared.

    Carries both sides of the mismatch so the caller can resize the run
    (or the pool) instead of silently replaying a truncated sequence.
    """

    def __init__(self, requested_pairs: int, supplied_pairs: int, prepared: int):
        super().__init__(
            f"workload exhausted after {supplied_pairs} of {requested_pairs} "
            f"requested pairs ({prepared} prepared)"
        )
        self.requested_pairs = requested_pairs
        self.supplied_pairs = supplied_pairs
        self.prepared = prepared


class ServiceError(ReproError):
    """Base class for the index serving layer (``repro.service``)."""


class QueueFullError(ServiceError):
    """An update was rejected because the admission queue is at capacity.

    Only raised under the ``shed`` admission policy; ``block`` and
    ``flush`` make room instead of rejecting.
    """

    def __init__(self, capacity: int):
        super().__init__(f"update queue is full (capacity {capacity})")
        self.capacity = capacity


class ServiceClosedError(ServiceError):
    """An operation was submitted to a service that has been closed."""


class XmlFormatError(ReproError, ValueError):
    """Malformed XML input or unresolvable IDREF.

    Carries optional context so a failure inside a multi-document parse
    names its origin instead of a bare identifier: *source* is the
    document's display name (file name, document id), *ordinal* its
    0-based position in the batch, *path* the ``/tag[i]/...`` element
    path the error anchors to.
    """

    def __init__(
        self,
        message: str,
        *,
        source: "str | None" = None,
        ordinal: "int | None" = None,
        path: "str | None" = None,
    ):
        details = []
        if source is not None and ordinal is not None:
            details.append(f"document #{ordinal} ({source})")
        elif source is not None:
            details.append(f"document {source}")
        elif ordinal is not None:
            details.append(f"document #{ordinal}")
        if path is not None:
            details.append(f"at {path}")
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)
        self.source = source
        self.ordinal = ordinal
        self.path = path


class CorpusError(ReproError):
    """Base class for the multi-document corpus layer (``repro.corpus``)."""


class DocumentNotFoundError(CorpusError, KeyError):
    """A document id was referenced that is not in the corpus."""

    def __init__(self, doc_id: str):
        super().__init__(f"document {doc_id!r} is not in the corpus")
        self.doc_id = doc_id


class DuplicateDocumentError(CorpusError, ValueError):
    """A document id was added to a corpus that already holds it."""

    def __init__(self, doc_id: str):
        super().__init__(
            f"document {doc_id!r} already exists in the corpus; use "
            "replace_document to change its content"
        )
        self.doc_id = doc_id


class PathSyntaxError(ReproError, ValueError):
    """A path expression failed to parse."""

    def __init__(self, expression: str, position: int, message: str):
        super().__init__(
            f"invalid path expression {expression!r} at position {position}: {message}"
        )
        self.expression = expression
        self.position = position
