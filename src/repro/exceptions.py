"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses distinguish the layer that
raised them (graph substrate, index layer, maintenance, query parsing).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Invalid operation on a :class:`~repro.graph.datagraph.DataGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, oid: int):
        super().__init__(f"node {oid!r} does not exist in the data graph")
        self.oid = oid


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, source: int, target: int):
        super().__init__(f"edge ({source!r} -> {target!r}) does not exist")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice."""

    def __init__(self, oid: int):
        super().__init__(f"node {oid!r} already exists in the data graph")
        self.oid = oid


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was added twice (the data model has no parallel edges)."""

    def __init__(self, source: int, target: int):
        super().__init__(f"edge ({source!r} -> {target!r}) already exists")
        self.source = source
        self.target = target


class RootError(GraphError):
    """The single-root invariant of the data model was violated."""


class IndexError_(ReproError):
    """Invalid operation on a structural index.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``StructuralIndexError``.
    """


StructuralIndexError = IndexError_


class InvalidIndexError(StructuralIndexError):
    """An index failed a validity check (partition or stability broken)."""


class MaintenanceError(ReproError):
    """An incremental maintenance operation could not be applied."""


class XmlFormatError(ReproError, ValueError):
    """Malformed XML input or unresolvable IDREF."""


class PathSyntaxError(ReproError, ValueError):
    """A path expression failed to parse."""

    def __init__(self, expression: str, position: int, message: str):
        super().__init__(
            f"invalid path expression {expression!r} at position {position}: {message}"
        )
        self.expression = expression
        self.position = position
