"""The primary side of WAL shipping: the log served as a feed.

A :class:`Primary` wraps a store directory — optionally with the live
:class:`~repro.store.DurableIndexService` writing into it — and answers
two questions a follower has:

* :meth:`checkpoint_bytes` — "give me your newest checkpoint" (the
  bootstrap path: the raw file bytes travel verbatim, CRC and all, so
  the follower verifies them with the same code a local recovery uses);
* :meth:`fetch` — "give me everything after LSN *n*" (the catch-up
  path: records are read through the segment-skipping
  :func:`~repro.store.wal.read_records_since`, wrapped in a CRC-framed
  :class:`~repro.resilience.wire.FeedFrame` stamped with the store's
  fencing epoch and the log's current end).

Replication is recovery running continuously: both answers are pure
functions of the store directory, so a feed over a *dead* primary's
directory works identically — which is exactly what failover's final
catch-up drain relies on.

When a live service is attached, :meth:`fetch` holds its writer lock:
the WAL may rotate or checkpoint-truncate mid-scan otherwise.  Fetches
are short (``max_records``-bounded) and read-only, so the contention is
the same order as one commit.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.exceptions import ReplicationError
from repro.obs import current as current_obs
from repro.resilience.faults import FaultInjector
from repro.resilience.wire import encode_feed_frame, feed_record
from repro.store.checkpoint import latest_checkpoint
from repro.store.epoch import read_epoch
from repro.store.service import DurableIndexService
from repro.store.wal import last_lsn_on_disk, read_records_since


class Primary:
    """One store directory exposed as a replication feed.

    Construct from a live service (``Primary(service=primary_service)``)
    while the primary is up, or from a bare directory
    (``Primary(store_dir=path)``) to drain a dead primary's log during
    failover.  *fault_injector* is consumed by the **link**, not here —
    the feed itself always answers truthfully; the injector rides along
    so a link built from this feed inherits it.
    """

    def __init__(
        self,
        store_dir: Optional[str] = None,
        service: Optional[DurableIndexService] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if (store_dir is None) == (service is None):
            raise ReplicationError("Primary needs exactly one of store_dir= or service=")
        self.service = service
        self.store_dir = store_dir if store_dir is not None else service.store_dir
        self.fault_injector = fault_injector
        #: lifetime tallies
        self.fetches = 0
        self.records_shipped = 0

    @property
    def epoch(self) -> int:
        """The store's current fencing epoch (re-read per call)."""
        return read_epoch(self.store_dir)

    @property
    def last_lsn(self) -> int:
        """The end of the primary's log right now."""
        if self.service is not None:
            return self.service.wal.last_lsn
        return last_lsn_on_disk(self.store_dir)

    def checkpoint_bytes(self) -> bytes:
        """The newest valid checkpoint's raw file bytes (bootstrap).

        Validity is established the same way recovery establishes it —
        newest-first, skipping corrupt files — and the *bytes* of the
        chosen file are shipped so the follower's CRC check covers the
        transfer too.
        """
        ckpt = latest_checkpoint(self.store_dir)
        if ckpt is None:
            raise ReplicationError(
                f"store {self.store_dir!r} has no loadable checkpoint to bootstrap from"
            )
        with open(ckpt.path, "rb") as fp:
            return fp.read()

    def fetch(self, since_lsn: int, max_records: int = 64) -> bytes:
        """One encoded feed frame: up to *max_records* records past *since_lsn*.

        The frame's ``last_lsn`` is the log's end at fetch time, so a
        follower that receives fewer records than that end implies knows
        it has more catching up to do (and one that receives zero knows
        it is current).
        """
        if max_records < 1:
            raise ReplicationError("max_records must be >= 1")
        started = time.perf_counter()
        if self.service is not None:
            with self.service._writer_lock:
                frame = self._build_frame(since_lsn, max_records)
        else:
            frame = self._build_frame(since_lsn, max_records)
        self.fetches += 1
        obs = current_obs()
        obs.add("replication.fetches_served")
        obs.observe("replication.fetch_serve_seconds", time.perf_counter() - started)
        return frame

    def _build_frame(self, since_lsn: int, max_records: int) -> bytes:
        records = []
        for record in read_records_since(self.store_dir, since_lsn):
            records.append(feed_record(record.lsn, record.ops))
            if len(records) >= max_records:
                break
        self.records_shipped += len(records)
        current_obs().add("replication.records_shipped", len(records))
        return encode_feed_frame(self.epoch, self.last_lsn, records)
