"""The hostile-network wrapper around a replication feed.

A :class:`ReplicationLink` is what a follower actually talks to.  It
owns everything that can go wrong between the primary's answer and the
follower's apply loop:

* **deadline/timeout** — a fetch that keeps failing exhausts either its
  attempt budget or its wall-clock deadline and raises
  :class:`~repro.exceptions.ReplicationTimeoutError`; one bad response
  never surfaces;
* **capped exponential backoff with jitter** — retry *n* sleeps
  ``min(base * 2^n, cap) * (1 ± jitter)`` from a seeded stream, so the
  chaos tests are deterministic and a thundering herd of followers
  desynchronises;
* **resumable re-fetch** — a torn or corrupt frame (frame CRC, record
  CRC, malformed JSON) is discarded *whole* and re-fetched from the same
  ``since_lsn``; the feed is idempotent, so resumption is just asking
  again;
* **epoch monotonicity** — the link remembers the highest epoch any
  frame carried and raises :class:`~repro.exceptions.StaleEpochError`
  on a frame from an earlier one (a zombie primary's answer must not
  reach the apply loop).

Fault injection happens *here*, on the response bytes, because this is
the layer whose job is surviving a hostile network: the armed
:class:`~repro.resilience.faults.FaultInjector`'s ``replication`` hook
names a mangling (:data:`~repro.resilience.faults.REPLICATION_FAULTS`)
and the link applies it to the primary's honest answer — drop it,
truncate it mid-frame, flip a byte inside one record, deliver the
previous frame again, or stall (an empty frame that still advertises
the log's end).  Every mangling therefore exercises the same
decode-verify-retry path a real network failure would.
"""

from __future__ import annotations

import json
import random
import time
import zlib
from typing import Callable, Optional

from repro.exceptions import (
    ReplicationError,
    ReplicationTimeoutError,
    SerializationError,
    StaleEpochError,
)
from repro.obs import current as current_obs
from repro.replication.feed import Primary
from repro.resilience.faults import FaultInjector
from repro.resilience.wire import FeedFrame, decode_feed_frame, encode_feed_frame


class _InjectedDrop(Exception):
    """Internal: the injector swallowed this response (retry path)."""


class ReplicationLink:
    """A follower's fetch channel: feed + retry policy + fault surface.

    *sleep* is injectable so the tests can run the full backoff schedule
    in zero wall-clock time.
    """

    def __init__(
        self,
        feed: Primary,
        max_attempts: int = 8,
        deadline_seconds: Optional[float] = None,
        backoff_base: float = 0.01,
        backoff_cap: float = 1.0,
        jitter: float = 0.25,
        seed: int = 0,
        fault_injector: Optional[FaultInjector] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ReplicationError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ReplicationError("jitter must lie in [0, 1)")
        self.feed = feed
        self.max_attempts = max_attempts
        self.deadline_seconds = deadline_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.fault_injector = (
            fault_injector if fault_injector is not None else feed.fault_injector
        )
        self.sleep = sleep
        self._rng = random.Random(seed)
        #: the highest epoch any verified frame carried
        self.highest_epoch = 0
        #: the last successfully delivered raw frame (duplicate fault replays it)
        self._last_raw: Optional[bytes] = None
        #: lifetime tallies
        self.fetches = 0
        self.retries = 0
        self.faults_applied: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Fetch with retry
    # ------------------------------------------------------------------

    def fetch(self, since_lsn: int, max_records: int = 64) -> FeedFrame:
        """One verified frame past *since_lsn*, however many tries it takes."""
        started = time.monotonic()
        failure: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if (
                self.deadline_seconds is not None
                and time.monotonic() - started > self.deadline_seconds
            ):
                break
            if attempt > 0:
                self.retries += 1
                current_obs().add("replication.retries")
                self.sleep(self._backoff(attempt))
            try:
                raw = self._transfer(since_lsn, max_records)
            except _InjectedDrop as exc:
                failure = ReplicationTimeoutError(str(exc))
                continue
            try:
                frame = decode_feed_frame(raw)
            except SerializationError as exc:
                # torn/corrupt response: discard whole, re-fetch from the
                # same LSN — the feed is idempotent
                current_obs().add("replication.torn_frames")
                failure = exc
                continue
            if frame.epoch < self.highest_epoch:
                raise StaleEpochError(self.highest_epoch, frame.epoch)
            self.highest_epoch = frame.epoch
            self._last_raw = raw
            self.fetches += 1
            current_obs().add("replication.fetches")
            return frame
        raise ReplicationTimeoutError(
            f"fetch(since={since_lsn}) failed after {self.max_attempts} attempts "
            f"({time.monotonic() - started:.3f}s); last failure: {failure!r}"
        ) from failure

    def fetch_checkpoint(self) -> bytes:
        """The primary's newest checkpoint bytes (bootstrap; retried).

        Verification happens in the follower via
        :func:`~repro.store.checkpoint.checkpoint_from_bytes`; the link
        only moves the bytes and retries an injected drop.
        """
        failure: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.retries += 1
                self.sleep(self._backoff(attempt))
            fault = None
            if self.fault_injector is not None:
                fault = self.fault_injector.replication("feed.checkpoint")
            if fault is not None:
                self._count_fault(fault)
                failure = ReplicationTimeoutError(f"injected {fault} on checkpoint fetch")
                continue
            return self.feed.checkpoint_bytes()
        raise ReplicationTimeoutError(
            f"checkpoint fetch failed after {self.max_attempts} attempts; "
            f"last failure: {failure!r}"
        ) from failure

    # ------------------------------------------------------------------
    # The hostile wire
    # ------------------------------------------------------------------

    def _transfer(self, since_lsn: int, max_records: int) -> bytes:
        """One network round trip, with the injector's mangling applied."""
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.replication("feed.fetch")
        if fault == "stall":
            # the feed advertises its end but ships nothing: progress
            # without cargo, the failure mode lag alerts exist for
            self._count_fault(fault)
            return encode_feed_frame(self.feed.epoch, self.feed.last_lsn, [])
        if fault == "duplicate" and self._last_raw is not None:
            # the previous response arrives again (a retransmit the
            # network deduplication missed); apply-side idempotence
            # turns it into a logged no-op
            self._count_fault(fault)
            return self._last_raw
        raw = self.feed.fetch(since_lsn, max_records)
        if fault == "drop":
            self._count_fault(fault)
            raise _InjectedDrop("injected drop of feed response")
        if fault == "truncate":
            self._count_fault(fault)
            return raw[: max(1, len(raw) // 2)]
        if fault == "corrupt":
            self._count_fault(fault)
            return self._corrupt_one_record(raw)
        if fault == "duplicate":
            # nothing delivered yet to duplicate; the honest frame goes
            # through and the *next* match will replay it
            self._count_fault(fault)
        return raw

    @staticmethod
    def _corrupt_one_record(raw: bytes) -> bytes:
        """Mangle one record *after* its CRC was computed, re-frame validly.

        Models a corrupting middlebox that recomputes the outer envelope:
        the frame CRC passes, the per-record CRC must catch it.  A frame
        with no records gets a flipped byte instead (frame CRC catches
        that).
        """
        document = json.loads(raw)
        records = document["data"]["records"]
        if not records:
            mangled = bytearray(raw)
            mangled[len(mangled) // 2] ^= 0xFF
            return bytes(mangled)
        record = records[0]
        record["lsn"] = record.get("lsn", 0) + 1  # CRC no longer matches
        payload = json.dumps(
            document["data"], sort_keys=True, separators=(",", ":")
        )
        crc = zlib.crc32(payload.encode("utf-8"))
        return f'{{"crc": {crc}, "data": {payload}}}'.encode("utf-8")

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        return base * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    def _count_fault(self, kind: str) -> None:
        self.faults_applied[kind] = self.faults_applied.get(kind, 0) + 1
        current_obs().add(f"replication.fault_{kind}")
