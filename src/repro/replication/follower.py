"""`FollowerIndexService` — a read replica fed by WAL shipping.

A follower is recovery running continuously: it **bootstraps** exactly
like :func:`repro.store.recovery.recover` (newest valid checkpoint →
materialise → adopt the maintainer), except the checkpoint bytes arrive
through the :class:`~repro.replication.link.ReplicationLink` instead of
the local filesystem; it then **tails** the primary's WAL from its
checkpoint LSN, applying each shipped record through
``GuardedMaintainer.apply_batch`` — the same code path that applied the
batch on the primary, so replicas are deterministic clones: identical
oids, identical inode ids, identical split/merge order, byte-identical
snapshot fingerprints.

The LSN↔version lockstep the durable service maintains carries over:
every shipped record (including an empty one — a batch fully coalesced
away) bumps the local version by one and publishes through ``evolve()``,
so ``version = checkpoint.version + records applied`` matches the
primary's numbering record for record.

**Idempotence**: a record whose LSN is ``<= applied_lsn`` is a
duplicate delivery (a retransmit, or the duplicate fault) — it is
counted, logged and skipped, never re-applied.  A record that skips
ahead (``lsn > applied_lsn + 1``) means the primary checkpoint-truncated
the records this follower still needed; the follower raises and must
re-bootstrap from a fresh checkpoint.

Followers are **read-only**: :meth:`submit` raises.  The only writer of
a follower's structures is its own apply loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Optional

from repro.exceptions import ReplicationError
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.obs import current as current_obs
from repro.replication.link import ReplicationLink
from repro.resilience.wire import batch_from_wire
from repro.service.queue import Update
from repro.service.service import IndexService, ServiceConfig
from repro.store.checkpoint import checkpoint_from_bytes

#: consecutive empty-but-lagging syncs before one ``replication.stall``
#: event fires (reset by any delivered record)
STALL_SYNCS = 3


class FollowerIndexService(IndexService):
    """An :class:`IndexService` that replays a primary instead of a queue.

    Build one with :meth:`bootstrap`; the constructor only wires an
    already-materialised checkpoint state to its link.
    """

    def __init__(
        self,
        graph,
        link: ReplicationLink,
        config: ServiceConfig,
        maintainer: object,
        applied_lsn: int,
        initial_version: int,
    ):
        super().__init__(
            graph, config, maintainer=maintainer, initial_version=initial_version
        )
        self.link = link
        #: LSN of the last record applied locally
        self.applied_lsn = applied_lsn
        #: the primary's log end as of the last frame (lag denominator)
        self.primary_last_lsn = applied_lsn
        #: lifetime tallies
        self.records_applied = 0
        self.duplicates_skipped = 0
        self.stalls_detected = 0
        self._empty_lagging_syncs = 0
        self._stall_reported = False
        self._tail_thread: Optional[threading.Thread] = None
        self._tail_stop = threading.Event()

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        link: ReplicationLink,
        config: Optional[ServiceConfig] = None,
    ) -> "FollowerIndexService":
        """Checkpoint-load over the wire, then stand ready to tail.

        The index family and ``k`` always come from the checkpoint — a
        replica of an A(2) primary *is* an A(2) index; *config* may tune
        everything else (guard policy, publication mode).
        """
        started = time.perf_counter()
        raw = link.fetch_checkpoint()
        ckpt = checkpoint_from_bytes(raw, origin=f"feed:{link.feed.store_dir}")
        graph, index, family = ckpt.materialize()
        if index is not None:
            maintainer = SplitMergeMaintainer(index)
        else:
            maintainer = AkSplitMergeMaintainer(family)
        base = config if config is not None else ServiceConfig()
        base = replace(base, family=ckpt.kind, k=ckpt.k if ckpt.kind == "ak" else base.k)
        follower = cls(
            graph,
            link,
            base,
            maintainer=maintainer,
            applied_lsn=ckpt.wal_lsn,
            initial_version=ckpt.version,
        )
        elapsed = time.perf_counter() - started
        obs = current_obs()
        obs.add("replication.bootstraps")
        obs.observe("replication.bootstrap_seconds", elapsed)
        obs.event(
            "replication.bootstrap",
            store=link.feed.store_dir,
            checkpoint_lsn=ckpt.wal_lsn,
            version=ckpt.version,
            kind=ckpt.kind,
            bytes=len(raw),
            seconds=elapsed,
        )
        return follower

    # ------------------------------------------------------------------
    # Catch-up / tailing
    # ------------------------------------------------------------------

    @property
    def lag_lsns(self) -> int:
        """LSNs between the primary's last-advertised log end and us."""
        return max(0, self.primary_last_lsn - self.applied_lsn)

    def sync(self, max_records: int = 64) -> int:
        """One fetch + apply round; returns how many records were applied."""
        started = time.perf_counter()
        frame = self.link.fetch(self.applied_lsn, max_records)
        obs = current_obs()
        obs.observe("replication.fetch_seconds", time.perf_counter() - started)
        self.primary_last_lsn = max(self.primary_last_lsn, frame.last_lsn)
        applied = 0
        first_lsn = None
        for lsn, wire_ops in frame.records:
            if self._apply_record(lsn, wire_ops):
                applied += 1
                if first_lsn is None:
                    first_lsn = lsn
        if applied:
            obs.event(
                "replication.batch_applied",
                first_lsn=first_lsn,
                last_lsn=self.applied_lsn,
                records=applied,
                version=self.version,
            )
            self._empty_lagging_syncs = 0
            self._stall_reported = False
        elif self.lag_lsns > 0:
            # the feed advertises records it is not shipping: a stalled
            # feed, the network fault lag alerts exist for
            self._empty_lagging_syncs += 1
            if self._empty_lagging_syncs >= STALL_SYNCS and not self._stall_reported:
                self._stall_reported = True
                self.stalls_detected += 1
                obs.add("replication.stalls")
                obs.event(
                    "replication.stall",
                    applied_lsn=self.applied_lsn,
                    primary_last_lsn=self.primary_last_lsn,
                    lag_lsns=self.lag_lsns,
                    empty_syncs=self._empty_lagging_syncs,
                )
        obs.set("replication.lag_lsns", self.lag_lsns)
        return applied

    def catch_up(
        self,
        max_records: int = 64,
        deadline_seconds: Optional[float] = None,
    ) -> int:
        """Sync until the local state reaches the primary's advertised end.

        Returns the total records applied.  Raises
        :class:`ReplicationError` when the deadline passes first (a
        stalled feed can advertise an end it never ships).
        """
        started = time.monotonic()
        total = 0
        while True:
            total += self.sync(max_records)
            if self.lag_lsns == 0:
                break
            if (
                deadline_seconds is not None
                and time.monotonic() - started > deadline_seconds
            ):
                raise ReplicationError(
                    f"catch-up missed its {deadline_seconds}s deadline at "
                    f"lag {self.lag_lsns} (applied {self.applied_lsn} of "
                    f"{self.primary_last_lsn})"
                )
        elapsed = time.monotonic() - started
        obs = current_obs()
        obs.observe("replication.catchup_seconds", elapsed)
        obs.observe("replication.catchup_records", total)
        return total

    def _apply_record(self, lsn: int, wire_ops: list) -> bool:
        """Apply one shipped record; returns whether it advanced state."""
        obs = current_obs()
        if lsn <= self.applied_lsn:
            # duplicate delivery: a retransmit (or the duplicate fault)
            # re-shipped something already applied — a logged no-op
            self.duplicates_skipped += 1
            obs.add("replication.duplicates_skipped")
            obs.event(
                "replication.duplicate_skipped", lsn=lsn, applied_lsn=self.applied_lsn
            )
            return False
        if lsn != self.applied_lsn + 1:
            raise ReplicationError(
                f"replication gap: next record is lsn {lsn} but only "
                f"{self.applied_lsn} is applied — the primary truncated past "
                "this follower; re-bootstrap from a fresh checkpoint"
            )
        started = time.perf_counter()
        with self._writer_lock:
            ops = batch_from_wire(wire_ops)
            if ops:
                self.guarded.apply_batch(ops)
            # empty records bump the version too: the primary logged the
            # fully-coalesced batch to keep LSNs and versions in lockstep
            snapshot = self._next_snapshot(version=self._snapshot.version + 1)
            self._publish(snapshot)
            if self._touched is not None:
                self._touched.clear()
            self.applied_lsn = lsn
        self.records_applied += 1
        self.stats.batches += 1
        self.stats.applied_ops += len(ops)
        obs.add("replication.records_applied")
        obs.observe("replication.apply_seconds", time.perf_counter() - started)
        return True

    # ------------------------------------------------------------------
    # Background tailing
    # ------------------------------------------------------------------

    def start_tailing(self, poll_interval: float = 0.02, max_records: int = 64) -> None:
        """Tail the feed from a background thread (idempotent)."""
        if self._tail_thread is not None:
            return
        self._tail_stop.clear()

        def loop() -> None:
            while not self._tail_stop.is_set():
                try:
                    applied = self.sync(max_records)
                except ReplicationError:
                    # the feed went away (primary died) or truncated past
                    # us; failover re-points or re-bootstraps this replica
                    current_obs().add("replication.tail_errors")
                    applied = 0
                if not applied:
                    self._tail_stop.wait(poll_interval)

        self._tail_thread = threading.Thread(
            target=loop, name="repro-replica-tail", daemon=True
        )
        self._tail_thread.start()

    def stop_tailing(self) -> None:
        """Stop the background tail loop (the last sync completes)."""
        thread = self._tail_thread
        if thread is None:
            return
        self._tail_stop.set()
        thread.join()
        self._tail_thread = None

    def close(self) -> None:
        self.stop_tailing()
        super().close()

    # ------------------------------------------------------------------
    # Read-only surface
    # ------------------------------------------------------------------

    def submit(self, update: Update) -> bool:
        raise ReplicationError(
            "followers are read-only; submit updates to the primary"
        )

    def submit_nowait(self, update: Update) -> None:
        raise ReplicationError(
            "followers are read-only; submit updates to the primary"
        )

    def health(self) -> dict:
        """Service health plus this replica's replication position."""
        doc = super().health()
        doc["replication"] = {
            "role": "follower",
            "applied_lsn": self.applied_lsn,
            "primary_last_lsn": self.primary_last_lsn,
            "lag_lsns": self.lag_lsns,
            "epoch": self.link.highest_epoch,
            "records_applied": self.records_applied,
            "duplicates_skipped": self.duplicates_skipped,
            "stalls_detected": self.stalls_detected,
            "tailing": self._tail_thread is not None,
        }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FollowerIndexService family={self.config.family!r} "
            f"v{self.version} applied_lsn={self.applied_lsn} lag={self.lag_lsns}>"
        )
