"""Failover: promote the most-caught-up follower, fence the old primary.

The promotion protocol, in order:

1. **Fence** the old primary in memory if its object is still reachable
   (:meth:`IndexService.fence`) — a courtesy fast-path; the durable
   fence below is what actually holds.
2. **Drain** the dead primary's log: every surviving follower runs a
   final catch-up against a feed over the bare store directory (the
   primary process being gone is irrelevant — the feed is a pure
   function of the directory).  This is what turns "highest applied LSN
   wins" into "zero acknowledged-commit loss": anything the primary
   acknowledged under ``fsync="always"`` is in the directory, and the
   drain ships it to whoever will win.
3. **Elect** the follower with the highest applied LSN (ties break by
   list order).
4. **Bump the durable epoch** (:func:`repro.store.epoch.write_epoch`)
   *before* the winner opens the WAL for writing.  From this moment a
   zombie primary's next commit re-reads the epoch file, finds itself
   superseded, and raises
   :class:`~repro.exceptions.StalePrimaryError` instead of forking the
   log's history.
5. **Promote**: the winner's graph + maintainer are adopted into a new
   :class:`~repro.store.DurableIndexService` over the same directory
   (the recovery adoption path — no rebuild), which resumes the LSN
   sequence after the last drained record.

The surviving followers keep their link objects; re-point them at a
feed over the promoted primary and they tail on, their epoch check
accepting the bumped epoch (it only rejects *decreases*).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import ReplicationError
from repro.obs import current as current_obs
from repro.replication.follower import FollowerIndexService
from repro.service.service import IndexService
from repro.store.epoch import read_epoch, write_epoch
from repro.store.service import DurableIndexService, StoreConfig


@dataclass
class FailoverResult:
    """What one promotion did."""

    promoted: DurableIndexService
    #: position of the winner within the followers sequence
    winner: int
    epoch: int
    #: the log position everyone converged to before the election
    applied_lsn: int
    #: records drained from the dead primary's log, per follower
    drained: list[int]
    seconds: float


def promote(
    store_dir: str,
    followers: Sequence[FollowerIndexService],
    old_primary: Optional[IndexService] = None,
    store_config: Optional[StoreConfig] = None,
    catch_up_deadline: Optional[float] = 30.0,
) -> FailoverResult:
    """Run the full failover protocol over *store_dir*; returns the winner.

    *followers* must all replicate the store at *store_dir*.  The final
    drain runs over a clean directory feed (no fault injector): the
    network that killed the primary is assumed partitioned away from
    the failover coordinator, which is reading the log directly.

    The winner's graph and maintainer are **adopted** by the promoted
    service — remove it from the replica set afterwards (it must not
    keep applying shipped records over structures the new primary now
    mutates); the losers re-point their links at the winner and tail on.
    """
    from repro.replication.feed import Primary
    from repro.replication.link import ReplicationLink

    if not followers:
        raise ReplicationError("cannot promote: no followers survive")
    started = time.perf_counter()
    obs = current_obs()
    new_epoch = read_epoch(store_dir) + 1
    if old_primary is not None:
        old_primary.fence(new_epoch)

    # final drain: ship whatever the dead primary's directory still holds
    clean_feed = Primary(store_dir=store_dir)
    drained = []
    for follower in followers:
        link = ReplicationLink(clean_feed)
        previous_link = follower.link
        follower.link = link
        try:
            drained.append(
                follower.catch_up(deadline_seconds=catch_up_deadline)
            )
        except ReplicationError:
            # this follower cannot reach the log's end (truncated past,
            # or deadline); it simply loses the election below
            obs.add("replication.drain_failures")
            drained.append(0)
        finally:
            follower.link = previous_link

    # election: highest applied LSN wins (after a full drain they tie,
    # but a follower whose drain failed mid-way stays behind and loses)
    winner_position = max(
        range(len(followers)), key=lambda position: followers[position].applied_lsn
    )
    winner = followers[winner_position]

    # durable fence before the winner takes the pen
    write_epoch(store_dir, new_epoch)

    promoted = DurableIndexService(
        winner.graph,
        store_dir,
        config=winner.config,
        store_config=store_config,
        maintainer=winner.guarded.maintainer,
        initial_version=winner.version,
        _recovered=True,
    )
    elapsed = time.perf_counter() - started
    obs.add("replication.promotions")
    obs.observe("replication.failover_seconds", elapsed)
    obs.event(
        "failover.promoted",
        store=store_dir,
        winner=winner_position,
        epoch=new_epoch,
        applied_lsn=winner.applied_lsn,
        version=winner.version,
        drained=drained,
        seconds=elapsed,
    )
    return FailoverResult(
        promoted=promoted,
        winner=winner_position,
        epoch=new_epoch,
        applied_lsn=winner.applied_lsn,
        drained=drained,
        seconds=elapsed,
    )
