"""`ReplicaRouter` — staleness-bounded query spreading over replicas.

The read-scaling payoff of WAL shipping: N replicas each serve from
their own snapshot, so aggregate query throughput grows with N while
the primary keeps its write bandwidth.  The router's one hard job is
**bounded staleness**: a replica that has fallen more than
``max_lag_lsns`` behind the primary's log end is skipped until it
catches up, so a reader never observes state older than the bound —
the freshness knob the staleness SLO of the serving layer promises.

Routing is round-robin over the currently-eligible replicas (cheap,
fair, and deterministic enough for the tests); when *no* replica is
eligible the query falls back to the primary if one was attached, and
raises otherwise — failing loudly beats silently serving arbitrarily
stale answers.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.exceptions import ReplicationError
from repro.obs import current as current_obs
from repro.replication.follower import FollowerIndexService
from repro.service.service import IndexService, ServedQuery


class ReplicaRouter:
    """Spread queries across follower replicas, primary as fallback."""

    def __init__(
        self,
        replicas: Sequence[FollowerIndexService],
        primary: Optional[IndexService] = None,
        max_lag_lsns: Optional[int] = None,
    ):
        if not replicas and primary is None:
            raise ReplicationError("a router needs at least one replica or a primary")
        if max_lag_lsns is not None and max_lag_lsns < 0:
            raise ReplicationError("max_lag_lsns must be >= 0")
        self.replicas = list(replicas)
        self.primary = primary
        self.max_lag_lsns = max_lag_lsns
        self._cursor = 0
        self._lock = threading.Lock()
        #: queries served per replica position (and the fallback tally)
        self.routed = [0] * len(self.replicas)
        self.fallbacks = 0

    def eligible(self) -> list[int]:
        """Replica positions currently inside the staleness bound."""
        if self.max_lag_lsns is None:
            return list(range(len(self.replicas)))
        return [
            position
            for position, replica in enumerate(self.replicas)
            if replica.lag_lsns <= self.max_lag_lsns
        ]

    def pick(self) -> IndexService:
        """The service the next query goes to (round-robin, bounded lag)."""
        candidates = self.eligible()
        if candidates:
            with self._lock:
                position = candidates[self._cursor % len(candidates)]
                self._cursor += 1
                self.routed[position] += 1
            return self.replicas[position]
        if self.primary is not None:
            with self._lock:
                self.fallbacks += 1
            current_obs().add("replication.router_fallbacks")
            return self.primary
        raise ReplicationError(
            f"no replica within max_lag_lsns={self.max_lag_lsns} and no "
            "primary to fall back to"
        )

    def query(self, query) -> ServedQuery:
        """Answer one query from whichever service :meth:`pick` chose."""
        return self.pick().query(query)

    def stats(self) -> dict:
        """Routing tallies plus the current per-replica lag picture."""
        return {
            "routed": list(self.routed),
            "fallbacks": self.fallbacks,
            "max_lag_lsns": self.max_lag_lsns,
            "lags": [replica.lag_lsns for replica in self.replicas],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaRouter replicas={len(self.replicas)} "
            f"max_lag={self.max_lag_lsns} fallbacks={self.fallbacks}>"
        )
