"""``repro.replication`` — WAL-shipping read replicas and failover.

The durable spine of :mod:`repro.store` composed into a primary/follower
topology: one writing primary, N read-only replicas, each a
deterministic clone maintained by the same incremental machinery the
paper describes — replication is recovery running continuously.

* :class:`Primary` (:mod:`~repro.replication.feed`) — the WAL exposed
  as a feed: ``fetch(since_lsn, max_records)`` frames plus
  newest-checkpoint shipping for bootstrap.  Works over a live
  :class:`~repro.store.DurableIndexService` or a bare store directory.
* :class:`ReplicationLink` (:mod:`~repro.replication.link`) — the
  hostile-network wrapper: deadline/timeout, capped exponential backoff
  with jitter, resumable re-fetch after torn or corrupt frames, epoch
  monotonicity, and the injection surface for the five
  :data:`~repro.resilience.faults.REPLICATION_FAULTS`.
* :class:`FollowerIndexService` (:mod:`~repro.replication.follower`) —
  bootstrap from the newest valid checkpoint, tail the WAL from its
  LSN, apply through ``GuardedMaintainer.apply_batch``, publish local
  snapshots via ``evolve()``; duplicate deliveries are logged no-ops.
* :class:`ReplicaRouter` (:mod:`~repro.replication.router`) —
  staleness-bounded round-robin query spreading with primary fallback.
* :func:`promote` (:mod:`~repro.replication.failover`) — drain the dead
  primary's log, elect the highest applied LSN, bump the durable
  fencing epoch, adopt the winner into a new writing service; a zombie
  primary's next commit raises
  :class:`~repro.exceptions.StalePrimaryError`.
"""

from repro.replication.failover import FailoverResult, promote
from repro.replication.feed import Primary
from repro.replication.follower import STALL_SYNCS, FollowerIndexService
from repro.replication.link import ReplicationLink
from repro.replication.router import ReplicaRouter

__all__ = [
    "Primary",
    "ReplicationLink",
    "FollowerIndexService",
    "STALL_SYNCS",
    "ReplicaRouter",
    "promote",
    "FailoverResult",
]
