"""``repro.resilience`` — transactional maintenance and graceful degradation.

The paper's maintainers mutate a graph and its index in lockstep; an
exception mid-operation would leave both silently corrupt.  This package
makes every maintenance operation all-or-nothing:

* :class:`MutationJournal` / :class:`Transaction` — an undo log the
  graph and index write through while a transaction is open (``None``
  hooks, i.e. zero cost, otherwise), with snapshot-based enlistment for
  the :class:`~repro.index.akindex.AkIndexFamily`;
* :class:`GuardedMaintainer` / :class:`GuardConfig` — runs any
  maintainer's public mutations transactionally and applies a ``raise``
  / ``retry`` / ``degrade`` failure policy, where ``degrade`` falls back
  to reconstruction from the rolled-back graph;
* :class:`InvariantGuard` — cadenced post-checks reusing the library's
  validity/minimality oracles;
* :class:`FaultInjector` — deterministic, seeded mid-operation faults
  for the chaos suite (``tests/resilience/``).
"""

from repro.resilience.faults import PHASE_KINDS, REPLICATION_FAULTS, FaultInjector
from repro.resilience.guard import POLICIES, GuardConfig, GuardedMaintainer, GuardStats
from repro.resilience.invariants import LEVELS, InvariantGuard
from repro.resilience.journal import (
    JournalRecord,
    MutationJournal,
    TouchedSet,
    Transaction,
)
from repro.resilience.wire import (
    FEED_FORMAT_VERSION,
    WIRE_OPS,
    FeedFrame,
    batch_from_wire,
    batch_to_wire,
    decode_feed_frame,
    encode_feed_frame,
    feed_record,
    op_from_wire,
    op_to_wire,
)

__all__ = [
    "WIRE_OPS",
    "op_to_wire",
    "op_from_wire",
    "batch_to_wire",
    "batch_from_wire",
    "FEED_FORMAT_VERSION",
    "FeedFrame",
    "feed_record",
    "encode_feed_frame",
    "decode_feed_frame",
    "MutationJournal",
    "Transaction",
    "TouchedSet",
    "JournalRecord",
    "GuardedMaintainer",
    "GuardConfig",
    "GuardStats",
    "POLICIES",
    "InvariantGuard",
    "LEVELS",
    "FaultInjector",
    "PHASE_KINDS",
    "REPLICATION_FAULTS",
]
