"""Post-transaction invariant checking with configurable cadence.

The guard reuses the library's existing oracles instead of reimplementing
checks: :meth:`DataGraph.check_invariants` and
:meth:`StructuralIndex.check_invariants` for structural consistency,
:func:`repro.index.stability.is_valid_1index` /
:func:`is_minimal_1index` for the 1-index, and
:meth:`AkIndexFamily.check_invariants` / :meth:`is_minimum` for the
family (minimal and minimum coincide for A(k), Lemma 6).

Checks are O(n + m) or worse, so the cadence is configurable: every
update, every N-th update, or an independently sampled fraction (seeded,
deterministic).  A failed check raises
:class:`repro.exceptions.InvariantViolationError`, which the
:class:`~repro.resilience.guard.GuardedMaintainer` treats exactly like a
mid-operation exception — roll back, then apply the failure policy.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import InvariantViolationError
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.index.stability import is_minimal_1index, is_valid_1index

#: check depths, each including the previous: structural bookkeeping only,
#: + validity (stability), + minimality.
LEVELS = ("basic", "valid", "minimal")


class InvariantGuard:
    """Cadenced invariant checks over a graph and its index or family."""

    def __init__(
        self,
        level: str = "valid",
        check_every: int = 1,
        sample_rate: Optional[float] = None,
        seed: int = 0,
    ):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; choose from {LEVELS}")
        if sample_rate is not None and not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in [0, 1]")
        self.level = level
        self.check_every = check_every
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._since_check = 0
        self.checks_run = 0

    def due(self) -> bool:
        """Advance the cadence by one update; report whether to check now."""
        if self.sample_rate is not None:
            return self._rng.random() < self.sample_rate
        if self.check_every <= 0:
            return False
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            return True
        return False

    def check(
        self,
        graph: DataGraph,
        index: Optional[StructuralIndex] = None,
        family: Optional[AkIndexFamily] = None,
    ) -> None:
        """Run the configured checks; raise :class:`InvariantViolationError`."""
        self.checks_run += 1
        try:
            graph.check_invariants()
            if index is not None:
                self._check_index(index)
            if family is not None:
                self._check_family(family)
        except InvariantViolationError:
            raise
        except AssertionError as exc:
            raise InvariantViolationError(f"structural invariant broken: {exc}") from exc

    def _check_index(self, index: StructuralIndex) -> None:
        if self.level == "basic":
            index.check_invariants()
            return
        if not is_valid_1index(index):
            raise InvariantViolationError("index is no longer a valid 1-index")
        if self.level == "minimal" and not is_minimal_1index(index):
            raise InvariantViolationError("index is valid but no longer minimal")

    def _check_family(self, family: AkIndexFamily) -> None:
        family.check_invariants()
        if self.level == "minimal" and not family.is_minimum():
            raise InvariantViolationError("A(k) family drifted from the minimum")
