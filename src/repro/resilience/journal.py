"""The mutation journal and transaction scope for atomic maintenance.

Every public mutator of :class:`~repro.graph.datagraph.DataGraph` and
:class:`~repro.index.base.StructuralIndex` carries a journal hook::

    if self._journal is not None:
        self._journal.record(self, op, payload)

``_journal`` is ``None`` outside a transaction, so the hook costs one
attribute load and an ``is not None`` test — the zero-overhead contract
``benchmarks/bench_guard_overhead.py`` enforces.  Inside a transaction
the hook appends an undo record *after* the mutation has been applied;
:meth:`MutationJournal.rollback` replays the records in reverse,
dispatching each to its target's ``_undo_journal``.

Graph and index records interleave in **one** shared log.  That ordering
is what makes rollback correct: index undo paths read graph adjacency
(``_detach``/``_attach``), and reverse-order replay guarantees the graph
looks exactly as it did when the index record was written.

The :class:`AkIndexFamily` is the one structure rolled back by snapshot
instead of journaling: its maintainer rewrites per-level dicts directly
rather than going through narrow mutation primitives, so a before-copy
(cost O(k·n), taken only when a transaction opens) is both simpler and
cheaper than journaling every dict write.  The graph side of an A(k)
update is still journaled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.exceptions import RollbackError
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex

#: one undo record: (target structure, operation name, inverse payload)
JournalRecord = tuple[Any, str, tuple]


class TouchedSet:
    """Accumulator of everything a batch of mutations may have changed.

    The serving layer's copy-on-write publication
    (:meth:`repro.service.snapshot.IndexSnapshot.evolve`) re-captures
    only the *touched* entries of the previous frozen version and
    structurally shares the rest, so publish cost tracks the batch, not
    the corpus.  Correctness contract: the sets here must be a
    **superset** of what actually changed — recapturing an untouched key
    is wasted work but never wrong, while missing a touched key would
    serve stale data.  That is why rolled-back mutations stay recorded
    (the recapture just reproduces the shared entry) and why
    :meth:`mark_all` exists for wholesale events (``rebuild_from_graph``
    renames every inode, so the only safe answer is "everything").

    Fed from two sources:

    * :meth:`MutationJournal.record` — every journaled graph / 1-index
      mutation maps to touched dnodes / inodes (see :meth:`observe`);
    * :class:`~repro.maintenance.ak_split_merge.AkSplitMergeMaintainer`
      — the A(k) family is snapshot-rolled-back, not journaled, so the
      maintainer reports leaf-level membership changes directly into
      :attr:`leaf_moves` / :attr:`leaf_tokens`.
    """

    __slots__ = ("dnodes", "inodes", "leaf_moves", "leaf_tokens", "full")

    def __init__(self) -> None:
        #: dnodes whose label/value/adjacency changed (including dead ones)
        self.dnodes: set[int] = set()
        #: 1-index inodes whose extent or iedges changed (including dead ones)
        self.inodes: set[int] = set()
        #: A(k) leaf-level membership changes: ``(dnode, old_token, new_token)``
        #: with ``None`` for "not covered before" / "no longer covered"
        self.leaf_moves: list[tuple[int, Optional[int], Optional[int]]] = []
        #: A(k) leaf tokens touched directly (e.g. classes emptied)
        self.leaf_tokens: set[int] = set()
        #: everything invalidated — evolve must fall back to full capture
        self.full: bool = False

    def mark_all(self) -> None:
        """Invalidate wholesale (index rebuilt: every id changed)."""
        self.full = True

    def clear(self) -> None:
        """Reset after a publish consumed the accumulated touches."""
        self.dnodes.clear()
        self.inodes.clear()
        self.leaf_moves.clear()
        self.leaf_tokens.clear()
        self.full = False

    def __bool__(self) -> bool:
        return bool(
            self.full
            or self.dnodes
            or self.inodes
            or self.leaf_moves
            or self.leaf_tokens
        )

    # ------------------------------------------------------------------
    # Journal-record translation
    # ------------------------------------------------------------------

    def observe(self, target: Any, op: str, payload: tuple) -> None:
        """Fold one journal record into the touched sets.

        Op names are globally unique across graph and index journals.
        Records are appended *after* their mutation applied, so adjacency
        and partition lookups here see the post-mutation state — exactly
        what the next snapshot will capture.  Index records expand to the
        neighbour inodes whose support tables the mutation bumped
        (``_attach``/``_detach`` are not journaled per-bump), at the same
        O(degree) cost the mutation itself already paid.
        """
        if self.full:
            return
        if op in ("edge_added", "edge_removed"):
            self.dnodes.add(payload[0])
            self.dnodes.add(payload[1])
        elif op in ("node_added", "node_removed", "relabeled", "value_set", "root_set"):
            self.dnodes.add(payload[0])
        elif op == "support_bumped":
            self.inodes.add(payload[0])
            self.inodes.add(payload[1])
        elif op in ("inode_created", "inode_destroyed"):
            self.inodes.add(payload[0])
        elif op == "dnode_moved":
            dnode, source = payload
            self.inodes.add(source)
            self._touch_inode_neighbourhood(target, dnode)
        elif op in ("dnode_covered", "dnode_dropped"):
            dnode, inode = payload
            self.inodes.add(inode)
            self._touch_inode_neighbourhood(target, dnode)
        elif op == "merge_folded":
            survivor, other = payload[0], payload[1]
            other_succ, other_pred = payload[4], payload[5]
            self.inodes.add(survivor)
            self.inodes.add(other)
            # third parties had `other` popped / `survivor` bumped in
            # their support tables — their iedge sets changed too
            self.inodes.update(other_succ)
            self.inodes.update(other_pred)
        elif op == "blocks_absorbed":
            (new_nodes,) = payload
            for dnode in new_nodes:
                self._touch_inode_neighbourhood(target, dnode)
        # unknown ops fall through silently: the journal's rollback path
        # is the format authority and raises on drift

    def _touch_inode_neighbourhood(self, index: Any, dnode: int) -> None:
        """Touch the inodes of *dnode* and of its graph neighbours."""
        inode_of = index._inode_of
        inode = inode_of.get(dnode)
        if inode is not None:
            self.inodes.add(inode)
        graph = index.graph
        if not graph.has_node(dnode):
            return
        for p in graph.iter_pred(dnode):
            pi = inode_of.get(p)
            if pi is not None:
                self.inodes.add(pi)
        for c in graph.iter_succ(dnode):
            ci = inode_of.get(c)
            if ci is not None:
                self.inodes.add(ci)


class MutationJournal:
    """An undo log shared by all structures enlisted in one transaction.

    *on_record*, when given, is invoked as ``on_record(op, count)`` after
    every append — the fault injector's hook point.  Because records are
    appended *after* their mutation applies, an exception raised from
    *on_record* leaves the log consistent: rollback undoes everything,
    including the mutation whose record triggered the fault.
    """

    __slots__ = ("records", "on_record", "touched")

    def __init__(
        self,
        on_record: Optional[Callable[[str, int], None]] = None,
        touched: Optional[TouchedSet] = None,
    ):
        self.records: list[JournalRecord] = []
        self.on_record = on_record
        self.touched = touched

    def record(self, target: Any, op: str, payload: tuple) -> None:
        """Append one undo record (called from the structures' hooks)."""
        self.records.append((target, op, payload))
        if self.touched is not None:
            self.touched.observe(target, op, payload)
        if self.on_record is not None:
            self.on_record(op, len(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def rollback(self) -> None:
        """Undo every recorded mutation, newest first.

        Raises :class:`RollbackError` if an undo step itself fails — the
        structures must then be considered corrupt.
        """
        records = self.records
        while records:
            target, op, payload = records.pop()
            try:
                target._undo_journal(op, payload)
            except Exception as exc:  # noqa: BLE001 - wrapped, state is lost
                records.clear()
                raise RollbackError(
                    f"undo of {op!r} on {type(target).__name__} failed: {exc}"
                ) from exc

    def clear(self) -> None:
        """Forget all records (commit)."""
        self.records.clear()


class Transaction:
    """Journal-attach/detach scope around one maintenance operation.

    Enlists a graph, optionally a :class:`StructuralIndex` (journaled)
    and/or an :class:`AkIndexFamily` (snapshot), then either
    :meth:`commit` (drop the log) or :meth:`rollback` (restore the exact
    pre-transaction state).  Usable as a context manager: an exception
    escaping the ``with`` block triggers rollback, normal exit commits.

    Transactions do not nest — the journal hooks hold a single slot.
    """

    def __init__(
        self,
        graph: DataGraph,
        index: Optional[StructuralIndex] = None,
        family: Optional[AkIndexFamily] = None,
        on_record: Optional[Callable[[str, int], None]] = None,
        touched: Optional[TouchedSet] = None,
    ):
        self.graph = graph
        self.index = index
        self.family = family
        self.journal = MutationJournal(on_record, touched=touched)
        self._family_backup: Optional[AkIndexFamily] = None
        self._active = False

    def begin(self) -> "Transaction":
        """Attach the journal to every enlisted structure."""
        if self._active:
            raise RollbackError("transaction is already active")
        if self.graph._journal is not None or (
            self.index is not None and self.index._journal is not None
        ):
            raise RollbackError("structure is already enlisted in a transaction")
        self.graph._journal = self.journal
        if self.index is not None:
            self.index._journal = self.journal
        if self.family is not None:
            self._family_backup = self.family.copy()
        self._active = True
        return self

    def commit(self) -> None:
        """Detach the journal and keep all mutations."""
        self._detach()
        self.journal.clear()
        self._family_backup = None

    def rollback(self) -> None:
        """Detach the journal and restore the pre-transaction state."""
        self._detach()
        try:
            self.journal.rollback()
        finally:
            if self._family_backup is not None:
                self.family.levels = self._family_backup.levels
                self._family_backup = None

    def _detach(self) -> None:
        # Detach before touching state so the undo paths (which write the
        # internal dicts directly) can never re-enter the journal.
        if not self._active:
            raise RollbackError("transaction is not active")
        self._active = False
        self.graph._journal = None
        if self.index is not None:
            self.index._journal = None

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
