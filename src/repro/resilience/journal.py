"""The mutation journal and transaction scope for atomic maintenance.

Every public mutator of :class:`~repro.graph.datagraph.DataGraph` and
:class:`~repro.index.base.StructuralIndex` carries a journal hook::

    if self._journal is not None:
        self._journal.record(self, op, payload)

``_journal`` is ``None`` outside a transaction, so the hook costs one
attribute load and an ``is not None`` test — the zero-overhead contract
``benchmarks/bench_guard_overhead.py`` enforces.  Inside a transaction
the hook appends an undo record *after* the mutation has been applied;
:meth:`MutationJournal.rollback` replays the records in reverse,
dispatching each to its target's ``_undo_journal``.

Graph and index records interleave in **one** shared log.  That ordering
is what makes rollback correct: index undo paths read graph adjacency
(``_detach``/``_attach``), and reverse-order replay guarantees the graph
looks exactly as it did when the index record was written.

The :class:`AkIndexFamily` is the one structure rolled back by snapshot
instead of journaling: its maintainer rewrites per-level dicts directly
rather than going through narrow mutation primitives, so a before-copy
(cost O(k·n), taken only when a transaction opens) is both simpler and
cheaper than journaling every dict write.  The graph side of an A(k)
update is still journaled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.exceptions import RollbackError
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex

#: one undo record: (target structure, operation name, inverse payload)
JournalRecord = tuple[Any, str, tuple]


class MutationJournal:
    """An undo log shared by all structures enlisted in one transaction.

    *on_record*, when given, is invoked as ``on_record(op, count)`` after
    every append — the fault injector's hook point.  Because records are
    appended *after* their mutation applies, an exception raised from
    *on_record* leaves the log consistent: rollback undoes everything,
    including the mutation whose record triggered the fault.
    """

    __slots__ = ("records", "on_record")

    def __init__(self, on_record: Optional[Callable[[str, int], None]] = None):
        self.records: list[JournalRecord] = []
        self.on_record = on_record

    def record(self, target: Any, op: str, payload: tuple) -> None:
        """Append one undo record (called from the structures' hooks)."""
        self.records.append((target, op, payload))
        if self.on_record is not None:
            self.on_record(op, len(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def rollback(self) -> None:
        """Undo every recorded mutation, newest first.

        Raises :class:`RollbackError` if an undo step itself fails — the
        structures must then be considered corrupt.
        """
        records = self.records
        while records:
            target, op, payload = records.pop()
            try:
                target._undo_journal(op, payload)
            except Exception as exc:  # noqa: BLE001 - wrapped, state is lost
                records.clear()
                raise RollbackError(
                    f"undo of {op!r} on {type(target).__name__} failed: {exc}"
                ) from exc

    def clear(self) -> None:
        """Forget all records (commit)."""
        self.records.clear()


class Transaction:
    """Journal-attach/detach scope around one maintenance operation.

    Enlists a graph, optionally a :class:`StructuralIndex` (journaled)
    and/or an :class:`AkIndexFamily` (snapshot), then either
    :meth:`commit` (drop the log) or :meth:`rollback` (restore the exact
    pre-transaction state).  Usable as a context manager: an exception
    escaping the ``with`` block triggers rollback, normal exit commits.

    Transactions do not nest — the journal hooks hold a single slot.
    """

    def __init__(
        self,
        graph: DataGraph,
        index: Optional[StructuralIndex] = None,
        family: Optional[AkIndexFamily] = None,
        on_record: Optional[Callable[[str, int], None]] = None,
    ):
        self.graph = graph
        self.index = index
        self.family = family
        self.journal = MutationJournal(on_record)
        self._family_backup: Optional[AkIndexFamily] = None
        self._active = False

    def begin(self) -> "Transaction":
        """Attach the journal to every enlisted structure."""
        if self._active:
            raise RollbackError("transaction is already active")
        if self.graph._journal is not None or (
            self.index is not None and self.index._journal is not None
        ):
            raise RollbackError("structure is already enlisted in a transaction")
        self.graph._journal = self.journal
        if self.index is not None:
            self.index._journal = self.journal
        if self.family is not None:
            self._family_backup = self.family.copy()
        self._active = True
        return self

    def commit(self) -> None:
        """Detach the journal and keep all mutations."""
        self._detach()
        self.journal.clear()
        self._family_backup = None

    def rollback(self) -> None:
        """Detach the journal and restore the pre-transaction state."""
        self._detach()
        try:
            self.journal.rollback()
        finally:
            if self._family_backup is not None:
                self.family.levels = self._family_backup.levels
                self._family_backup = None

    def _detach(self) -> None:
        # Detach before touching state so the undo paths (which write the
        # internal dicts directly) can never re-enter the journal.
        if not self._active:
            raise RollbackError("transaction is not active")
        self._active = False
        self.graph._journal = None
        if self.index is not None:
            self.index._journal = None

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
