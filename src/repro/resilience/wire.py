"""The maintenance-operation wire schema (stable, JSON-only).

:meth:`GuardedMaintainer.apply_batch` consumes ``(method, args)`` pairs
whose args may hold live Python objects — an :class:`EdgeKind` enum, a
whole :class:`DataGraph` for ``add_subgraph``.  The durable layers
(:mod:`repro.store`) need those same operations as plain JSON so a
write-ahead-log record survives a process and replays identically.

This module is that boundary: :func:`op_to_wire` lowers one batch
operation to a JSON-serialisable dict, :func:`op_from_wire` raises it
back.  The encoding is **stable by contract** — logs written by one
version of the library must replay on the next — so changes here must
stay backward-compatible (add optional fields, never repurpose
existing ones; bump the WAL format version for anything structural).

Wire shapes (``{"op": <name>, "args": [...]}``):

* ``insert_edge``    — ``[source, target, kind]`` with kind ``"tree"`` / ``"idref"``
* ``delete_edge``    — ``[source, target]``
* ``insert_node``    — ``[parent, label, value]`` (value JSON-serialisable)
* ``delete_node``    — ``[dnode]``
* ``add_subgraph``   — ``[graph_dict, subgraph_root, [[a, b, kind], ...]]``
  (the subgraph in the :func:`repro.graph.serialize.graph_to_dict`
  format; cross edges normalised to explicit kinds)
* ``delete_subgraph`` — ``[subgraph_root]``

Malformed payloads raise :class:`SerializationError`, never a bare
``KeyError`` / ``TypeError`` / ``ValueError`` — the same hardened-loader
contract the graph and index formats follow.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import SerializationError
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.serialize import graph_from_dict, graph_to_dict

#: every batch-operation name the schema can carry (mirrors
#: ``repro.service.queue.ALL_OPS`` — the guarded mutation surface)
WIRE_OPS = (
    "insert_edge",
    "delete_edge",
    "insert_node",
    "delete_node",
    "add_subgraph",
    "delete_subgraph",
)


def _cross_edges_to_wire(cross_edges: tuple) -> list[list]:
    """Normalise ``(a, b)`` / ``(a, b, kind)`` tuples to explicit kinds."""
    wire = []
    for item in cross_edges:
        if len(item) == 2:
            a, b = item
            kind = EdgeKind.TREE
        else:
            a, b, kind = item
        wire.append([a, b, kind.value])
    return wire


def op_to_wire(method: str, args: tuple) -> dict[str, Any]:
    """Lower one ``(method, args)`` batch operation to a JSON-safe dict."""
    if method == "insert_edge":
        source, target, kind = args
        wire_args = [source, target, kind.value]
    elif method == "delete_edge":
        source, target = args
        wire_args = [source, target]
    elif method == "insert_node":
        parent, label, value = args
        wire_args = [parent, label, value]
    elif method == "delete_node":
        (dnode,) = args
        wire_args = [dnode]
    elif method == "add_subgraph":
        subgraph, subgraph_root, cross_edges = args
        wire_args = [
            graph_to_dict(subgraph),
            subgraph_root,
            _cross_edges_to_wire(tuple(cross_edges)),
        ]
    elif method == "delete_subgraph":
        (subgraph_root,) = args
        wire_args = [subgraph_root]
    else:
        raise SerializationError(
            f"cannot encode unknown operation {method!r}; choose from {WIRE_OPS}"
        )
    return {"op": method, "args": wire_args}


def op_from_wire(payload: dict[str, Any]) -> tuple[str, tuple]:
    """Raise a wire dict back into an ``apply_batch`` ``(method, args)`` pair."""
    try:
        method = payload["op"]
        wire_args = payload["args"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed wire operation: {exc!r}") from exc
    try:
        if method == "insert_edge":
            source, target, kind = wire_args
            return method, (source, target, EdgeKind(kind))
        if method == "delete_edge":
            source, target = wire_args
            return method, (source, target)
        if method == "insert_node":
            parent, label, value = wire_args
            return method, (parent, label, value)
        if method == "delete_node":
            (dnode,) = wire_args
            return method, (dnode,)
        if method == "add_subgraph":
            graph_dict, subgraph_root, cross_wire = wire_args
            cross_edges = tuple(
                (a, b, EdgeKind(kind)) for a, b, kind in cross_wire
            )
            return method, (graph_from_dict(graph_dict), subgraph_root, cross_edges)
        if method == "delete_subgraph":
            (subgraph_root,) = wire_args
            return method, (subgraph_root,)
    except SerializationError:
        raise
    except (ValueError, TypeError) as exc:
        raise SerializationError(
            f"malformed args for wire operation {method!r}: {exc}"
        ) from exc
    raise SerializationError(
        f"cannot decode unknown operation {method!r}; choose from {WIRE_OPS}"
    )


def batch_to_wire(operations: list[tuple[str, tuple]]) -> list[dict[str, Any]]:
    """Encode a whole ``apply_batch`` operation list."""
    return [op_to_wire(method, tuple(args)) for method, args in operations]


def batch_from_wire(payload: list[dict[str, Any]]) -> list[tuple[str, tuple]]:
    """Decode a whole encoded batch back to ``apply_batch`` input."""
    if not isinstance(payload, list):
        raise SerializationError(
            f"malformed wire batch: expected a list, got {type(payload).__name__}"
        )
    return [op_from_wire(op) for op in payload]
