"""The maintenance-operation wire schema (stable, JSON-only).

:meth:`GuardedMaintainer.apply_batch` consumes ``(method, args)`` pairs
whose args may hold live Python objects — an :class:`EdgeKind` enum, a
whole :class:`DataGraph` for ``add_subgraph``.  The durable layers
(:mod:`repro.store`) need those same operations as plain JSON so a
write-ahead-log record survives a process and replays identically.

This module is that boundary: :func:`op_to_wire` lowers one batch
operation to a JSON-serialisable dict, :func:`op_from_wire` raises it
back.  The encoding is **stable by contract** — logs written by one
version of the library must replay on the next — so changes here must
stay backward-compatible (add optional fields, never repurpose
existing ones; bump the WAL format version for anything structural).

Wire shapes (``{"op": <name>, "args": [...]}``):

* ``insert_edge``    — ``[source, target, kind]`` with kind ``"tree"`` / ``"idref"``
* ``delete_edge``    — ``[source, target]``
* ``insert_node``    — ``[parent, label, value]`` (value JSON-serialisable)
* ``delete_node``    — ``[dnode]``
* ``add_subgraph``   — ``[graph_dict, subgraph_root, [[a, b, kind], ...]]``
  (the subgraph in the :func:`repro.graph.serialize.graph_to_dict`
  format; cross edges normalised to explicit kinds) — an optional
  fourth element ``true`` marks an oid-preserving addition (absent
  means the pre-existing remapping behaviour, so old logs replay
  unchanged)
* ``delete_subgraph`` — ``[subgraph_root]``
* ``set_value``       — ``[dnode, value]`` (value JSON-serialisable)

Malformed payloads raise :class:`SerializationError`, never a bare
``KeyError`` / ``TypeError`` / ``ValueError`` — the same hardened-loader
contract the graph and index formats follow.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any

from repro.exceptions import SerializationError
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.serialize import graph_from_dict, graph_to_dict

#: every batch-operation name the schema can carry (mirrors
#: ``repro.service.queue.ALL_OPS`` — the guarded mutation surface)
WIRE_OPS = (
    "insert_edge",
    "delete_edge",
    "insert_node",
    "delete_node",
    "add_subgraph",
    "delete_subgraph",
    "set_value",
)


def _cross_edges_to_wire(cross_edges: tuple) -> list[list]:
    """Normalise ``(a, b)`` / ``(a, b, kind)`` tuples to explicit kinds."""
    wire = []
    for item in cross_edges:
        if len(item) == 2:
            a, b = item
            kind = EdgeKind.TREE
        else:
            a, b, kind = item
        wire.append([a, b, kind.value])
    return wire


def op_to_wire(method: str, args: tuple) -> dict[str, Any]:
    """Lower one ``(method, args)`` batch operation to a JSON-safe dict."""
    if method == "insert_edge":
        source, target, kind = args
        wire_args = [source, target, kind.value]
    elif method == "delete_edge":
        source, target = args
        wire_args = [source, target]
    elif method == "insert_node":
        parent, label, value = args
        wire_args = [parent, label, value]
    elif method == "delete_node":
        (dnode,) = args
        wire_args = [dnode]
    elif method == "add_subgraph":
        subgraph, subgraph_root, cross_edges = args[:3]
        wire_args = [
            graph_to_dict(subgraph),
            subgraph_root,
            _cross_edges_to_wire(tuple(cross_edges)),
        ]
        if len(args) > 3 and args[3]:
            wire_args.append(True)
    elif method == "delete_subgraph":
        (subgraph_root,) = args
        wire_args = [subgraph_root]
    elif method == "set_value":
        dnode, value = args
        wire_args = [dnode, value]
    else:
        raise SerializationError(
            f"cannot encode unknown operation {method!r}; choose from {WIRE_OPS}"
        )
    return {"op": method, "args": wire_args}


def op_from_wire(payload: dict[str, Any]) -> tuple[str, tuple]:
    """Raise a wire dict back into an ``apply_batch`` ``(method, args)`` pair."""
    try:
        method = payload["op"]
        wire_args = payload["args"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed wire operation: {exc!r}") from exc
    try:
        if method == "insert_edge":
            source, target, kind = wire_args
            return method, (source, target, EdgeKind(kind))
        if method == "delete_edge":
            source, target = wire_args
            return method, (source, target)
        if method == "insert_node":
            parent, label, value = wire_args
            return method, (parent, label, value)
        if method == "delete_node":
            (dnode,) = wire_args
            return method, (dnode,)
        if method == "add_subgraph":
            graph_dict, subgraph_root, cross_wire = wire_args[:3]
            cross_edges = tuple(
                (a, b, EdgeKind(kind)) for a, b, kind in cross_wire
            )
            decoded: tuple = (graph_from_dict(graph_dict), subgraph_root, cross_edges)
            if len(wire_args) > 3 and wire_args[3]:
                decoded += (True,)
            return method, decoded
        if method == "delete_subgraph":
            (subgraph_root,) = wire_args
            return method, (subgraph_root,)
        if method == "set_value":
            dnode, value = wire_args
            return method, (dnode, value)
    except SerializationError:
        raise
    except (ValueError, TypeError) as exc:
        raise SerializationError(
            f"malformed args for wire operation {method!r}: {exc}"
        ) from exc
    raise SerializationError(
        f"cannot decode unknown operation {method!r}; choose from {WIRE_OPS}"
    )


def batch_to_wire(operations: list[tuple[str, tuple]]) -> list[dict[str, Any]]:
    """Encode a whole ``apply_batch`` operation list."""
    return [op_to_wire(method, tuple(args)) for method, args in operations]


def batch_from_wire(payload: list[dict[str, Any]]) -> list[tuple[str, tuple]]:
    """Decode a whole encoded batch back to ``apply_batch`` input."""
    if not isinstance(payload, list):
        raise SerializationError(
            f"malformed wire batch: expected a list, got {type(payload).__name__}"
        )
    return [op_from_wire(op) for op in payload]


# ----------------------------------------------------------------------
# Replication feed framing
# ----------------------------------------------------------------------
#
# One feed response is one JSON frame::
#
#     {"crc": <frame crc>, "data": {
#         "v": 1,
#         "epoch": 3,            # the primary's fencing epoch
#         "last_lsn": 42,        # end of the primary's log at fetch time
#         "records": [
#             {"crc": <record crc>, "lsn": 7, "ops": [...]},
#             ...
#         ]
#     }}
#
# The frame CRC catches a truncated or bit-flipped response as a whole;
# the per-record CRCs (same canonical-JSON convention as a WAL line, so
# a record's integrity check is identical at rest and in flight) catch a
# payload that was re-framed around damaged records — a corrupt proxy
# can produce a frame whose envelope checks out but whose cargo does
# not.  Either failure is a SerializationError; the link treats it as a
# retriable torn response, never applying a partial frame.

#: current feed frame format version; bump on structural changes
FEED_FORMAT_VERSION = 1


def _canonical_crc(body: dict[str, Any]) -> int:
    """CRC32 over compact sorted-key JSON (the WAL record convention).

    Deliberately a local copy of ``repro.store.wal._record_crc`` rather
    than an import: ``repro.store`` imports this module while building
    its service layer, so importing back would cycle.  The convention is
    tiny and frozen by the WAL format contract.
    """
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


def feed_record(lsn: int, ops: list[dict[str, Any]]) -> dict[str, Any]:
    """One CRC-stamped feed record (shape-compatible with a WAL line)."""
    body = {"lsn": lsn, "ops": ops, "v": FEED_FORMAT_VERSION}
    record = dict(body)
    record["crc"] = _canonical_crc(body)
    return record


@dataclass(frozen=True)
class FeedFrame:
    """One decoded, CRC-verified replication feed response."""

    epoch: int
    last_lsn: int
    #: ``(lsn, wire-encoded ops)`` pairs, in LSN order
    records: list[tuple[int, list[dict[str, Any]]]]


def encode_feed_frame(
    epoch: int,
    last_lsn: int,
    records: list[dict[str, Any]],
) -> bytes:
    """Encode one feed response; *records* are :func:`feed_record` dicts."""
    data = {
        "v": FEED_FORMAT_VERSION,
        "epoch": epoch,
        "last_lsn": last_lsn,
        "records": records,
    }
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8"))
    return f'{{"crc": {crc}, "data": {payload}}}'.encode("utf-8")


def decode_feed_frame(raw: bytes) -> FeedFrame:
    """Verify and decode one feed response.

    Checks, in order: frame JSON, frame CRC, format version, then every
    record's shape and CRC.  Any failure raises
    :class:`SerializationError` — the caller must treat the whole frame
    as undelivered and re-fetch from its own applied LSN.
    """
    try:
        document = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"feed frame is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError(
            f"malformed feed frame: expected an object, got {type(document).__name__}"
        )
    try:
        crc = document["crc"]
        data = document["data"]
    except KeyError as exc:
        raise SerializationError(f"malformed feed frame: {exc!r}") from exc
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != crc:
        raise SerializationError("feed frame failed its CRC check")
    version = data.get("v", 0)
    if not isinstance(version, int) or version > FEED_FORMAT_VERSION:
        raise SerializationError(
            f"feed frame format version {version!r} is newer than the "
            f"supported version {FEED_FORMAT_VERSION}"
        )
    try:
        epoch = data["epoch"]
        last_lsn = data["last_lsn"]
        raw_records = data["records"]
    except KeyError as exc:
        raise SerializationError(f"malformed feed frame: {exc!r}") from exc
    if not isinstance(epoch, int) or not isinstance(last_lsn, int):
        raise SerializationError("malformed feed frame: epoch/last_lsn not ints")
    if not isinstance(raw_records, list):
        raise SerializationError("malformed feed frame: records is not a list")
    records: list[tuple[int, list[dict[str, Any]]]] = []
    for item in raw_records:
        if not isinstance(item, dict):
            raise SerializationError("malformed feed record: not an object")
        body = dict(item)
        record_crc = body.pop("crc", None)
        if record_crc is None or record_crc != _canonical_crc(body):
            raise SerializationError(
                f"feed record lsn={body.get('lsn')!r} failed its CRC check"
            )
        lsn = body.get("lsn")
        ops = body.get("ops")
        if not isinstance(lsn, int) or not isinstance(ops, list):
            raise SerializationError("malformed feed record: bad lsn/ops")
        records.append((lsn, ops))
    return FeedFrame(epoch=epoch, last_lsn=last_lsn, records=records)
