"""Deterministic fault injection for the chaos tests.

A :class:`FaultInjector` plugs into a transaction's journal as the
``on_record`` callback, so it observes every mutation *after* it has been
applied and journaled — raising from that point models a crash in the
middle of a maintenance operation while keeping the undo log consistent
(rollback always restores the exact pre-transaction state).

Trigger modes, combinable:

* ``at_record=M`` — fire when the journal reaches its M-th record; with
  ``rearm=True`` the trigger is periodic (every M-th record), otherwise
  it is one-shot — a retry of the same operation then succeeds;
* ``at_phase="split"`` / ``"merge"`` — fire on the first record emitted
  by the named maintenance phase (inode creation marks split work, inode
  folding/destruction marks merge work);
* ``rate=p, seed=s`` — fire each record independently with probability
  *p* from a seeded stream; deterministic for a fixed seed.

* ``at_io=N`` — an **io** trigger kind: fire on the N-th I/O operation
  (WAL append, fsync, checkpoint rename) observed through the separate
  :meth:`FaultInjector.io` hook.  The durable layer (:mod:`repro.store`)
  threads the injector into its write paths, so the recovery tests can
  fail a write or fsync deterministically mid-commit.  The io counter is
  independent of the journal-record counter; ``rearm`` makes the trigger
  periodic here too.

* ``at_replication=N`` — a **network** trigger kind: fire on the N-th
  replication fetch observed through :meth:`FaultInjector.replication`.
  Unlike the other hooks this one does not raise — it *returns* the
  fault kind (one of :data:`REPLICATION_FAULTS`) and the caller
  (:class:`repro.replication.link.ReplicationLink`) mangles the response
  accordingly: drop the reply, truncate the payload mid-frame, flip a
  byte inside one record, deliver the previous frame again, or stall
  (advertise progress but ship no records).  ``replication_fault``
  selects the kind; pass a sequence to cycle through several across a
  rearmed run.

Every raising trigger raises :class:`repro.exceptions.InjectedFaultError`.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from repro.exceptions import InjectedFaultError

#: response manglings the replication hook can select
REPLICATION_FAULTS = ("drop", "truncate", "corrupt", "duplicate", "stall")

#: journal record kinds emitted by each named maintenance phase
PHASE_KINDS: dict[str, frozenset[str]] = {
    # split work creates inodes and moves dnodes between them
    "split": frozenset({"inode_created", "dnode_moved"}),
    # merge work folds inodes together and destroys emptied ones
    "merge": frozenset({"merge_folded", "inode_destroyed"}),
}


class FaultInjector:
    """A seeded, deterministic journal-record trigger.

    One injector may outlive many transactions (the record count keeps
    running across them), which is how a chaos run injects faults at
    arbitrary points of a long workload.  :attr:`fired` counts the faults
    raised; :attr:`seen` the records observed.
    """

    def __init__(
        self,
        at_record: Optional[int] = None,
        at_phase: Optional[str] = None,
        rate: float = 0.0,
        seed: int = 0,
        rearm: bool = False,
        at_io: Optional[int] = None,
        at_replication: Optional[int] = None,
        replication_fault: Union[str, Sequence[str]] = "drop",
    ):
        if at_record is not None and at_record < 1:
            raise ValueError("at_record must be >= 1")
        if at_phase is not None and at_phase not in PHASE_KINDS:
            raise ValueError(f"unknown phase {at_phase!r}; choose from {sorted(PHASE_KINDS)}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must lie in [0, 1]")
        if at_io is not None and at_io < 1:
            raise ValueError("at_io must be >= 1")
        if at_replication is not None and at_replication < 1:
            raise ValueError("at_replication must be >= 1")
        if isinstance(replication_fault, str):
            replication_fault = (replication_fault,)
        else:
            replication_fault = tuple(replication_fault)
        for kind in replication_fault:
            if kind not in REPLICATION_FAULTS:
                raise ValueError(
                    f"unknown replication fault {kind!r}; "
                    f"choose from {REPLICATION_FAULTS}"
                )
        self.at_record = at_record
        self.at_phase = at_phase
        self.rate = rate
        self.rearm = rearm
        self.at_io = at_io
        self.at_replication = at_replication
        self.replication_faults = replication_fault
        self.seen = 0
        self.io_seen = 0
        self.replication_seen = 0
        self.fired = 0
        self._armed = True
        self._rng = random.Random(seed)

    def __call__(self, op: str, record_number: int) -> None:
        """The journal's ``on_record`` hook; raises when a trigger matches."""
        del record_number  # position within one journal; we count globally
        self.seen += 1
        if not self._armed:
            return
        trigger = None
        if self.at_record is not None:
            if self.rearm:
                if self.seen % self.at_record == 0:
                    trigger = f"record %{self.at_record}"
            elif self.seen == self.at_record:
                trigger = f"record {self.at_record}"
        if trigger is None and self.at_phase is not None:
            if op in PHASE_KINDS[self.at_phase]:
                trigger = f"phase {self.at_phase} ({op})"
        if trigger is None and self.rate > 0.0:
            if self._rng.random() < self.rate:
                trigger = f"rate {self.rate}"
        if trigger is None:
            return
        if not self.rearm:
            self._armed = False
        self.fired += 1
        raise InjectedFaultError(trigger, self.seen)

    def io(self, op: str) -> None:
        """The durable layer's I/O hook; raises when the io trigger matches.

        Called by :mod:`repro.store` immediately **before** a WAL append,
        an fsync, or a checkpoint rename performs its system call, so a
        firing models the I/O never happening (a crash or an EIO), with
        everything previously written still on disk.
        """
        self.io_seen += 1
        if not self._armed or self.at_io is None:
            return
        if self.rearm:
            if self.io_seen % self.at_io != 0:
                return
        elif self.io_seen != self.at_io:
            return
        if not self.rearm:
            self._armed = False
        self.fired += 1
        raise InjectedFaultError(f"io {op}", self.io_seen)

    def replication(self, op: str) -> Optional[str]:
        """The replication link's network hook; returns a fault kind or ``None``.

        Called once per fetch attempt (*op* names it, e.g. ``"feed.fetch"``).
        A match returns the next kind from ``replication_fault`` (cycling
        when several were given) instead of raising — the link owns the
        response bytes, so it applies the mangling itself and the fault
        exercises the *decode-and-retry* path rather than an exception
        path the network would never take.
        """
        del op  # named for symmetry with io(); the count is global
        self.replication_seen += 1
        if not self._armed or self.at_replication is None:
            return None
        if self.rearm:
            if self.replication_seen % self.at_replication != 0:
                return None
        elif self.replication_seen != self.at_replication:
            return None
        if not self.rearm:
            self._armed = False
        kind = self.replication_faults[
            (self.fired) % len(self.replication_faults)
        ]
        self.fired += 1
        return kind

    def reset(self) -> None:
        """Re-arm a one-shot injector and restart the record and io counts."""
        self.seen = 0
        self.io_seen = 0
        self.replication_seen = 0
        self._armed = True
