"""Transactional execution of maintenance operations with failure policies.

:class:`GuardedMaintainer` wraps any maintainer (1-index split/merge or
propagate, A(k) split/merge or simple) and runs each public mutation —
``insert_edge`` / ``delete_edge`` / ``insert_node`` / ``delete_node`` /
``add_subgraph`` / ``delete_subgraph`` — inside a
:class:`~repro.resilience.journal.Transaction`, and :meth:`~GuardedMaintainer.apply_batch`
runs a whole sequence of such operations in a *single* transaction (the
serving layer's unit of commit — see :mod:`repro.service`).  Any exception raised
mid-operation (a maintainer bug, corrupted state detected by a support
counter, an injected fault) or a failed post-check rolls the graph *and*
index back to the exact pre-call state, after which the configured
policy decides what happens next:

* ``raise``   — re-raise; the caller sees a clean failure on clean state;
* ``retry``   — re-run the operation in a fresh transaction up to
  ``max_retries`` times (transient faults clear; deterministic ones fall
  through to ``raise``);
* ``degrade`` — rebuild the index from the rolled-back graph (the
  reconstruction discipline of Section 7 / Blume et al.), re-apply the
  operation incrementally, and if even that fails, apply the raw graph
  mutation and rebuild once more — the update always lands, at
  reconstruction cost instead of incremental cost.

Observability: every attempt runs in a ``txn`` span and the counters
``resilience.txns`` / ``.faults`` / ``.rollbacks`` / ``.retries`` /
``.degradations`` / ``.checks`` tally the guard's work, so a traced
guarded run (``--guard --trace``) shows exactly where resilience cost
went.  The failure paths additionally emit ``resilience.rolled_back`` /
``.degraded`` / ``.gave_up`` events — the triggers a
:class:`~repro.obs.flight.FlightRecorder` dumps its ring on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.exceptions import MaintenanceError, RollbackError
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.maintenance.base import UpdateStats
from repro.obs import current as current_obs
from repro.resilience.faults import FaultInjector
from repro.resilience.invariants import InvariantGuard
from repro.resilience.journal import TouchedSet, Transaction

POLICIES = ("raise", "retry", "degrade")


def _stats_of(result: Any) -> UpdateStats:
    """Extract the UpdateStats from a maintainer-method return value.

    ``insert_node`` / ``add_subgraph`` return ``(payload, stats)`` pairs;
    everything else returns the stats directly.
    """
    if isinstance(result, UpdateStats):
        return result
    return result[1]


@dataclass(frozen=True)
class GuardConfig:
    """How a :class:`GuardedMaintainer` reacts to failures."""

    #: what to do after a rollback: ``raise`` / ``retry`` / ``degrade``
    policy: str = "raise"
    #: invariant depth: ``basic`` / ``valid`` / ``minimal``
    check_level: str = "valid"
    #: post-check every N-th update (0 disables checks)
    check_every: int = 1
    #: instead of a fixed cadence, check a sampled fraction of updates
    sample_rate: Optional[float] = None
    #: attempts after the first failure under the ``retry`` policy
    max_retries: int = 2
    #: seed for sampled cadence
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; choose from {POLICIES}")


@dataclass
class GuardStats:
    """Tally of a guarded maintainer's lifetime (mirrors the obs counters)."""

    commits: int = 0
    faults: int = 0
    rollbacks: int = 0
    retries: int = 0
    degradations: int = 0
    raw_fallbacks: int = 0
    checks: int = 0
    check_failures: int = 0
    last_errors: list[str] = field(default_factory=list)


class GuardedMaintainer:
    """Run a maintainer's mutations transactionally with a failure policy.

    Satisfies the same protocol as the wrapped maintainer (``graph``,
    ``insert_edge``, ``delete_edge``, ``index_size``, …) so the
    experiment runner can use it as a drop-in replacement.  The wrapped
    maintainer stays fully owned by the guard: mutating through it
    directly while a guard is in use defeats the journal.

    *fault_injector* threads a :class:`FaultInjector` into every
    transaction (chaos testing); production use leaves it ``None``.
    """

    def __init__(
        self,
        maintainer: Any,
        config: Optional[GuardConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.maintainer = maintainer
        self.graph: DataGraph = maintainer.graph
        self.config = config if config is not None else GuardConfig()
        self.fault_injector = fault_injector
        self.stats = GuardStats()
        #: 1-index maintainers expose ``.index``; A(k) maintainers ``.family``
        self.index = getattr(maintainer, "index", None)
        self.family = getattr(maintainer, "family", None)
        #: optional :class:`TouchedSet` accumulator for incremental
        #: publication (set via :meth:`track_touched`); ``None`` = off
        self.touched: Optional[TouchedSet] = None
        self.invariants = InvariantGuard(
            level=self.config.check_level,
            check_every=self.config.check_every,
            sample_rate=self.config.sample_rate,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # The guarded mutation surface
    # ------------------------------------------------------------------

    def insert_edge(
        self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> UpdateStats:
        """Insert a dedge transactionally."""
        return self._call("insert_edge", (source, target, kind))

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete a dedge transactionally."""
        return self._call("delete_edge", (source, target))

    def insert_node(
        self, parent: int, label: str, value: object = None
    ) -> tuple[int, UpdateStats]:
        """Create a dnode under *parent* transactionally."""
        return self._call("insert_node", (parent, label, value))

    def delete_node(self, dnode: int) -> UpdateStats:
        """Delete a dnode and its incident dedges transactionally."""
        return self._call("delete_node", (dnode,))

    def add_subgraph(
        self,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: tuple = (),
        preserve_oids: bool = False,
    ) -> tuple[dict[int, int], UpdateStats]:
        """Add a rooted subgraph transactionally."""
        args: tuple = (subgraph, subgraph_root, tuple(cross_edges))
        if preserve_oids:
            args += (True,)
        return self._call("add_subgraph", args)

    def delete_subgraph(self, subgraph_root: int) -> UpdateStats:
        """Delete the subtree rooted at *subgraph_root* transactionally."""
        return self._call("delete_subgraph", (subgraph_root,))

    def set_value(self, dnode: int, value: object) -> UpdateStats:
        """Change a dnode's value transactionally."""
        return self._call("set_value", (dnode, value))

    def apply_batch(self, operations: Sequence[tuple[str, tuple]]) -> UpdateStats:
        """Apply a whole sequence of mutations in **one** transaction.

        *operations* is a list of ``(method, args)`` pairs naming this
        guard's public mutation methods.  The batch is atomic: a failure
        anywhere rolls back every operation already applied, then the
        configured policy takes over exactly as for a single operation —
        ``retry`` re-runs the whole batch, ``degrade`` rebuilds and
        re-applies it (falling back to raw graph mutations plus one final
        rebuild).  Invariant post-checks run once per *batch*, not once
        per operation, which is one of the reasons batching is cheaper
        than an equivalent stream of single-operation transactions.

        Returns the accumulated :class:`UpdateStats` of the batch.  An
        empty batch is a no-op (no transaction is opened).
        """
        ops = [(method, tuple(args)) for method, args in operations]
        if not ops:
            return UpdateStats(trivial=True)

        def apply_fn() -> UpdateStats:
            total = UpdateStats(trivial=True)
            for method, args in ops:
                total.absorb(_stats_of(getattr(self.maintainer, method)(*args)))
            return total

        def raw_fn() -> UpdateStats:
            for method, args in ops:
                self._raw_for(method, args)()
            return UpdateStats()

        return self._execute("batch", apply_fn, raw_fn, num_ops=len(ops))

    def index_size(self) -> int:
        """Current index size (protocol passthrough)."""
        return self.maintainer.index_size()

    # ------------------------------------------------------------------
    # Touched-set tracking (incremental snapshot publication)
    # ------------------------------------------------------------------

    def track_touched(self, touched: Optional[TouchedSet]) -> None:
        """Install (or remove, with ``None``) a touched-set accumulator.

        While installed, every transaction feeds its journal records into
        *touched*, and A(k) maintainers additionally report leaf-level
        membership changes (the family is snapshot-rolled-back, not
        journaled).  The accumulator is a conservative superset across
        rollbacks; the consumer clears it after each successful publish.
        """
        self.touched = touched
        if hasattr(self.maintainer, "touched"):
            self.maintainer.touched = touched

    # ------------------------------------------------------------------
    # Transaction engine
    # ------------------------------------------------------------------

    def _call(self, method: str, args: tuple) -> Any:
        """Run one maintainer method under the configured policy."""
        return self._execute(
            method,
            lambda: getattr(self.maintainer, method)(*args),
            self._raw_for(method, args),
        )

    def _raw_for(self, method: str, args: tuple) -> Callable[[], Any]:
        """The index-free graph mutation equivalent to a maintainer call.

        Used by the ``degrade`` policy's last resort: apply the bare
        graph change journal-free, then rebuild the index — this cannot
        fail on account of index state, so the guard always makes
        progress.
        """
        if method == "insert_edge":
            source, target, kind = args

            def raw() -> UpdateStats:
                self.graph.add_edge(source, target, kind)
                return UpdateStats()

        elif method == "delete_edge":
            source, target = args

            def raw() -> UpdateStats:
                self.graph.remove_edge(source, target)
                return UpdateStats()

        elif method == "insert_node":
            parent, label, value = args

            def raw() -> tuple[int, UpdateStats]:
                oid = self.graph.add_node(label, value)
                self.graph.add_edge(parent, oid)
                return oid, UpdateStats()

        elif method == "delete_node":
            (dnode,) = args

            def raw() -> UpdateStats:
                self.graph.remove_node(dnode)
                return UpdateStats()

        elif method == "add_subgraph":
            subgraph, _subgraph_root, cross_edges = args[:3]
            preserve_oids = args[3] if len(args) > 3 else False

            def raw() -> tuple[dict[int, int], UpdateStats]:
                from repro.maintenance.split_merge import _normalise_cross_edges

                mapping = self.graph.add_subgraph(subgraph, preserve_oids)
                for a, b, kind in _normalise_cross_edges(cross_edges):
                    self.graph.add_edge(mapping.get(a, a), mapping.get(b, b), kind)
                return mapping, UpdateStats()

        elif method == "set_value":
            dnode, value = args

            def raw() -> UpdateStats:
                self.graph.set_value(dnode, value)
                return UpdateStats()

        elif method == "delete_subgraph":
            (subgraph_root,) = args

            def raw() -> UpdateStats:
                self.graph.remove_nodes(self.graph.subgraph_from(subgraph_root).nodes())
                return UpdateStats()

        else:
            raise MaintenanceError(f"unknown guarded method {method!r}")
        return raw

    def _execute(
        self,
        label: str,
        apply_fn: Callable[[], Any],
        raw_fn: Callable[[], Any],
        num_ops: int = 1,
    ) -> Any:
        """Run *apply_fn* transactionally under the configured policy."""
        obs = current_obs()
        policy = self.config.policy
        attempts = 1 + (self.config.max_retries if policy == "retry" else 0)
        with obs.span("txn", op=label, policy=policy, ops=num_ops):
            last_error: Optional[BaseException] = None
            for attempt in range(attempts):
                try:
                    return self._attempt(apply_fn, obs)
                except RollbackError:
                    raise  # state is lost; no policy can help
                except Exception as exc:  # noqa: BLE001 - policy boundary
                    last_error = exc
                    self._note_failure(exc, obs)
                    if policy == "retry" and attempt < attempts - 1:
                        self.stats.retries += 1
                        obs.add("resilience.retries")
                        continue
                    break
            assert last_error is not None
            if policy == "degrade":
                obs.event(
                    "resilience.degraded",
                    op=label,
                    ops=num_ops,
                    error=f"{type(last_error).__name__}: {last_error}",
                )
                return self._degrade(apply_fn, raw_fn, obs)
            obs.event(
                "resilience.gave_up",
                op=label,
                ops=num_ops,
                policy=policy,
                error=f"{type(last_error).__name__}: {last_error}",
            )
            raise last_error

    def _attempt(self, apply_fn: Callable[[], Any], obs) -> Any:
        """One transactional attempt: mutate, post-check, commit."""
        txn = Transaction(
            self.graph,
            index=self.index,
            family=self.family,
            on_record=self.fault_injector,
            touched=self.touched,
        )
        txn.begin()
        obs.add("resilience.txns")
        try:
            result = apply_fn()
            if self.invariants.due():
                self.stats.checks += 1
                obs.add("resilience.checks")
                self.invariants.check(self.graph, index=self.index, family=self.family)
        except BaseException as exc:
            txn.rollback()
            self.stats.rollbacks += 1
            obs.add("resilience.rollbacks")
            obs.event(
                "resilience.rolled_back",
                error=f"{type(exc).__name__}: {exc}",
            )
            raise
        txn.commit()
        self.stats.commits += 1
        return result

    def _degrade(
        self, apply_fn: Callable[[], Any], raw_fn: Callable[[], Any], obs
    ) -> Any:
        """Rebuild from the rolled-back graph, then get the update applied.

        First preference: re-apply the operation incrementally on the
        freshly rebuilt index (it may have failed due to state the
        rebuild cleared).  Last resort: apply the raw graph mutation
        journal-free and rebuild once more — this cannot fail on account
        of index state, so the guard always makes progress.
        """
        self.stats.degradations += 1
        obs.add("resilience.degradations")
        if self.touched is not None:
            # rebuild renames every inode: nothing of the previous
            # snapshot is reusable, so force the full-capture fallback
            self.touched.mark_all()
        self.maintainer.rebuild_from_graph()
        try:
            return self._attempt(apply_fn, obs)
        except RollbackError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._note_failure(exc, obs)
            self.stats.raw_fallbacks += 1
            obs.add("resilience.raw_fallbacks")
            result = raw_fn()
            self.maintainer.rebuild_from_graph()
            return result

    def _note_failure(self, exc: BaseException, obs) -> None:
        from repro.exceptions import InjectedFaultError, InvariantViolationError

        if isinstance(exc, InjectedFaultError):
            self.stats.faults += 1
            obs.add("resilience.faults")
        if isinstance(exc, InvariantViolationError):
            self.stats.check_failures += 1
            obs.add("resilience.check_failures")
        self.stats.last_errors.append(f"{type(exc).__name__}: {exc}")
        del self.stats.last_errors[:-8]
