"""The flight recorder: a bounded ring of recent telemetry, dumped on
failure.

A JSONL trace of a long-running service is unbounded and mostly
uninteresting; what an operator needs after an incident is the *last few
thousand* records — the spans of the failing commit, the events around
the degrade, the metrics snapshot before the rollback.  The
:class:`FlightRecorder` is a :class:`~repro.obs.sinks.TraceSink` that
keeps exactly that: a fixed-capacity ring buffer of the most recent
span/event/metrics records, plus automatic **post-mortem dumps** — when
an event whose name is in its trigger set arrives (the guarded
maintainer's degrade/gave-up paths, WAL corruption, recovery), the whole
ring is written to a JSON file before the process moves on.

Dumps are rate-limited (``cooldown_seconds``) and capped
(``max_dumps``) so a failure storm cannot fill the disk, and a dump
that itself fails (read-only disk, ENOSPC) is counted, never raised —
the recorder must not take down the path it is documenting.

Everything is thread-safe: the writer thread, reader threads and the
exporter can emit and dump concurrently.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Optional

__all__ = ["FlightRecorder", "DEFAULT_TRIGGERS"]

#: event names that trigger an automatic post-mortem dump
DEFAULT_TRIGGERS = frozenset(
    {
        "resilience.rolled_back",
        "resilience.degraded",
        "resilience.gave_up",
        "store.wal_corruption",
        "store.recovery_failed",
        "store.recovered",
        "slo.breach",
        "replication.stall",
        "failover.promoted",
    }
)


class FlightRecorder:
    """Bounded ring of trace records with triggered post-mortem dumps.

    Use it like any sink — pass it to ``observed(...)`` or
    ``Observer(...)`` (tracing must be on for spans/events to reach it).
    Without a *dump_dir* it only records (dump explicitly with
    :meth:`dump`); with one, trigger events write
    ``flight-<seq>-<reason>.json`` files automatically.
    """

    def __init__(
        self,
        capacity: int = 2048,
        dump_dir: Optional[str] = None,
        triggers: frozenset = DEFAULT_TRIGGERS,
        cooldown_seconds: float = 5.0,
        max_dumps: int = 32,
        clock=time.time,
    ):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.triggers = frozenset(triggers)
        self.cooldown_seconds = cooldown_seconds
        self.max_dumps = max_dumps
        self.clock = clock
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dump_seq = 0
        self._last_dump_at: Optional[float] = None
        #: paths of every dump written, newest last
        self.dumps: list[str] = []
        #: dumps suppressed by cooldown/cap, and dump write failures
        self.suppressed = 0
        self.dump_failures = 0
        self.emitted = 0
        self.closed = False

    # -- sink protocol -------------------------------------------------

    def emit(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self.emitted += 1
        if (
            self.dump_dir is not None
            and record.get("type") == "event"
            and record.get("name") in self.triggers
        ):
            self.dump(reason=record["name"], trigger=record)

    def close(self) -> None:
        self.closed = True

    # -- inspection ----------------------------------------------------

    def records(self) -> list[dict]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def last_dump(self) -> Optional[str]:
        """Path of the most recent dump (``None`` before the first)."""
        return self.dumps[-1] if self.dumps else None

    # -- dumping -------------------------------------------------------

    def dump(self, reason: str, trigger: Optional[dict] = None) -> Optional[str]:
        """Write the ring to a post-mortem file; returns its path.

        Returns ``None`` when suppressed (cooldown, dump cap, no
        ``dump_dir`` for the automatic path) or when the write itself
        failed — a flight recorder never raises into the hot path.
        """
        now = self.clock()
        with self._lock:
            if len(self.dumps) >= self.max_dumps:
                self.suppressed += 1
                return None
            if (
                self._last_dump_at is not None
                and now - self._last_dump_at < self.cooldown_seconds
            ):
                self.suppressed += 1
                return None
            self._last_dump_at = now
            self._dump_seq += 1
            seq = self._dump_seq
            records = list(self._ring)
        directory = self.dump_dir if self.dump_dir is not None else "."
        slug = "".join(c if c.isalnum() else "-" for c in reason).strip("-") or "dump"
        path = os.path.join(directory, f"flight-{seq:04d}-{slug}.json")
        document = {
            "reason": reason,
            "trigger": trigger,
            "dumped_at": now,
            "num_records": len(records),
            "records": records,
        }
        try:
            os.makedirs(directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fp:
                json.dump(document, fp, default=str)
                fp.write("\n")
        except OSError:
            with self._lock:
                self.dump_failures += 1
            return None
        with self._lock:
            self.dumps.append(path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder capacity={self.capacity} emitted={self.emitted} "
            f"dumps={len(self.dumps)}>"
        )
