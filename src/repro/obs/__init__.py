"""``repro.obs`` — structured tracing and metrics for index maintenance.

The paper's evaluation is a story about *where time and quality go*
during incremental maintenance — split vs. merge work, reconstruction
triggers, worklist depths.  This package is the substrate that makes
those breakdowns observable without changing what the algorithms
compute:

* a **tracer** of nestable spans with monotonic timestamps and
  attributes (:mod:`repro.obs.tracer`);
* a **metrics registry** of named counters/gauges/histograms — all
  fixed-memory (:mod:`repro.obs.metrics`);
* pluggable **sinks** — in-memory, JSONL file, human-readable summary
  (:mod:`repro.obs.sinks`);
* the **live telemetry plane** — time-windowed sliding aggregation of
  the same metric stream (:mod:`repro.obs.live`), Prometheus ``/metrics``
  and JSON ``/health`` endpoints plus a periodic JSONL reporter
  (:mod:`repro.obs.export`), a bounded **flight recorder** with
  automatic post-mortem dumps (:mod:`repro.obs.flight`), and an **SLO
  watchdog** with burn-rate alerting (:mod:`repro.obs.slo`);
* the :class:`Observer` facade that bundles them and the process-wide
  *current observer* the instrumented hot paths consult.

Observability is **off by default**: :func:`current` returns a disabled
observer whose ``span()`` hands back a shared no-op context manager and
whose counter helpers return immediately, so the maintenance algorithms
pay (almost) nothing when nobody is watching.  Turn it on around a
region with::

    from repro.obs import InMemorySink, observed

    with observed(InMemorySink()) as obs:
        maintainer.insert_edge(u, v)
    print(obs.sinks[0].spans("one.split_phase"))

or for a whole benchmark run from the CLI::

    python -m repro.experiments --scale smoke --trace out.jsonl fig9

For always-on production serving there is a **metrics-only** mode
(``Observer(enabled=True, tracing=False)``): counters, histograms and
the live plane stay hot while span bookkeeping is skipped entirely —
the configuration the ≤1.3x overhead gate in
``benchmarks/bench_obs_overhead.py`` holds to.

Span/counter naming convention: ``one.*`` for 1-index maintenance,
``ak.*`` for the A(k) family, ``construct.*`` for index construction,
``run.*`` for the experiment runner's per-run registry, ``service.*``
for the serving layer, ``store.*`` for durability, ``slo.*`` for the
watchdog.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    SummarySink,
    TraceSink,
    read_jsonl,
    summarize,
)
from repro.obs.tracer import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Observer",
    "DISABLED",
    "current",
    "install",
    "observed",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "percentile",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "SummarySink",
    "NullSink",
    "read_jsonl",
    "summarize",
    "LivePlane",
    "WindowConfig",
    "FlightRecorder",
    "SloRule",
    "SloWatchdog",
    "load_rules",
    "default_service_rules",
    "default_adaptive_rules",
    "MetricsServer",
    "JsonlReporter",
    "LiveTelemetry",
    "render_prometheus",
    "health_document",
]


class Observer:
    """Tracer + metrics registry + sinks (+ optional live plane), as one
    handle.

    Instrumented code talks to an observer, never to tracer or registry
    directly, so a single ``enabled`` flag makes the whole layer a
    no-op.  The convenience mutators (:meth:`add`, :meth:`observe`,
    :meth:`set`, :meth:`set_max`) are themselves gated on ``enabled`` —
    call them unconditionally from hot paths.

    ``tracing=False`` keeps metrics live but makes every span/event a
    no-op — the always-on production configuration, where per-operation
    span allocation is the dominant observability cost.

    An attached :class:`~repro.obs.live.LivePlane` (see
    :meth:`attach_live`) receives every counter increment, gauge write
    and histogram observation in addition to the registry, feeding the
    sliding windows the exporter and SLO watchdog read.
    """

    __slots__ = ("sinks", "metrics", "tracer", "enabled", "tracing", "live")

    def __init__(
        self,
        *sinks: TraceSink,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
        tracing: bool = True,
    ):
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled
        self.tracing = tracing and enabled
        self.tracer = Tracer(self.sinks) if self.tracing else NullTracer()
        self.live = None  # type: Optional["LivePlane"]

    # -- live plane ----------------------------------------------------

    def attach_live(self, plane: Optional["LivePlane"]) -> Optional["LivePlane"]:
        """Install (or with ``None`` remove) a live telemetry plane.

        Returns the previously attached plane.  While attached, every
        metric mutation is mirrored into the plane's sliding windows.
        """
        previous = self.live
        self.live = plane
        return previous

    # -- sinks ---------------------------------------------------------

    def add_sink(self, sink: TraceSink) -> None:
        """Attach *sink* at runtime (e.g. a flight recorder).

        The tracer keeps its own sink list, so both are extended; spans
        and events only flow while ``tracing`` is on.
        """
        self.sinks.append(sink)
        if self.tracing:
            self.tracer.sinks.append(sink)

    def remove_sink(self, sink: TraceSink) -> None:
        """Detach a runtime-attached sink (missing sinks are ignored)."""
        if sink in self.sinks:
            self.sinks.remove(sink)
        if self.tracing and sink in self.tracer.sinks:
            self.tracer.sinks.remove(sink)

    # -- tracing -------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """A nestable timed section (no-op context manager if disabled)."""
        if not self.tracing:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """An instant trace record (dropped if disabled)."""
        if self.tracing:
            self.tracer.event(name, **attrs)

    def trace_context(self) -> Optional[int]:
        """This thread's innermost open span id — the handle to ship
        across a thread boundary and reparent under with
        :meth:`~repro.obs.tracer.Span.set_parent` (``None`` when no span
        is open or tracing is off)."""
        if not self.tracing:
            return None
        return self.tracer.current_span_id()

    # -- metrics -------------------------------------------------------

    def add(self, counter: str, n: int = 1) -> None:
        """Increment a named counter (no-op if disabled or n == 0)."""
        if self.enabled and n:
            self.metrics.counter(counter).value += n
            if self.live is not None:
                self.live.add(counter, n)

    def observe(self, histogram: str, value: float) -> None:
        """Record a histogram observation (no-op if disabled)."""
        if self.enabled:
            self.metrics.histogram(histogram).observe(value)
            if self.live is not None:
                self.live.observe(histogram, value)

    def set(self, gauge: str, value: float) -> None:
        """Set a gauge's current value (no-op if disabled).

        The plain-write counterpart of :meth:`set_max` — both are now
        first-class on the facade, mirroring :class:`Gauge`'s own
        ``set``/``set_max`` pair::

            >>> from repro.obs import Observer
            >>> obs = Observer()
            >>> obs.set("service.queue_depth", 3)      # last value wins …
            >>> obs.set("service.queue_depth", 1)
            >>> obs.metrics.gauge("service.queue_depth").value
            1
            >>> obs.set_max("service.queue_peak", 7)   # … high-water only rises
            >>> obs.set_max("service.queue_peak", 4)
            >>> obs.metrics.gauge("service.queue_peak").value
            7
        """
        if self.enabled:
            self.metrics.gauge(gauge).set(value)
            if self.live is not None:
                self.live.set_gauge(gauge, value)

    def set_max(self, gauge: str, value: float) -> None:
        """Raise a gauge's high-water mark (no-op if disabled)."""
        if self.enabled:
            self.metrics.gauge(gauge).set_max(value)
            if self.live is not None:
                self.live.set_max_gauge(gauge, value)

    # -- lifecycle -----------------------------------------------------

    def emit_metrics(
        self, registry: Optional[MetricsRegistry] = None, name: str = "metrics"
    ) -> None:
        """Write a metrics-snapshot record to the sinks.

        Snapshots *registry* (default: this observer's own) so per-run
        registries can be dropped into the same trace stream.
        """
        if not self.enabled:
            return
        record = {"type": "metrics", "name": name}
        record.update((registry or self.metrics).snapshot())
        self.tracer.emit(record)

    def close(self) -> None:
        """Close every sink (idempotent for the provided sinks)."""
        for sink in self.sinks:
            sink.close()


#: The default, disabled observer — what :func:`current` returns until
#: something is installed.  Shared and stateless-by-convention.
DISABLED = Observer(enabled=False)

_current: Observer = DISABLED


def current() -> Observer:
    """The process-wide observer the instrumented hot paths consult."""
    return _current


def install(observer: Optional[Observer]) -> Observer:
    """Make *observer* current (``None`` restores the disabled default).

    Returns the previously-current observer so callers can restore it.
    """
    global _current
    previous = _current
    _current = observer if observer is not None else DISABLED
    return previous


@contextmanager
def observed(
    *sinks: TraceSink,
    metrics: Optional[MetricsRegistry] = None,
    live: Optional["LivePlane"] = None,
) -> Iterator[Observer]:
    """Enable observability within a ``with`` block.

    Installs a fresh enabled :class:`Observer` over *sinks* (with *live*
    attached when given), and on exit emits a final snapshot of its
    metrics registry, closes the sinks and restores the
    previously-current observer::

        with observed(JsonlSink("out.jsonl")) as obs:
            run_mixed_updates(...)
    """
    observer = Observer(*sinks, metrics=metrics)
    if live is not None:
        observer.attach_live(live)
    previous = install(observer)
    try:
        yield observer
    finally:
        observer.emit_metrics()
        observer.close()
        install(previous)


# The live-plane modules import the facade machinery above, so they load
# last; re-exported here to make ``repro.obs`` the one-stop import.
from repro.obs.live import LivePlane, WindowConfig  # noqa: E402
from repro.obs.flight import FlightRecorder  # noqa: E402
from repro.obs.slo import (  # noqa: E402
    SloRule,
    SloWatchdog,
    default_adaptive_rules,
    default_service_rules,
    load_rules,
)
from repro.obs.export import (  # noqa: E402
    JsonlReporter,
    LiveTelemetry,
    MetricsServer,
    health_document,
    render_prometheus,
)
