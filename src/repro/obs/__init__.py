"""``repro.obs`` — structured tracing and metrics for index maintenance.

The paper's evaluation is a story about *where time and quality go*
during incremental maintenance — split vs. merge work, reconstruction
triggers, worklist depths.  This package is the substrate that makes
those breakdowns observable without changing what the algorithms
compute:

* a **tracer** of nestable spans with monotonic timestamps and
  attributes (:mod:`repro.obs.tracer`);
* a **metrics registry** of named counters/gauges/histograms
  (:mod:`repro.obs.metrics`);
* pluggable **sinks** — in-memory, JSONL file, human-readable summary
  (:mod:`repro.obs.sinks`);
* the :class:`Observer` facade that bundles the three and the
  process-wide *current observer* the instrumented hot paths consult.

Observability is **off by default**: :func:`current` returns a disabled
observer whose ``span()`` hands back a shared no-op context manager and
whose counter helpers return immediately, so the maintenance algorithms
pay (almost) nothing when nobody is watching.  Turn it on around a
region with::

    from repro.obs import InMemorySink, observed

    with observed(InMemorySink()) as obs:
        maintainer.insert_edge(u, v)
    print(obs.sinks[0].spans("one.split_phase"))

or for a whole benchmark run from the CLI::

    python -m repro.experiments --scale smoke --trace out.jsonl fig9

Span/counter naming convention: ``one.*`` for 1-index maintenance,
``ak.*`` for the A(k) family, ``construct.*`` for index construction,
``run.*`` for the experiment runner's per-run registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    SummarySink,
    TraceSink,
    read_jsonl,
    summarize,
)
from repro.obs.tracer import NULL_SPAN, NullTracer, Span, Tracer

__all__ = [
    "Observer",
    "DISABLED",
    "current",
    "install",
    "observed",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "percentile",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "TraceSink",
    "InMemorySink",
    "JsonlSink",
    "SummarySink",
    "NullSink",
    "read_jsonl",
    "summarize",
]


class Observer:
    """Tracer + metrics registry + sinks, as one handle.

    Instrumented code talks to an observer, never to tracer or registry
    directly, so a single ``enabled`` flag makes the whole layer a
    no-op.  The convenience mutators (:meth:`add`, :meth:`observe`,
    :meth:`set_max`) are themselves gated on ``enabled`` — call them
    unconditionally from hot paths.
    """

    __slots__ = ("sinks", "metrics", "tracer", "enabled")

    def __init__(
        self,
        *sinks: TraceSink,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ):
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled
        self.tracer = Tracer(self.sinks) if enabled else NullTracer()

    # -- tracing -------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """A nestable timed section (no-op context manager if disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """An instant trace record (dropped if disabled)."""
        if self.enabled:
            self.tracer.event(name, **attrs)

    # -- metrics -------------------------------------------------------

    def add(self, counter: str, n: int = 1) -> None:
        """Increment a named counter (no-op if disabled or n == 0)."""
        if self.enabled and n:
            self.metrics.counter(counter).value += n

    def observe(self, histogram: str, value: float) -> None:
        """Record a histogram observation (no-op if disabled)."""
        if self.enabled:
            self.metrics.histogram(histogram).observe(value)

    def set_max(self, gauge: str, value: float) -> None:
        """Raise a gauge's high-water mark (no-op if disabled)."""
        if self.enabled:
            self.metrics.gauge(gauge).set_max(value)

    # -- lifecycle -----------------------------------------------------

    def emit_metrics(
        self, registry: Optional[MetricsRegistry] = None, name: str = "metrics"
    ) -> None:
        """Write a metrics-snapshot record to the sinks.

        Snapshots *registry* (default: this observer's own) so per-run
        registries can be dropped into the same trace stream.
        """
        if not self.enabled:
            return
        record = {"type": "metrics", "name": name}
        record.update((registry or self.metrics).snapshot())
        self.tracer.emit(record)

    def close(self) -> None:
        """Close every sink (idempotent for the provided sinks)."""
        for sink in self.sinks:
            sink.close()


#: The default, disabled observer — what :func:`current` returns until
#: something is installed.  Shared and stateless-by-convention.
DISABLED = Observer(enabled=False)

_current: Observer = DISABLED


def current() -> Observer:
    """The process-wide observer the instrumented hot paths consult."""
    return _current


def install(observer: Optional[Observer]) -> Observer:
    """Make *observer* current (``None`` restores the disabled default).

    Returns the previously-current observer so callers can restore it.
    """
    global _current
    previous = _current
    _current = observer if observer is not None else DISABLED
    return previous


@contextmanager
def observed(
    *sinks: TraceSink, metrics: Optional[MetricsRegistry] = None
) -> Iterator[Observer]:
    """Enable observability within a ``with`` block.

    Installs a fresh enabled :class:`Observer` over *sinks*, and on exit
    emits a final snapshot of its metrics registry, closes the sinks and
    restores the previously-current observer::

        with observed(JsonlSink("out.jsonl")) as obs:
            run_mixed_updates(...)
    """
    observer = Observer(*sinks, metrics=metrics)
    previous = install(observer)
    try:
        yield observer
    finally:
        observer.emit_metrics()
        observer.close()
        install(previous)
