"""Exporting the telemetry plane: ``/metrics``, ``/health``, JSONL.

Three consumers, one substrate:

* :func:`render_prometheus` turns the cumulative
  :class:`~repro.obs.metrics.MetricsRegistry` and the windowed
  :class:`~repro.obs.live.LivePlane` into Prometheus text exposition
  (counters, gauges, histogram summaries with quantile labels, and
  ``repro_live_*`` windowed statistics);
* :class:`MetricsServer` serves that text on ``/metrics`` and a JSON
  health document on ``/health`` from a stdlib
  :class:`~http.server.ThreadingHTTPServer` — no dependencies, safe to
  run inside tests on an ephemeral port;
* :class:`JsonlReporter` appends the same health/window snapshot to a
  JSONL file on a fixed cadence, for runs with no scraper attached.

:class:`LiveTelemetry` bundles the whole plane — windows, watchdog,
flight recorder, server, reporter — behind one ``start()``/``stop()``
pair; ``IndexService.start_telemetry`` is a thin wrapper over it.

Everything here is read-side only: the exporter thread takes the
plane's per-call lock and the registry's GIL-atomic reads, never a
writer-path lock.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.flight import FlightRecorder
from repro.obs.live import LivePlane, WindowConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import CRITICAL, OK, SloRule, SloWatchdog

__all__ = [
    "render_prometheus",
    "health_document",
    "MetricsServer",
    "JsonlReporter",
    "LiveTelemetry",
]

_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def _prom_name(name: str, prefix: str = "repro") -> str:
    """``service.batch_commit_seconds`` → ``repro_service_batch_commit_seconds``."""
    cleaned = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"{prefix}_{cleaned}"


def _fmt(value: float) -> str:
    """Prometheus sample value: repr keeps full float precision."""
    return repr(float(value))


def render_prometheus(
    registry: Optional[MetricsRegistry] = None,
    plane: Optional[LivePlane] = None,
    prefix: str = "repro",
    now: Optional[float] = None,
) -> str:
    """The registry and/or plane in Prometheus text exposition format.

    Cumulative metrics keep their lifetime semantics (counters and
    histogram summaries over the whole process); plane instruments are
    emitted under ``<prefix>_live_*`` with ``window``/``stat`` labels,
    which is what dashboards alert on.  The compiled-path LRU's
    process-wide hit/miss statistics are always included as
    ``<prefix>_path_cache_*`` gauges — the read path's cheapest cache
    deserves the same visibility as the serving-layer ones.
    """
    from repro.query.automaton import path_cache_info  # late: avoid cycle

    lines: list[str] = []
    info = path_cache_info()
    for field_name, value in (
        ("hits", info.hits),
        ("misses", info.misses),
        ("size", info.currsize),
        ("maxsize", info.maxsize or 0),
    ):
        metric = _prom_name(f"path_cache_{field_name}", prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    if registry is not None:
        for name, counter in sorted(registry.counters.items()):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(registry.gauges.items()):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(gauge.value)}")
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_fmt(gauge.max_value)}")
        for name, histogram in sorted(registry.histograms.items()):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} summary")
            for quantile, stat in _QUANTILES:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f"{_fmt(histogram.percentile(quantile * 100))}"
                )
            lines.append(f"{metric}_sum {_fmt(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
    if plane is not None:
        snapshot = plane.snapshot(now)
        window = f"{snapshot['window_seconds']:g}s"
        live_prefix = f"{prefix}_live"
        for name, stats in snapshot["histograms"].items():
            metric = _prom_name(name, live_prefix)
            lines.append(f"# TYPE {metric} gauge")
            for stat in ("count", "rate", "mean", "min", "max", "p50", "p95", "p99"):
                lines.append(
                    f'{metric}{{window="{window}",stat="{stat}"}} '
                    f"{_fmt(stats[stat])}"
                )
        for name, stats in snapshot["counters"].items():
            metric = _prom_name(name, live_prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f'{metric}{{window="{window}",stat="count"}} '
                f"{stats['window_count']}"
            )
            lines.append(
                f'{metric}{{window="{window}",stat="rate"}} {_fmt(stats["rate"])}'
            )
            lines.append(
                f'{metric}{{window="{window}",stat="lifetime"}} {stats["lifetime"]}'
            )
        for name, stats in snapshot["gauges"].items():
            metric = _prom_name(name, live_prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f'{metric}{{window="{window}",stat="value"}} {_fmt(stats["value"])}'
            )
            lines.append(
                f'{metric}{{window="{window}",stat="window_max"}} '
                f"{_fmt(stats['window_max'])}"
            )
    return "\n".join(lines) + "\n"


def health_document(
    service: Optional[object] = None,
    plane: Optional[LivePlane] = None,
    watchdog: Optional[SloWatchdog] = None,
    recorder: Optional[FlightRecorder] = None,
    now: Optional[float] = None,
) -> dict:
    """The JSON ``/health`` body.

    ``status`` is the operator-facing verdict: ``ok`` when every SLO
    holds, ``degraded`` when a fast window breaches (watchdog ``warn``),
    ``critical`` when a breach is sustained across the slow window.
    """
    doc: dict = {"status": OK}
    if service is not None and hasattr(service, "health"):
        doc["service"] = service.health()
    if watchdog is not None:
        fragment = watchdog.health(now)
        doc["slo"] = fragment["slo"]
        doc["rules"] = fragment["rules"]
        if fragment["slo"] == CRITICAL:
            doc["status"] = "critical"
        elif fragment["slo"] != OK:
            doc["status"] = "degraded"
    if plane is not None:
        snapshot = plane.snapshot(now)
        doc["uptime_seconds"] = snapshot["uptime_seconds"]
        doc["window_seconds"] = snapshot["window_seconds"]
    if recorder is not None:
        doc["flight"] = {
            "recorded": recorder.emitted,
            "dumps": list(recorder.dumps),
            "last_dump": recorder.last_dump,
            "suppressed": recorder.suppressed,
        }
    return doc


class MetricsServer:
    """A background HTTP endpoint over the telemetry plane.

    Routes:

    * ``GET /metrics`` — Prometheus text (registry + plane);
    * ``GET /health`` — the JSON health document; HTTP 200 while
      ``status`` is ``ok``, 503 once an SLO rule degrades the service;
    * ``GET /flight`` — the flight recorder's current ring as JSON.

    ``port=0`` (the default) binds an ephemeral port; read
    :attr:`port`/:attr:`url` after :meth:`start`.  The server thread and
    every handler thread are daemons — they can never hold a process
    open.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        plane: Optional[LivePlane] = None,
        service: Optional[object] = None,
        watchdog: Optional[SloWatchdog] = None,
        recorder: Optional[FlightRecorder] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.plane = plane
        self.service = service
        self.watchdog = watchdog
        self.recorder = recorder
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    if self.path.split("?", 1)[0] == "/metrics":
                        body = render_prometheus(
                            server.registry, server.plane
                        ).encode("utf-8")
                        self._reply(200, "text/plain; version=0.0.4", body)
                    elif self.path.split("?", 1)[0] == "/health":
                        doc = health_document(
                            service=server.service,
                            plane=server.plane,
                            watchdog=server.watchdog,
                            recorder=server.recorder,
                        )
                        code = 200 if doc["status"] == OK else 503
                        self._reply(
                            code,
                            "application/json",
                            json.dumps(doc, default=str).encode("utf-8"),
                        )
                    elif self.path.split("?", 1)[0] == "/flight":
                        records = (
                            server.recorder.records()
                            if server.recorder is not None
                            else []
                        )
                        self._reply(
                            200,
                            "application/json",
                            json.dumps(
                                {"records": records}, default=str
                            ).encode("utf-8"),
                        )
                    else:
                        self._reply(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # pragma: no cover - client went away
                    pass

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # keep scrapes out of stderr

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None


class JsonlReporter:
    """Appends a telemetry snapshot to a JSONL file every *interval*.

    Each line is ``{"t": <wall clock>, "live": <plane snapshot>,
    "slo": <watchdog fragment>}`` — the no-scraper deployment story, and
    what long soak runs archive.  :meth:`tick` is public so tests (and
    the final flush in :meth:`stop`) can force a line synchronously.
    """

    def __init__(
        self,
        path: str,
        plane: LivePlane,
        watchdog: Optional[SloWatchdog] = None,
        interval_seconds: float = 5.0,
    ):
        if interval_seconds <= 0:
            raise ValueError("reporter interval must be > 0")
        self.path = path
        self.plane = plane
        self.watchdog = watchdog
        self.interval_seconds = interval_seconds
        self.lines_written = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._fp = None
        self._lock = threading.Lock()

    def tick(self) -> None:
        """Write one snapshot line now."""
        record = {"t": time.time(), "live": self.plane.snapshot()}
        if self.watchdog is not None:
            record["slo"] = self.watchdog.health()
        with self._lock:
            if self._fp is None:
                self._fp = open(self.path, "a", encoding="utf-8")
            json.dump(record, self._fp, default=str)
            self._fp.write("\n")
            self._fp.flush()
            self.lines_written += 1

    def start(self) -> "JsonlReporter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-jsonl-reporter", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.tick()

    def stop(self) -> None:
        """Stop the thread and write one final line."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self.tick()
        with self._lock:
            if self._fp is not None:
                self._fp.close()
                self._fp = None


class LiveTelemetry:
    """The whole live plane as one start/stop bundle.

    Wires together, around an :class:`~repro.obs.Observer`:

    * a :class:`LivePlane` attached to the observer (windowed metrics);
    * a :class:`FlightRecorder` added as a sink (when *dump_dir* given);
    * an :class:`SloWatchdog` over *rules*;
    * a :class:`MetricsServer` (when *serve* — the default);
    * a :class:`JsonlReporter` (when *jsonl_path* given).

    ``IndexService.start_telemetry`` constructs one of these against the
    process-wide current observer; standalone use::

        from repro.obs import Observer, install
        from repro.obs.export import LiveTelemetry

        obs = install(Observer())
        telemetry = LiveTelemetry(service=svc, rules=default_service_rules())
        telemetry.start()
        ... # curl http://127.0.0.1:<telemetry.port>/health
        telemetry.stop()
    """

    def __init__(
        self,
        service: Optional[object] = None,
        observer: Optional[object] = None,
        plane: Optional[LivePlane] = None,
        window: Optional[WindowConfig] = None,
        rules: Optional[list[SloRule]] = None,
        dump_dir: Optional[str] = None,
        serve: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        jsonl_path: Optional[str] = None,
        report_interval_seconds: float = 5.0,
    ):
        self.service = service
        self._observer = observer
        self.plane = plane if plane is not None else LivePlane(config=window)
        self.watchdog = SloWatchdog(self.plane, rules or [])
        self.recorder = (
            FlightRecorder(dump_dir=dump_dir) if dump_dir is not None else None
        )
        self.server: Optional[MetricsServer] = None
        if serve:
            self.server = MetricsServer(
                plane=self.plane,
                service=service,
                watchdog=self.watchdog,
                recorder=self.recorder,
                host=host,
                port=port,
            )
        self.reporter: Optional[JsonlReporter] = None
        if jsonl_path is not None:
            self.reporter = JsonlReporter(
                jsonl_path,
                self.plane,
                watchdog=self.watchdog,
                interval_seconds=report_interval_seconds,
            )
        self._previous_plane = None
        self._started = False

    @property
    def observer(self):
        if self._observer is not None:
            return self._observer
        from repro.obs import current as current_obs  # late: avoid cycle

        return current_obs()

    @property
    def port(self) -> Optional[int]:
        return self.server.port if self.server is not None else None

    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    def start(self) -> "LiveTelemetry":
        if self._started:
            return self
        observer = self.observer
        self._previous_plane = observer.attach_live(self.plane)
        if self.recorder is not None:
            observer.add_sink(self.recorder)
        if self.server is not None:
            self.server.registry = observer.metrics
            self.server.start()
        if self.reporter is not None:
            self.reporter.start()
        self._started = True
        return self

    def health(self) -> dict:
        """The health document this bundle's ``/health`` would serve."""
        return health_document(
            service=self.service,
            plane=self.plane,
            watchdog=self.watchdog,
            recorder=self.recorder,
        )

    def stop(self) -> None:
        if not self._started:
            return
        if self.server is not None:
            self.server.stop()
        if self.reporter is not None:
            self.reporter.stop()
        observer = self.observer
        if observer.live is self.plane:
            observer.attach_live(self._previous_plane)
        if self.recorder is not None:
            observer.remove_sink(self.recorder)
        self._started = False
