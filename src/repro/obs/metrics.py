"""Named counters, gauges and histograms — the metrics half of ``repro.obs``.

The registry is the single place maintenance code reports *what happened*
(splits, merges, probes, moves) and *how big things got* (peak inodes,
worklist depth).  Everything is plain Python, single-threaded like the
rest of the library, and deliberately boring: a metric is a named slot
with an ``inc``/``set``/``observe`` method, and :meth:`MetricsRegistry.snapshot`
turns the whole registry into a JSON-able dict for the trace sinks.

Histograms keep their raw observations (runs are at most a few thousand
updates long), so exact percentiles are available — :func:`percentile`
is the nearest-rank definition shared with ``repro.metrics.timing``.
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of *values* (``p`` in [0, 100]).

    Returns 0.0 for an empty sequence, the minimum for ``p=0`` and the
    maximum for ``p=100``; values need not be sorted.
    """
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if p == 0.0:
        return ordered[0]
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1) to the counter."""
        self.value += n

    add = inc  # alias: ``add(n)`` reads better for bulk increments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value metric with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value (and track the maximum seen)."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is a new high-water mark."""
        if value > self.value:
            self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value}, max={self.max_value})"


class Histogram:
    """A distribution of observations with exact tail percentiles."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the observations."""
        return percentile(self.values, p)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    def summary(self) -> dict:
        """JSON-able digest of the distribution."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Create-on-demand store of named counters, gauges and histograms.

    Asking for a metric twice returns the same object, so hot paths can
    hoist ``registry.counter("run.splits")`` out of their loops and pay
    one attribute access per increment.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> dict:
        """The whole registry as a JSON-able dict (sorted names)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max_value}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (names included)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
