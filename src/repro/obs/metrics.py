"""Named counters, gauges and histograms — the metrics half of ``repro.obs``.

The registry is the single place maintenance code reports *what happened*
(splits, merges, probes, moves) and *how big things got* (peak inodes,
worklist depth).  Everything is plain Python, single-threaded like the
rest of the library, and deliberately boring: a metric is a named slot
with an ``inc``/``set``/``observe`` method, and :meth:`MetricsRegistry.snapshot`
turns the whole registry into a JSON-able dict for the trace sinks.

Histograms are **fixed-memory**: under the closed-loop serving driver a
process observes commit and query latencies forever, so retaining every
raw sample would make observability itself an unbounded leak on the hot
path.  A :class:`Histogram` therefore keeps

* exact ``count`` / ``total`` / ``min`` / ``max``;
* **log-spaced bucket counts** (:data:`BUCKETS_PER_OCTAVE` buckets per
  power of two, index clamped to ±:data:`BUCKET_INDEX_LIMIT`) — an
  HDR-style digest with O(1) observe and a bounded relative quantile
  error of ``2**(1/BUCKETS_PER_OCTAVE) - 1`` (~9%);
* a **bounded reservoir** of raw samples (uniform Algorithm-R once the
  cap is hit) so small runs still get *exact* percentiles and
  ``.values`` keeps working for report code.

While ``count <= reservoir capacity`` the reservoir holds every sample
and percentiles are exact — byte-for-byte what the unbounded histogram
returned — so :meth:`Histogram.summary`/``p50``/``p95`` are backward
compatible; beyond the cap, quantiles come from the bucket digest.
:func:`percentile` is the nearest-rank definition shared with
``repro.metrics.timing``.
"""

from __future__ import annotations

import math
import random
import sys
import zlib
from typing import Optional, Sequence

#: log-bucket resolution: buckets per power of two.  8 gives a worst-case
#: relative quantile error of 2**(1/8) - 1 ≈ 9%, and keeps real latency
#: ranges (ns..minutes ≈ 40 octaves) at ~320 live bucket entries.
BUCKETS_PER_OCTAVE = 8

#: hard clamp on the bucket index: values outside [2**-64, 2**64] share
#: the edge buckets, so a histogram can never hold more than
#: ``2 * 64 * BUCKETS_PER_OCTAVE + 1`` bucket entries.
BUCKET_INDEX_LIMIT = 64 * BUCKETS_PER_OCTAVE

#: raw samples retained for exact small-n percentiles (and ``.values``)
DEFAULT_RESERVOIR = 1024


def bucket_index(value: float) -> int:
    """The log-bucket index of a positive *value* (clamped to the limit)."""
    index = math.floor(math.log2(value) * BUCKETS_PER_OCTAVE)
    if index > BUCKET_INDEX_LIMIT:
        return BUCKET_INDEX_LIMIT
    if index < -BUCKET_INDEX_LIMIT:
        return -BUCKET_INDEX_LIMIT
    return index


def bucket_bounds(index: int) -> tuple[float, float]:
    """The ``[low, high)`` value range of bucket *index*."""
    return (
        2.0 ** (index / BUCKETS_PER_OCTAVE),
        2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE),
    )


def bucket_representative(index: int) -> float:
    """The value reported for observations that landed in bucket *index*
    (the geometric midpoint of its bounds)."""
    return 2.0 ** ((index + 0.5) / BUCKETS_PER_OCTAVE)


def quantile_from_buckets(
    buckets: dict[int, int],
    nonpositive: int,
    count: int,
    min_value: float,
    max_value: float,
    p: float,
) -> float:
    """Nearest-rank quantile of a log-bucket digest (shared by the
    cumulative :class:`Histogram` and the sliding windows).

    *buckets* maps bucket index → count of positive observations,
    *nonpositive* counts observations ``<= 0`` (which sort below every
    bucket), *count* is their sum, and *min_value*/*max_value* are the
    exactly-tracked extremes used to clamp the bucket representative.
    """
    if count == 0:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if p == 0.0:
        return min_value
    rank = math.ceil(p / 100.0 * count)
    if rank <= nonpositive:
        return min(min_value, 0.0)
    cumulative = nonpositive
    for index in sorted(buckets):
        cumulative += buckets[index]
        if cumulative >= rank:
            return min(max(bucket_representative(index), min_value), max_value)
    return max_value  # pragma: no cover - rank <= count always lands


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of *values* (``p`` in [0, 100]).

    Returns 0.0 for an empty sequence, the minimum for ``p=0`` and the
    maximum for ``p=100``; values need not be sorted.
    """
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if p == 0.0:
        return ordered[0]
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1) to the counter."""
        self.value += n

    add = inc  # alias: ``add(n)`` reads better for bulk increments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value metric with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value (and track the maximum seen)."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is a new high-water mark."""
        if value > self.value:
            self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value}, max={self.max_value})"


class Histogram:
    """A fixed-memory distribution with exact-then-bounded percentiles.

    See the module docstring for the memory model.  ``values`` is the
    bounded reservoir — the full sample list while ``count`` is within
    the reservoir capacity, a uniform sample of the stream beyond it.
    """

    __slots__ = (
        "name",
        "values",
        "_capacity",
        "_count",
        "_total",
        "_min",
        "_max",
        "_nonpositive",
        "_buckets",
        "_rng",
    )

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR):
        if reservoir < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.name = name
        self.values: list[float] = []
        self._capacity = reservoir
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: observations <= 0 (timer-resolution zeros, empty-batch sizes)
        self._nonpositive = 0
        self._buckets: dict[int, int] = {}
        # deterministic per-name stream so runs stay reproducible
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one observation — O(1) time, bounded memory."""
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value > 0.0:
            index = bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            self._nonpositive += 1
        if len(self.values) < self._capacity:
            self.values.append(value)
        else:
            # Algorithm R: keep a uniform sample of the whole stream
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def exact(self) -> bool:
        """Whether the reservoir still holds every observation."""
        return self._count <= self._capacity

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile: exact while the reservoir holds the
        whole stream, log-bucket estimate (±~9% relative) beyond it."""
        if self._count == 0:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.exact:
            return percentile(self.values, p)
        return quantile_from_buckets(
            self._buckets, self._nonpositive, self._count, self.min, self.max, p
        )

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def bucket_counts(self) -> dict[int, int]:
        """The log-bucket digest (index → count), non-positives excluded."""
        return dict(self._buckets)

    def approx_bytes(self) -> int:
        """Approximate heap footprint of this histogram's sample storage.

        Counts the reservoir list (plus its floats) and the bucket dict
        (plus its ints) — the only containers that grow with
        observations, and both hard-capped.  The memory-regression tests
        assert this stays flat from the first capacity-full observation
        to the millionth.
        """
        size = sys.getsizeof(self.values)
        size += sum(sys.getsizeof(v) for v in self.values)
        size += sys.getsizeof(self._buckets)
        size += sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in self._buckets.items()
        )
        return size

    def summary(self) -> dict:
        """JSON-able digest of the distribution (stable legacy keys)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Create-on-demand store of named counters, gauges and histograms.

    Asking for a metric twice returns the same object, so hot paths can
    hoist ``registry.counter("run.splits")`` out of their loops and pay
    one attribute access per increment.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> dict:
        """The whole registry as a JSON-able dict (sorted names)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max_value}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (names included)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
