"""Structured tracing — the span half of ``repro.obs``.

A :class:`Tracer` produces **spans** (named, nestable timed sections with
attributes) and **events** (instant records).  Timestamps come from
``time.perf_counter`` — monotonic, so durations are meaningful even
across clock adjustments; absolute times in a trace are therefore
relative to process start, not wall-clock.

Records are dicts pushed to sinks (:mod:`repro.obs.sinks`) the moment a
span closes, so a trace file is complete even if the process dies
mid-run; a span's children appear *before* it in the stream (they close
first) and are stitched back together via ``parent`` ids.

Like the rest of the library the tracer is single-threaded: nesting is a
plain stack, which the ``with`` protocol keeps well-formed for free.
When tracing is off the shared :data:`NULL_SPAN` makes every
instrumentation point a no-op context manager with no allocation.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional


class Span:
    """One timed section; created by :meth:`Tracer.span`, used as a
    context manager.  Attributes can be added mid-flight with
    :meth:`set` (e.g. results known only at the end of the section)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "t0", "t1")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int = -1
        self.parent_id: Optional[int] = None
        self.depth: int = 0
        self.t0: float = 0.0
        self.t1: float = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = repr(exc)
        self._tracer._close(self)

    def to_record(self) -> dict:
        """The JSON-able trace record for this (closed) span."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "t0": self.t0,
            "t1": self.t1,
            "dur_ms": (self.t1 - self.t0) * 1000.0,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span: ``span() is NULL_SPAN`` when tracing is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Emits span and event records to a list of sinks."""

    enabled = True

    def __init__(
        self,
        sinks: Iterable = (),
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sinks = list(sinks)
        self.clock = clock
        self._stack: list[Span] = []
        self._next_id = 0

    # -- producing -----------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; enter it with ``with`` to start the clock."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instant record at the current nesting position."""
        top = self._stack[-1] if self._stack else None
        self.emit(
            {
                "type": "event",
                "name": name,
                "t": self.clock(),
                "parent": top.span_id if top is not None else None,
                "depth": len(self._stack),
                "attrs": attrs,
            }
        )

    def emit(self, record: dict) -> None:
        """Push a raw record to every sink."""
        for sink in self.sinks:
            sink.emit(record)

    # -- span lifecycle (called by Span) -------------------------------

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        top = self._stack[-1] if self._stack else None
        span.parent_id = top.span_id if top is not None else None
        span.depth = len(self._stack)
        self._stack.append(span)
        span.t0 = self.clock()

    def _close(self, span: Span) -> None:
        span.t1 = self.clock()
        # ``with`` discipline guarantees LIFO; tolerate a foreign top
        # (manually mis-nested spans) by searching downward.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.emit(span.to_record())


class NullTracer:
    """Drop-in for :class:`Tracer` with every operation a no-op."""

    enabled = False
    sinks: list = []

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        return None

    def emit(self, record: dict) -> None:
        return None
