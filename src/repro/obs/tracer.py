"""Structured tracing — the span half of ``repro.obs``.

A :class:`Tracer` produces **spans** (named, nestable timed sections with
attributes) and **events** (instant records).  Timestamps come from
``time.perf_counter`` — monotonic, so durations are meaningful even
across clock adjustments; absolute times in a trace are therefore
relative to process start, not wall-clock.

Records are dicts pushed to sinks (:mod:`repro.obs.sinks`) the moment a
span closes, so a trace file is complete even if the process dies
mid-run; a span's children appear *before* it in the stream (they close
first) and are stitched back together via ``parent`` ids.

**Threads.**  Span nesting is a *per-thread* stack (``threading.local``),
so the serving layer's background writer cannot interleave its spans
into a reader thread's ancestry.  Crossing a thread boundary is
explicit: the enqueuing side captures :meth:`Tracer.current_span_id`,
ships it with the work item, and the executing side stitches its span
under that parent with :meth:`Span.set_parent` — that is how a
``service.commit`` on the writer thread stays a descendant of the span
that submitted the update.  Span ids are allocated under a lock; sinks
must tolerate concurrent ``emit`` calls (the bundled sinks do: list
appends and single ``write`` calls are atomic under the GIL).

When tracing is off the shared :data:`NULL_SPAN` makes every
instrumentation point a no-op context manager with no allocation.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional

#: sentinel: "no explicit parent set — inherit from the thread's stack"
_INHERIT = object()


class Span:
    """One timed section; created by :meth:`Tracer.span`, used as a
    context manager.  Attributes can be added mid-flight with
    :meth:`set` (e.g. results known only at the end of the section)."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "t0",
        "t1",
        "_explicit_parent",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int = -1
        self.parent_id: Optional[int] = None
        self.depth: int = 0
        self.t0: float = 0.0
        self.t1: float = 0.0
        self._explicit_parent: object = _INHERIT

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def set_parent(self, parent_id: Optional[int]) -> "Span":
        """Parent this span under *parent_id* instead of the thread stack.

        The cross-thread stitch: capture the submitting side's
        :meth:`Tracer.current_span_id` and apply it on the executing
        thread **before** entering the span.  ``None`` forces a root
        span.  Chainable.
        """
        self._explicit_parent = parent_id
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = repr(exc)
        self._tracer._close(self)

    def to_record(self) -> dict:
        """The JSON-able trace record for this (closed) span."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "t0": self.t0,
            "t1": self.t1,
            "dur_ms": (self.t1 - self.t0) * 1000.0,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def set_parent(self, parent_id: Optional[int]) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span: ``span() is NULL_SPAN`` when tracing is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Emits span and event records to a list of sinks."""

    enabled = True

    def __init__(
        self,
        sinks: Iterable = (),
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sinks = list(sinks)
        self.clock = clock
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_id = 0

    def _stack(self) -> list[Span]:
        """This thread's span stack (created on first use per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- producing -----------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; enter it with ``with`` to start the clock."""
        return Span(self, name, attrs)

    def current_span_id(self) -> Optional[int]:
        """Id of this thread's innermost open span (``None`` at top level).

        This is the **trace context** to capture when handing work to
        another thread; see :meth:`Span.set_parent`.
        """
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instant record at the current nesting position."""
        stack = self._stack()
        top = stack[-1] if stack else None
        self.emit(
            {
                "type": "event",
                "name": name,
                "t": self.clock(),
                "parent": top.span_id if top is not None else None,
                "depth": len(stack),
                "attrs": attrs,
            }
        )

    def emit(self, record: dict) -> None:
        """Push a raw record to every sink."""
        for sink in self.sinks:
            sink.emit(record)

    # -- span lifecycle (called by Span) -------------------------------

    def _open(self, span: Span) -> None:
        with self._id_lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        if span._explicit_parent is _INHERIT:
            top = stack[-1] if stack else None
            span.parent_id = top.span_id if top is not None else None
        else:
            span.parent_id = span._explicit_parent  # cross-thread stitch
        span.depth = len(stack)
        stack.append(span)
        span.t0 = self.clock()

    def _close(self, span: Span) -> None:
        span.t1 = self.clock()
        # ``with`` discipline guarantees LIFO; tolerate a foreign top
        # (manually mis-nested spans) by searching downward.
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        self.emit(span.to_record())


class NullTracer:
    """Drop-in for :class:`Tracer` with every operation a no-op."""

    enabled = False
    sinks: list = []

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def current_span_id(self) -> Optional[int]:
        return None

    def event(self, name: str, **attrs: object) -> None:
        return None

    def emit(self, record: dict) -> None:
        return None
