"""Trace sinks: where span/event/metrics records go.

Three implementations cover the library's needs:

* :class:`InMemorySink` — a list, for tests and programmatic inspection;
* :class:`JsonlSink` — one JSON object per line, the offline-analysis
  format the experiment CLI writes with ``--trace out.jsonl``;
* :class:`SummarySink` — aggregates spans by name and renders a
  human-readable table on :meth:`close` (also available standalone as
  :func:`summarize`).

A sink is anything with ``emit(record: dict)`` and ``close()``; records
are plain dicts (see :meth:`repro.obs.tracer.Span.to_record`).
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Optional, Protocol, runtime_checkable

from repro.obs.metrics import percentile


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive trace records."""

    def emit(self, record: dict) -> None: ...

    def close(self) -> None: ...


class InMemorySink:
    """Collects records in a list (the test/inspection sink)."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    # -- inspection helpers -------------------------------------------

    def spans(self, name: Optional[str] = None) -> list[dict]:
        """All span records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list[dict]:
        """All event records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def metrics_records(self, name: Optional[str] = None) -> list[dict]:
        """All metrics-snapshot records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["type"] == "metrics" and (name is None or r.get("name") == name)
        ]


class JsonlSink:
    """Writes one JSON object per record to a file (JSON Lines).

    Accepts a path or an open text stream; owns (and closes) the file
    only when given a path.  Non-JSON-able attribute values are
    stringified rather than crashing the traced run.

    Emits are serialized by a lock: spans finish on whatever thread ran
    them, and ``TextIOWrapper.write`` is not atomic — concurrent writes
    through its pending-bytes buffer can interleave mid-line or flush
    garbage into the file.  One record, one lock hold, one line.
    """

    def __init__(self, target: "str | IO[str]"):
        if isinstance(target, (str, bytes)):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._lock = threading.Lock()
        self.emitted = 0
        self.closed = False

    def emit(self, record: dict) -> None:
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            self._fh.write(line)
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL trace file back into records (blank lines skipped)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize(records: Iterable[dict]) -> str:
    """Human-readable digest of a record stream.

    Spans are grouped by name with count/total/mean/p95/max duration;
    the last metrics snapshot's counters and gauges are appended.
    """
    durations: dict[str, list[float]] = {}
    event_counts: dict[str, int] = {}
    last_metrics: Optional[dict] = None
    for record in records:
        kind = record.get("type")
        if kind == "span":
            durations.setdefault(record["name"], []).append(record["dur_ms"])
        elif kind == "event":
            event_counts[record["name"]] = event_counts.get(record["name"], 0) + 1
        elif kind == "metrics":
            last_metrics = record

    lines = ["== trace summary =="]
    if durations:
        name_w = max(len(n) for n in durations)
        lines.append(
            f"{'span'.ljust(name_w)}  {'count':>7}  {'total ms':>10}  "
            f"{'mean ms':>9}  {'p95 ms':>9}  {'max ms':>9}"
        )
        for name in sorted(durations):
            ds = durations[name]
            lines.append(
                f"{name.ljust(name_w)}  {len(ds):>7}  {sum(ds):>10.2f}  "
                f"{sum(ds) / len(ds):>9.3f}  {percentile(ds, 95):>9.3f}  "
                f"{max(ds):>9.3f}"
            )
    else:
        lines.append("(no spans)")
    if event_counts:
        lines.append("events: " + ", ".join(
            f"{name}={count}" for name, count in sorted(event_counts.items())
        ))
    if last_metrics is not None:
        counters = last_metrics.get("counters", {})
        if counters:
            lines.append("counters: " + ", ".join(
                f"{name}={value}" for name, value in sorted(counters.items())
            ))
        gauges = last_metrics.get("gauges", {})
        if gauges:
            lines.append("gauges: " + ", ".join(
                f"{name}={g['value']:g} (max {g['max']:g})"
                for name, g in sorted(gauges.items())
            ))
    return "\n".join(lines)


class SummarySink:
    """Aggregates records and prints :func:`summarize` output on close."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self.records: list[dict] = []
        self._stream = stream
        self.closed = False

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def render(self) -> str:
        return summarize(self.records)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._stream is not None:
            print(self.render(), file=self._stream)


class NullSink:
    """Swallows everything (for overhead benchmarking)."""

    def emit(self, record: dict) -> None:
        return None

    def close(self) -> None:
        return None
