"""The live telemetry plane: fixed-memory, time-windowed aggregation.

The registry half of ``repro.obs`` answers "what happened over the whole
run" — cumulative counters and histograms, snapshotted at exit.  A
*serving* process never exits, and the questions change: what is commit
p95 **right now**, what is the shed rate **over the last minute**, is
fsync tail latency burning through its budget?  This module answers
those with sliding-window instruments layered over the same metric
stream:

* every instrument divides time into fixed **frames** (sub-windows) and
  keeps one small aggregate per frame — log-bucket digests for
  histograms (the same :data:`~repro.obs.metrics.BUCKETS_PER_OCTAVE`
  bucketing as the cumulative histograms), plain sums for counters,
  last-value + per-frame max for gauges;
* frames older than the **retention horizon** are pruned on the next
  write or read, so memory is bounded by ``retained frames × bucket
  cap`` regardless of traffic;
* aggregation merges the frames inside any window up to the horizon —
  the SLO watchdog reads the same instrument over a fast *and* a slow
  window (burn-rate alerting) without extra state.

Feeding the plane is the :class:`~repro.obs.Observer` facade's job:
``attach_live(plane)`` mirrors every ``add``/``observe``/``set``/
``set_max`` into the windows, so the instrumented hot paths need no
changes.  All operations take one lock per call — the exporter thread,
the SLO watchdog, reader threads and the writer thread all touch the
plane concurrently.

Timebase: the plane's clock is injectable (default ``time.monotonic``)
and every read method takes an optional ``now`` so tests drive windows
deterministically.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.metrics import bucket_index, quantile_from_buckets

__all__ = [
    "WindowConfig",
    "WindowStats",
    "SlidingHistogram",
    "SlidingCounter",
    "SlidingGauge",
    "LivePlane",
]


@dataclass(frozen=True)
class WindowConfig:
    """Shape of the sliding windows: width, granularity, retention.

    The default — a 60 s window in 5 s frames, retained for 5 windows —
    gives the SLO watchdog a 60 s fast window and up to a 300 s slow
    window from one set of frames.
    """

    #: the primary aggregation window (seconds)
    width_seconds: float = 60.0
    #: sub-windows per window; rotation granularity = width / frames
    frames: int = 12
    #: how many window-widths of frames to retain (the slow-burn horizon)
    retention_factor: int = 5

    def __post_init__(self) -> None:
        if self.width_seconds <= 0:
            raise ValueError("window width_seconds must be > 0")
        if self.frames < 1:
            raise ValueError("window frames must be >= 1")
        if self.retention_factor < 1:
            raise ValueError("window retention_factor must be >= 1")

    @property
    def frame_seconds(self) -> float:
        """Duration of one frame."""
        return self.width_seconds / self.frames

    @property
    def retention_seconds(self) -> float:
        """Oldest lookback any aggregation can ask for."""
        return self.width_seconds * self.retention_factor

    @property
    def retained_frames(self) -> int:
        """Hard cap on live frames per instrument."""
        return self.frames * self.retention_factor + 1


@dataclass
class WindowStats:
    """Aggregate of one instrument over one window (JSON-able)."""

    window_seconds: float
    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def rate(self) -> float:
        """Observations (or counter increments) per second."""
        return self.count / self.window_seconds if self.window_seconds else 0.0

    def stat(self, name: str) -> float:
        """Look up a statistic by name (the SLO rule vocabulary)."""
        if name == "mean":
            return self.mean
        if name == "rate":
            return self.rate
        try:
            return getattr(self, name)
        except AttributeError:
            raise ValueError(f"unknown window statistic {name!r}") from None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "rate": self.rate,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _HistogramFrame:
    """One frame of a sliding histogram: a tiny log-bucket digest."""

    __slots__ = ("count", "total", "min", "max", "nonpositive", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.nonpositive = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            index = bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.nonpositive += 1


class _FrameRing:
    """Frame bookkeeping shared by the sliding instruments.

    Frames are keyed by ``int(now / frame_seconds)`` and pruned lazily —
    on every write and aggregation — against the retention horizon, so
    an idle instrument costs nothing and a busy one never exceeds
    :attr:`WindowConfig.retained_frames` entries.
    """

    __slots__ = ("config", "frames")

    def __init__(self, config: WindowConfig):
        self.config = config
        self.frames: dict[int, object] = {}

    def frame_no(self, now: float) -> int:
        return int(now / self.config.frame_seconds)

    def prune(self, now: float) -> None:
        horizon = self.frame_no(now) - self.config.retained_frames
        if len(self.frames) > self.config.retained_frames or (
            self.frames and min(self.frames) <= horizon
        ):
            for key in [k for k in self.frames if k <= horizon]:
                del self.frames[key]

    def live_frames(self, seconds: float, now: float) -> list:
        """Frames covering the last *seconds* (clamped to retention)."""
        seconds = min(seconds, self.config.retention_seconds)
        newest = self.frame_no(now)
        # the current frame is partial; windows span whole frames back
        # from it so a window of W seconds sees >= W seconds of data
        span = max(1, int(round(seconds / self.config.frame_seconds)))
        oldest = newest - span
        return [frame for no, frame in self.frames.items() if oldest <= no <= newest]


class SlidingHistogram:
    """A histogram whose aggregates slide with time."""

    __slots__ = ("name", "_ring")

    def __init__(self, name: str, config: WindowConfig):
        self.name = name
        self._ring = _FrameRing(config)

    def observe(self, value: float, now: float) -> None:
        ring = self._ring
        ring.prune(now)
        no = ring.frame_no(now)
        frame = ring.frames.get(no)
        if frame is None:
            frame = ring.frames[no] = _HistogramFrame()
        frame.observe(value)

    def window(self, now: float, seconds: Optional[float] = None) -> WindowStats:
        """Merged statistics over the last *seconds* (default: one window)."""
        ring = self._ring
        seconds = seconds if seconds is not None else ring.config.width_seconds
        ring.prune(now)
        stats = WindowStats(window_seconds=min(seconds, ring.config.retention_seconds))
        merged: dict[int, int] = {}
        nonpositive = 0
        low: Optional[float] = None
        high: Optional[float] = None
        for frame in ring.live_frames(seconds, now):
            stats.count += frame.count
            stats.total += frame.total
            if frame.min is not None and (low is None or frame.min < low):
                low = frame.min
            if frame.max is not None and (high is None or frame.max > high):
                high = frame.max
            nonpositive += frame.nonpositive
            for index, count in frame.buckets.items():
                merged[index] = merged.get(index, 0) + count
        if stats.count:
            stats.min = low if low is not None else 0.0
            stats.max = high if high is not None else 0.0
            stats.p50 = quantile_from_buckets(
                merged, nonpositive, stats.count, stats.min, stats.max, 50
            )
            stats.p95 = quantile_from_buckets(
                merged, nonpositive, stats.count, stats.min, stats.max, 95
            )
            stats.p99 = quantile_from_buckets(
                merged, nonpositive, stats.count, stats.min, stats.max, 99
            )
        return stats

    def approx_bytes(self) -> int:
        """Approximate heap footprint of the retained frames."""
        size = sys.getsizeof(self._ring.frames)
        for frame in self._ring.frames.values():
            size += sys.getsizeof(frame.buckets)
            size += sum(
                sys.getsizeof(k) + sys.getsizeof(v) for k, v in frame.buckets.items()
            )
        return size


class SlidingCounter:
    """A counter whose per-window sum and rate slide with time."""

    __slots__ = ("name", "_ring", "lifetime")

    def __init__(self, name: str, config: WindowConfig):
        self.name = name
        self._ring = _FrameRing(config)
        self.lifetime = 0

    def add(self, n: int, now: float) -> None:
        ring = self._ring
        ring.prune(now)
        no = ring.frame_no(now)
        ring.frames[no] = ring.frames.get(no, 0) + n
        self.lifetime += n

    def window(self, now: float, seconds: Optional[float] = None) -> WindowStats:
        ring = self._ring
        seconds = seconds if seconds is not None else ring.config.width_seconds
        ring.prune(now)
        stats = WindowStats(window_seconds=min(seconds, ring.config.retention_seconds))
        stats.count = sum(ring.live_frames(seconds, now))
        stats.total = float(stats.count)
        return stats


class SlidingGauge:
    """Last value plus a sliding per-window maximum."""

    __slots__ = ("name", "_ring", "value")

    def __init__(self, name: str, config: WindowConfig):
        self.name = name
        self._ring = _FrameRing(config)
        self.value: float = 0.0

    def set(self, value: float, now: float) -> None:
        self.value = value
        ring = self._ring
        ring.prune(now)
        no = ring.frame_no(now)
        current = ring.frames.get(no)
        if current is None or value > current:
            ring.frames[no] = value

    def set_max(self, value: float, now: float) -> None:
        if value > self.value:
            self.value = value
        self.set(max(self.value, value), now)

    def window_max(self, now: float, seconds: Optional[float] = None) -> float:
        ring = self._ring
        seconds = seconds if seconds is not None else ring.config.width_seconds
        ring.prune(now)
        live = ring.live_frames(seconds, now)
        return max(live) if live else self.value


class LivePlane:
    """Create-on-demand sliding-window instruments, one lock, one clock.

    The windowed mirror of :class:`~repro.obs.metrics.MetricsRegistry`:
    attach it to an observer (``obs.attach_live(plane)``) and every
    metric the instrumented code reports grows a sliding window here.
    The exporter (:mod:`repro.obs.export`) and the SLO watchdog
    (:mod:`repro.obs.slo`) read it; nothing in the hot path ever reads
    it back.
    """

    def __init__(
        self,
        config: Optional[WindowConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config if config is not None else WindowConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._histograms: dict[str, SlidingHistogram] = {}
        self._counters: dict[str, SlidingCounter] = {}
        self._gauges: dict[str, SlidingGauge] = {}
        self.started_at = clock()

    # -- write side (called via the Observer facade) -------------------

    def observe(self, name: str, value: float) -> None:
        now = self.clock()
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = SlidingHistogram(
                    name, self.config
                )
            instrument.observe(value, now)

    def add(self, name: str, n: int = 1) -> None:
        now = self.clock()
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = SlidingCounter(name, self.config)
            instrument.add(n, now)

    def set_gauge(self, name: str, value: float) -> None:
        now = self.clock()
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = SlidingGauge(name, self.config)
            instrument.set(value, now)

    def set_max_gauge(self, name: str, value: float) -> None:
        now = self.clock()
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = SlidingGauge(name, self.config)
            instrument.set_max(value, now)

    # -- read side (exporter, watchdog, tests) -------------------------

    def window(
        self, name: str, seconds: Optional[float] = None, now: Optional[float] = None
    ) -> Optional[WindowStats]:
        """Windowed stats of histogram-or-counter *name* (``None`` if the
        metric has never been reported)."""
        now = now if now is not None else self.clock()
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is not None:
                return histogram.window(now, seconds)
            counter = self._counters.get(name)
            if counter is not None:
                return counter.window(now, seconds)
        return None

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge is not None else None

    def stat(
        self,
        name: str,
        statistic: str,
        seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """One statistic of one metric over one window — the SLO hook.

        ``statistic`` is a :class:`WindowStats` field (``p50``/``p95``/
        ``p99``/``max``/``mean``/``rate``/``count``/…) for histograms and
        counters, or ``value``/``max`` for gauges.  Returns ``None``
        when the metric has never been reported.
        """
        now = now if now is not None else self.clock()
        with self._lock:
            gauge = self._gauges.get(name)
        if gauge is not None:
            if statistic == "value":
                return gauge.value
            if statistic == "max":
                with self._lock:
                    return gauge.window_max(now, seconds)
            raise ValueError(
                f"gauge {name!r} supports statistics 'value' and 'max', "
                f"not {statistic!r}"
            )
        stats = self.window(name, seconds, now)
        return stats.stat(statistic) if stats is not None else None

    def snapshot(self, now: Optional[float] = None) -> dict:
        """Every instrument's primary-window stats as a JSON-able dict."""
        now = now if now is not None else self.clock()
        with self._lock:
            histograms = {
                name: h.window(now).to_dict() for name, h in sorted(self._histograms.items())
            }
            counters = {
                name: {
                    "window_count": c.window(now).count,
                    "rate": c.window(now).rate,
                    "lifetime": c.lifetime,
                }
                for name, c in sorted(self._counters.items())
            }
            gauges = {
                name: {"value": g.value, "window_max": g.window_max(now)}
                for name, g in sorted(self._gauges.items())
            }
        return {
            "window_seconds": self.config.width_seconds,
            "uptime_seconds": now - self.started_at,
            "histograms": histograms,
            "counters": counters,
            "gauges": gauges,
        }

    def approx_bytes(self) -> int:
        """Approximate heap footprint of every instrument's frames."""
        with self._lock:
            size = sum(h.approx_bytes() for h in self._histograms.values())
            size += sum(
                sys.getsizeof(c._ring.frames) for c in self._counters.values()
            )
            size += sum(
                sys.getsizeof(g._ring.frames) for g in self._gauges.values()
            )
        return size
