"""The SLO watchdog: declarative objectives with burn-rate alerting.

An operator declares objectives over the live plane's sliding windows —
"commit p95 under 50 ms", "queue shed rate under 1/s", "staleness
(queries served per published version) p95 under 200" — and the
watchdog evaluates each one over **two** windows of the same metric:

* a **fast** window (the rule's ``window_seconds``, default the plane's
  width) that reacts within a minute, and
* a **slow** window (``slow_factor`` × fast, clamped to the plane's
  retention) that establishes the breach is sustained, not a blip.

This is classic multi-window burn-rate alerting: a breach in *both*
windows means the error budget is burning fast **and** has been for a
while → ``critical``; a breach in the fast window only → ``warn``
(watch, don't page); neither → ``ok``.  Because
:class:`~repro.obs.live.LivePlane` frames serve any window up to
retention, the two reads share one set of state.

Status *transitions* (and only transitions) are surfaced as
``slo.breach`` / ``slo.recovered`` events through the current observer —
so they land in trace sinks and trip the flight recorder — and through
an optional ``on_alert`` callback, the hook the cost-based
reconstruction trigger of the roadmap can attach to ("staleness SLO
critical → schedule rebuild").  The health endpoint
(:mod:`repro.obs.export`) maps the worst rule status to the service
status it reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.obs.live import LivePlane

__all__ = [
    "OK",
    "WARN",
    "CRITICAL",
    "SloRule",
    "SloStatus",
    "SloWatchdog",
    "load_rules",
    "default_service_rules",
    "default_replication_rules",
    "default_adaptive_rules",
]

OK = "ok"
WARN = "warn"
CRITICAL = "critical"

_SEVERITY = {OK: 0, WARN: 1, CRITICAL: 2}

#: comparison the *measured value* must satisfy to breach the objective
_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class SloRule:
    """One declarative objective over one windowed statistic.

    The rule *breaches* when ``stat(metric) over the window  <op>
    threshold`` holds — i.e. ``op`` describes the **bad** condition:
    ``SloRule("commit-p95", "service.batch_commit_seconds", "p95",
    op=">", threshold=0.05)`` breaches when commit p95 exceeds 50 ms.
    """

    name: str
    metric: str
    stat: str = "p95"
    op: str = ">"
    threshold: float = 0.0
    #: fast-window width; ``None`` uses the plane's primary window
    window_seconds: Optional[float] = None
    #: slow window = ``slow_factor`` × fast (clamped to plane retention)
    slow_factor: float = 5.0
    #: free-form context echoed into alerts and health documents
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.slow_factor < 1.0:
            raise ValueError(f"rule {self.name!r}: slow_factor must be >= 1")
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ValueError(f"rule {self.name!r}: window_seconds must be > 0")

    def breached(self, value: Optional[float]) -> bool:
        """Whether *value* violates the objective (no data = no breach)."""
        if value is None:
            return False
        return _OPS[self.op](value, self.threshold)

    @classmethod
    def from_dict(cls, doc: dict) -> "SloRule":
        """Build a rule from one JSON object (see :func:`load_rules`)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"SLO rule {doc.get('name', '?')!r}: unknown keys {sorted(unknown)}"
            )
        missing = {"name", "metric", "threshold"} - set(doc)
        if missing:
            raise ValueError(
                f"SLO rule {doc.get('name', '?')!r}: missing keys {sorted(missing)}"
            )
        return cls(**doc)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "window_seconds": self.window_seconds,
            "slow_factor": self.slow_factor,
            "description": self.description,
        }


@dataclass
class SloStatus:
    """One rule's evaluation result (JSON-able via :meth:`to_dict`)."""

    rule: SloRule
    status: str = OK
    fast_value: Optional[float] = None
    slow_value: Optional[float] = None
    fast_window: float = 0.0
    slow_window: float = 0.0

    @property
    def burn_rate(self) -> Optional[float]:
        """How hard the fast window burns the objective: measured value
        over threshold (inverted for lower-is-bad rules), ``None``
        without data.  > 1.0 means the budget is being spent faster than
        allowed."""
        if self.fast_value is None or self.threshold_is_zero():
            return None
        if self.rule.op in (">", ">="):
            return self.fast_value / self.rule.threshold
        return self.rule.threshold / self.fast_value if self.fast_value else None

    def threshold_is_zero(self) -> bool:
        return self.rule.threshold == 0

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "stat": self.rule.stat,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "status": self.status,
            "fast_value": self.fast_value,
            "slow_value": self.slow_value,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "burn_rate": self.burn_rate,
            "description": self.rule.description,
        }


class SloWatchdog:
    """Evaluates a rule set against a :class:`LivePlane`.

    Stateless between ticks except for the per-rule last status (used to
    emit transition events exactly once per edge).  Call
    :meth:`evaluate` from the exporter thread, a reporter tick or a
    test; it never blocks the write side beyond the plane's per-call
    lock.
    """

    def __init__(
        self,
        plane: LivePlane,
        rules: Iterable[SloRule] = (),
        on_alert: Optional[Callable[[SloStatus], None]] = None,
    ):
        self.plane = plane
        self.rules: list[SloRule] = list(rules)
        self.on_alert = on_alert
        self._last_status: dict[str, str] = {}
        #: lifetime transition tally (breaches entered, recoveries seen)
        self.breaches = 0
        self.recoveries = 0

    def add_rule(self, rule: SloRule) -> None:
        self.rules.append(rule)

    def evaluate(self, now: Optional[float] = None) -> list[SloStatus]:
        """One watchdog tick: every rule over its fast and slow windows."""
        from repro.obs import current as current_obs  # late: avoid cycle

        obs = current_obs()
        statuses = []
        for rule in self.rules:
            fast_window = (
                rule.window_seconds
                if rule.window_seconds is not None
                else self.plane.config.width_seconds
            )
            slow_window = min(
                fast_window * rule.slow_factor, self.plane.config.retention_seconds
            )
            fast = self.plane.stat(rule.metric, rule.stat, fast_window, now)
            slow = self.plane.stat(rule.metric, rule.stat, slow_window, now)
            fast_bad = rule.breached(fast)
            slow_bad = rule.breached(slow)
            if fast_bad and slow_bad:
                status = CRITICAL
            elif fast_bad:
                status = WARN
            else:
                status = OK
            result = SloStatus(
                rule=rule,
                status=status,
                fast_value=fast,
                slow_value=slow,
                fast_window=fast_window,
                slow_window=slow_window,
            )
            statuses.append(result)
            previous = self._last_status.get(rule.name, OK)
            if status != previous:
                self._last_status[rule.name] = status
                if _SEVERITY[status] > _SEVERITY[previous]:
                    self.breaches += 1
                    obs.add("slo.breaches")
                    obs.event(
                        "slo.breach",
                        rule=rule.name,
                        metric=rule.metric,
                        stat=rule.stat,
                        status=status,
                        fast_value=fast,
                        slow_value=slow,
                        threshold=rule.threshold,
                    )
                else:
                    self.recoveries += 1
                    obs.add("slo.recoveries")
                    obs.event(
                        "slo.recovered",
                        rule=rule.name,
                        metric=rule.metric,
                        status=status,
                    )
                if self.on_alert is not None:
                    self.on_alert(result)
        return statuses

    @staticmethod
    def overall(statuses: Sequence[SloStatus]) -> str:
        """The worst status in *statuses* (``ok`` for an empty set)."""
        worst = OK
        for status in statuses:
            if _SEVERITY[status.status] > _SEVERITY[worst]:
                worst = status.status
        return worst

    def health(self, now: Optional[float] = None) -> dict:
        """Evaluate and fold into a health fragment for the exporter."""
        statuses = self.evaluate(now)
        return {
            "slo": SloWatchdog.overall(statuses),
            "rules": [status.to_dict() for status in statuses],
        }


def load_rules(path: str) -> list[SloRule]:
    """Read a rule set from a JSON file.

    The document is either a list of rule objects or ``{"rules": [...]}``;
    each object carries the :class:`SloRule` fields (``name``, ``metric``
    and ``threshold`` required)::

        [{"name": "commit-p95", "metric": "service.batch_commit_seconds",
          "stat": "p95", "op": ">", "threshold": 0.05}]
    """
    with open(path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    if isinstance(doc, dict):
        if "rules" not in doc:
            raise ValueError(f"SLO rule file {path!r}: missing 'rules' key")
        doc = doc["rules"]
    if not isinstance(doc, list):
        raise ValueError(f"SLO rule file {path!r}: expected a list of rules")
    return [SloRule.from_dict(item) for item in doc]


def default_service_rules(
    commit_p95_seconds: float = 0.5,
    staleness_queries_per_version: float = 10_000.0,
    shed_per_second: float = 1.0,
    fsync_p99_seconds: float = 0.5,
) -> list[SloRule]:
    """The stock objectives for a serving process — the four signals the
    paper's serving story cares about: commit latency, staleness, load
    shedding, and durability tail."""
    return [
        SloRule(
            name="commit-latency",
            metric="service.batch_commit_seconds",
            stat="p95",
            op=">",
            threshold=commit_p95_seconds,
            description="batch commit p95 within budget",
        ),
        SloRule(
            name="staleness",
            metric="service.queries_per_version",
            stat="p95",
            op=">",
            threshold=staleness_queries_per_version,
            description="queries served per published version (freshness)",
        ),
        SloRule(
            name="shed-rate",
            metric="service.shed",
            stat="rate",
            op=">",
            threshold=shed_per_second,
            description="updates shed per second under backpressure",
        ),
        SloRule(
            name="fsync-tail",
            metric="store.fsync_seconds",
            stat="p99",
            op=">",
            threshold=fsync_p99_seconds,
            description="WAL fsync tail latency",
        ),
    ]


def default_replication_rules(
    max_lag_lsns: float = 256.0,
    apply_p95_seconds: float = 0.5,
) -> list[SloRule]:
    """The stock objectives for a replica: staleness (how far behind the
    primary's log the follower has applied) and apply latency (how long
    one shipped batch takes to reach the local snapshot)."""
    return [
        SloRule(
            name="replica-lag",
            metric="replication.lag_lsns",
            stat="max",
            op=">",
            threshold=max_lag_lsns,
            description="LSNs the follower trails the primary's log end",
        ),
        SloRule(
            name="apply-latency",
            metric="replication.apply_seconds",
            stat="p95",
            op=">",
            threshold=apply_p95_seconds,
            description="shipped-batch apply latency on the follower",
        ),
    ]


def default_adaptive_rules(
    query_p95_seconds: float = 0.25,
    min_cache_hit_rate: float = 0.05,
) -> list[SloRule]:
    """The stock objectives for the adaptive serving plane.

    Routed-query latency is the signal the cost-based reconstruction
    controller treats as pressure (its ``on_alert`` hook); the cache
    hit-rate floor catches an invalidation bug or a workload shift the
    ladder has not been retuned for (a healthy steady mix revalidates
    most entries across commits, so a sustained near-zero rate is a
    plane problem, not a traffic problem).
    """
    return [
        SloRule(
            name="adaptive-query-latency",
            metric="adaptive.query_seconds",
            stat="p95",
            op=">",
            threshold=query_p95_seconds,
            description="routed query p95 within budget",
        ),
        SloRule(
            name="adaptive-cache-hit-rate",
            metric="adaptive.cache_hit_rate",
            stat="value",
            op="<",
            threshold=min_cache_hit_rate,
            description="result-cache lifetime hit rate floor",
        ),
    ]
