"""Split/merge maintenance of the A(k)-index family (Section 6, Figure 7).

The paper maintains all of A(0), ..., A(k) together because the split and
merge decisions for the A(i)-index are made *relative to the
A(i-1)-index*.  Concretely, a dnode's A(i) class is fully determined by
its **level signature**

    sig_i(w) = ( class_{i-1}(w), { class_{i-1}(p) : p parent of w } )

(Definition 4 read constructively), so after an edge update the family is
repaired level by level, ``i = 1 .. k``:

1. the *affected* dnodes at level i are the update target ``v``, every
   dnode whose class changed at level i-1, and the children of those
   dnodes — nobody else's signature can have changed;
2. each affected dnode's new signature is computed and looked up among
   the candidate classes (the refinement-tree children of its level-(i-1)
   class): match → the dnode *merges* into that class; no match → a fresh
   class is *split* off for the signature group.

Classes left empty disappear; classes that kept unaffected members keep
their identity (their signature is unchanged — those members' inputs did
not change), which keeps the update local.  Because the minimal family is
the unique **minimum** family (Lemma 6), this refresh computes exactly
the same result as Figure 7's compound-block pseudocode — Theorem 2's
guarantee, ``family.is_minimum()``, is asserted directly by the property
tests after every update.

Cost: proportional to the affected neighbourhood (out-neighbours of
changed dnodes, k times), never to the graph size — the locality the
paper designs for.  The per-level work is reported through
:class:`UpdateStats` (``moves``, ``splits`` = classes created, ``merges``
= classes removed, ``levels_touched``).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.exceptions import MaintenanceError
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.index.akindex import AkIndexFamily
from repro.maintenance.base import UpdateStats
from repro.obs import current as current_obs

LevelSig = tuple[int, frozenset[int]]


class AkSplitMergeMaintainer:
    """Maintains an :class:`AkIndexFamily` at the minimum (Theorem 2)."""

    def __init__(self, family: AkIndexFamily):
        self.family = family
        self.graph: DataGraph = family.graph
        self._label_tokens: dict[str, int] = {}
        level0 = family.levels[0]
        for token, extent in level0.extents.items():
            self._label_tokens[self.graph.label(next(iter(extent)))] = token
        #: optional :class:`repro.resilience.TouchedSet` for incremental
        #: snapshot publication.  The family is rolled back by snapshot,
        #: not journaled, so leaf-level (= level k) membership changes
        #: are reported here directly: ``leaf_moves`` entries for every
        #: placement/move/removal, ``leaf_tokens`` for emptied classes.
        self.touched = None

    # ------------------------------------------------------------------
    # Edge insertion / deletion
    # ------------------------------------------------------------------

    def insert_edge(
        self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> UpdateStats:
        """Insert the dedge ``source -> target`` and repair all levels."""
        self.graph.add_edge(source, target, kind)
        return self._propagate({target})

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete the dedge ``source -> target`` and repair all levels."""
        self.graph.remove_edge(source, target)
        return self._propagate({target})

    def index_size(self) -> int:
        """Number of inodes of the A(k)-index (the leaf level)."""
        return self.family.num_inodes(self.family.k)

    def rebuild_from_graph(self) -> None:
        """Rebuild the whole family from the data graph (``degrade`` path).

        Replaces every level with a fresh minimum construction and
        refreshes the label-token cache — level-0 tokens are not preserved
        across a rebuild.
        """
        if self.touched is not None:
            self.touched.mark_all()
        fresh = AkIndexFamily.build(self.graph, self.family.k)
        self.family.levels = fresh.levels
        self._label_tokens = {}
        for token, extent in self.family.levels[0].extents.items():
            self._label_tokens[self.graph.label(next(iter(extent)))] = token

    # ------------------------------------------------------------------
    # Node insertion / deletion (composed from the edge machinery)
    # ------------------------------------------------------------------

    def insert_node(
        self, parent: int, label: str, value: object = None
    ) -> tuple[int, UpdateStats]:
        """Create a new dnode under *parent*; returns (oid, stats)."""
        graph = self.graph
        oid = graph.add_node(label, value)
        graph.add_edge(parent, oid)
        level0 = self.family.levels[0]
        token = self._level0_token(label)
        level0.class_of[oid] = token
        level0.extents[token].add(oid)
        if self.touched is not None and self.family.k == 0:
            self.touched.leaf_moves.append((oid, None, token))
        stats = self._propagate(set(), initial_changed={oid})
        return oid, stats

    def delete_node(self, dnode: int) -> UpdateStats:
        """Delete a dnode and its incident dedges; repair all levels."""
        graph = self.graph
        family = self.family
        entry_points: set[int] = set()
        for c in list(graph.iter_succ(dnode)):
            graph.remove_edge(dnode, c)
            if c != dnode:
                entry_points.add(c)
        for p in list(graph.iter_pred(dnode)):
            graph.remove_edge(p, dnode)
        stats = UpdateStats()
        for level_no in range(family.k + 1):
            level = family.levels[level_no]
            token = level.class_of.pop(dnode)
            extent = level.extents[token]
            extent.discard(dnode)
            if level_no == family.k and self.touched is not None:
                self.touched.leaf_moves.append((dnode, token, None))
            if not extent:
                self._remove_empty_class(level_no, token, stats)
        graph.remove_node(dnode)
        # classes emptied here are removed outside _propagate's tally
        current_obs().add("ak.merges", stats.merges)
        stats.absorb(self._propagate(entry_points))
        return stats

    def set_value(self, dnode: int, value: object) -> UpdateStats:
        """Change a dnode's value (values never affect A(k) equivalence)."""
        self.graph.set_value(dnode, value)
        return UpdateStats()

    # ------------------------------------------------------------------
    # Subgraph addition / deletion
    # ------------------------------------------------------------------

    def add_subgraph(
        self,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: Iterable[tuple[int, int]] = (),
        preserve_oids: bool = False,
    ) -> tuple[dict[int, int], UpdateStats]:
        """Add a rooted subgraph and its cross edges in one batch.

        All graph surgery happens first; the new dnodes then enter level 0
        by label and ripple up through the same level refresh as edge
        updates, with every new dnode marked changed — one pass over the
        family instead of one per cross edge (the batching Section 6
        inherits from Section 5.2).  Returns the oid translation map and
        the aggregated stats.  ``preserve_oids=True`` keeps the
        subgraph's oids in the host graph (identity mapping).
        """
        if subgraph.num_nodes == 0:
            raise MaintenanceError("cannot add an empty subgraph")
        from repro.maintenance.split_merge import _require_disjoint_oids

        cross_edges = list(cross_edges)
        _require_disjoint_oids(self.graph, subgraph, cross_edges, preserve_oids)
        del subgraph_root  # the batched A(k) path needs no special root handling
        graph = self.graph
        mapping = graph.add_subgraph(subgraph, preserve_oids)
        new_nodes = set(mapping.values())
        entry_points: set[int] = set()
        from repro.maintenance.split_merge import _normalise_cross_edges

        for a, b, kind in _normalise_cross_edges(cross_edges):
            source = mapping.get(a, a)
            target = mapping.get(b, b)
            graph.add_edge(source, target, kind)
            if target not in new_nodes:
                entry_points.add(target)

        level0 = self.family.levels[0]
        track_leaf0 = self.touched is not None and self.family.k == 0
        for w in sorted(new_nodes):
            token = self._level0_token(graph.label(w))
            level0.class_of[w] = token
            level0.extents[token].add(w)
            if track_leaf0:
                self.touched.leaf_moves.append((w, None, token))
        stats = self._propagate(entry_points, initial_changed=new_nodes)
        return mapping, stats

    def delete_subgraph(self, subgraph_root: int) -> UpdateStats:
        """Delete the subtree (via TREE edges) rooted at *subgraph_root*."""
        graph = self.graph
        family = self.family
        doomed = set(graph.subgraph_from(subgraph_root).nodes())

        entry_points: set[int] = set()
        for w in doomed:
            for c in list(graph.iter_succ(w)):
                graph.remove_edge(w, c)
                if c not in doomed:
                    entry_points.add(c)
            for p in list(graph.iter_pred(w)):
                if p not in doomed:
                    graph.remove_edge(p, w)

        stats = UpdateStats()
        for level_no in range(family.k + 1):
            level = family.levels[level_no]
            track_leaf = level_no == family.k and self.touched is not None
            emptied: set[int] = set()
            for w in doomed:
                token = level.class_of.pop(w)
                extent = level.extents[token]
                extent.discard(w)
                if track_leaf:
                    self.touched.leaf_moves.append((w, token, None))
                if not extent:
                    emptied.add(token)
            for token in emptied:
                self._remove_empty_class(level_no, token, stats)
        for w in doomed:
            graph.remove_node(w)
        # classes emptied here are removed outside _propagate's tally
        current_obs().add("ak.merges", stats.merges)
        stats.absorb(self._propagate(entry_points))
        return stats

    # ------------------------------------------------------------------
    # The level loop
    # ------------------------------------------------------------------

    def _propagate(
        self, entry_points: set[int], initial_changed: Optional[set[int]] = None
    ) -> UpdateStats:
        """Refresh levels 1..k.

        *entry_points* are dnodes whose physical parent set changed (their
        signature can change at *every* level even when nothing changed at
        the level below); *initial_changed* seeds the changed set (new
        dnodes from a subgraph addition, already placed at level 0).
        """
        obs = current_obs()
        stats = UpdateStats()
        graph = self.graph
        changed: set[int] = set(initial_changed or ())
        any_change = bool(changed)
        with obs.span("ak.propagate", entry_points=len(entry_points)) as span:
            for level_no in range(1, self.family.k + 1):
                affected = set(entry_points) | changed
                for w in changed:
                    affected.update(graph.iter_succ(w))
                if not affected:
                    break
                with obs.span(
                    "ak.level_refresh", level=level_no, affected=len(affected)
                ) as level_span:
                    changed = self._refresh_level(level_no, affected, stats)
                    level_span.set(changed=len(changed))
                if changed:
                    any_change = True
                    stats.levels_touched = level_no
            stats.trivial = not any_change and stats.moves == 0
            stats.peak_inodes = max(stats.peak_inodes, self.index_size())
            span.set(
                levels_touched=stats.levels_touched,
                moves=stats.moves,
                splits=stats.splits,
                merges=stats.merges,
                trivial=stats.trivial,
            )
        if obs.enabled:
            obs.add("ak.moves", stats.moves)
            obs.add("ak.splits", stats.splits)
            obs.add("ak.merges", stats.merges)
            if stats.trivial:
                obs.add("ak.trivial")
            obs.observe("ak.levels_touched", stats.levels_touched)
            obs.set_max("ak.peak_inodes", stats.peak_inodes)
        return stats

    def _refresh_level(
        self, level_no: int, affected: set[int], stats: UpdateStats
    ) -> set[int]:
        """Re-place every affected dnode at one level; return who moved."""
        graph = self.graph
        family = self.family
        level = family.levels[level_no]
        coarser = family.levels[level_no - 1]

        # New signatures, in deterministic order.
        ordered = sorted(affected)
        sigs: dict[int, LevelSig] = {}
        for w in ordered:
            sigs[w] = (
                coarser.class_of[w],
                frozenset(coarser.class_of[p] for p in graph.iter_pred(w)),
            )

        # Old classes of the affected dnodes (None = brand-new dnode).
        by_old: dict[Optional[int], list[int]] = {}
        for w in ordered:
            by_old.setdefault(level.class_of.get(w), []).append(w)

        # Candidate classes that keep their identity: any class under an
        # involved coarser class with at least one unaffected member — its
        # signature is unchanged and is read off a representative.
        sig_table: dict[LevelSig, int] = {}
        for coarse_token in sorted({sig[0] for sig in sigs.values()}):
            for token in sorted(coarser.children.get(coarse_token, ())):
                representative = None
                for member in level.extents[token]:
                    if member not in affected:
                        representative = member
                        break
                if representative is None:
                    continue  # fully affected; may reclaim its id below
                rep_sig = (
                    coarse_token,
                    frozenset(
                        coarser.class_of[p] for p in graph.iter_pred(representative)
                    ),
                )
                sig_table[rep_sig] = token

        # A fully-affected class keeps its id for its largest signature
        # group (id stability keeps the changed set, and hence the work at
        # the next level, small).
        for old_token in sorted(t for t in by_old if t is not None):
            members = by_old[old_token]
            if len(members) != len(level.extents[old_token]):
                continue
            counts: dict[LevelSig, int] = {}
            for w in members:
                counts[sigs[w]] = counts.get(sigs[w], 0) + 1
            best_sig: Optional[LevelSig] = None
            best_count = 0
            for w in members:  # members are sorted; first max wins
                if counts[sigs[w]] > best_count:
                    best_sig = sigs[w]
                    best_count = counts[sigs[w]]
            if best_sig is None or best_sig in sig_table:
                continue
            sig_table[best_sig] = old_token
            new_parent = best_sig[0]
            old_parent = level.parent[old_token]
            if new_parent != old_parent:
                kids = coarser.children.get(old_parent)
                if kids is not None:
                    kids.discard(old_token)
                level.parent[old_token] = new_parent
                coarser.children.setdefault(new_parent, set()).add(old_token)

        # Assign every affected dnode to the class of its signature.
        track = self.touched if level_no == family.k else None
        changed: set[int] = set()
        for w in ordered:
            sig = sigs[w]
            target = sig_table.get(sig)
            if target is None:
                target = level.fresh_token()
                sig_table[sig] = target
                level.extents[target] = set()
                level.parent[target] = sig[0]
                coarser.children.setdefault(sig[0], set()).add(target)
                if level_no < family.k:
                    level.children[target] = set()
                stats.splits += 1
            old = level.class_of.get(w)
            if old == target:
                continue
            if old is not None:
                level.extents[old].discard(w)
            level.class_of[w] = target
            level.extents[target].add(w)
            if track is not None:
                track.leaf_moves.append((w, old, target))
            changed.add(w)
            stats.moves += 1

        # Drop classes the refresh emptied.
        for old_token in by_old:
            if old_token is None:
                continue
            extent = level.extents.get(old_token)
            if extent is not None and not extent:
                self._remove_empty_class(level_no, old_token, stats)
        return changed

    def _remove_empty_class(self, level_no: int, token: int, stats: UpdateStats) -> None:
        family = self.family
        level = family.levels[level_no]
        if level_no == family.k and self.touched is not None:
            self.touched.leaf_tokens.add(token)
        del level.extents[token]
        if level_no > 0:
            parent = level.parent.pop(token)
            kids = family.levels[level_no - 1].children.get(parent)
            if kids is not None:
                kids.discard(token)
        if level_no < family.k:
            level.children.pop(token, None)
        stats.merges += 1

    def _level0_token(self, label: str) -> int:
        token = self._label_tokens.get(label)
        level0 = self.family.levels[0]
        if token is not None and token in level0.extents:
            return token
        token = level0.fresh_token()
        level0.extents[token] = set()
        if self.family.k > 0:
            level0.children[token] = set()
        self._label_tokens[label] = token
        return token
