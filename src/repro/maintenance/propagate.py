"""The *propagate* baseline of Kaushik et al. [8] for the 1-index.

This is the only previously-known update algorithm for the 1-index the
paper compares against (Section 7.1).  It is exactly the **split phase**
of the split/merge algorithm — it restores correctness with Paige–Tarjan
propagation but never merges, so the index can only grow: Section 2
reports 3–5 % excess inodes after just 500 insertions, and Figure 9/10
show quality degrading roughly linearly until a periodic reconstruction
(:mod:`repro.maintenance.reconstruction`) resets it.

Sharing the split-phase engine with :class:`SplitMergeMaintainer` makes
the comparison honest: the *only* difference between the two maintainers
is the merge phase, so the measured deltas in quality and running time
isolate the paper's contribution.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.index.base import StructuralIndex
from repro.index.construction import stabilize
from repro.maintenance.base import UpdateStats
from repro.obs import current as current_obs


class PropagateMaintainer:
    """Split-only maintenance of a 1-index (the baseline of [8])."""

    def __init__(self, index: StructuralIndex, splitter_choice: str = "small"):
        self.index = index
        self.graph: DataGraph = index.graph
        #: forwarded to :func:`repro.index.construction.stabilize`.
        self.splitter_choice = splitter_choice

    def insert_edge(
        self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> UpdateStats:
        """Insert the dedge and re-stabilise (no merging)."""
        index = self.index
        iu = index.inode_of(source)
        iv = index.inode_of(target)
        trivial = index.has_iedge(iu, iv)
        self.graph.add_edge(source, target, kind)
        index.note_edge_added(source, target)
        if trivial:
            stats = UpdateStats(trivial=True)
            stats.peak_inodes = index.num_inodes
            current_obs().add("one.trivial")
            return stats
        return self._split_phase(target)

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete the dedge and re-stabilise (no merging).

        Uses the same corrected dnode-level trivial test as the
        split/merge maintainer (see that module's docstring).
        """
        index = self.index
        iu = index.inode_of(source)
        self.graph.remove_edge(source, target)
        index.note_edge_removed(source, target)
        trivial = any(index.inode_of(p) == iu for p in self.graph.iter_pred(target))
        if trivial:
            stats = UpdateStats(trivial=True)
            stats.peak_inodes = index.num_inodes
            current_obs().add("one.trivial")
            return stats
        return self._split_phase(target)

    def _split_phase(self, v: int) -> UpdateStats:
        obs = current_obs()
        index = self.index
        stats = UpdateStats()
        # Same span name as the split/merge maintainer's split phase: the
        # two algorithms differ only in the merge phase, so sharing the
        # name makes their traces directly comparable.
        with obs.span("one.split_phase") as span:
            iv = index.inode_of(v)
            seeds: list[list[int]] = []
            if index.extent_size(iv) > 1:
                singleton = index.split_off(iv, [v])
                stats.splits += 1
                seeds = [[singleton, iv]]
            split_stats = stabilize(index, seeds, self.splitter_choice)
            stats.splits += split_stats.splits
            stats.peak_inodes = max(split_stats.peak_inodes, index.num_inodes)
            span.set(splits=stats.splits, peak_inodes=stats.peak_inodes)
        if obs.enabled:
            obs.add("one.splits", stats.splits)
            obs.set_max("one.peak_inodes", stats.peak_inodes)
        return stats

    def add_subgraph(
        self,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: "Iterable[tuple[int, int]]" = (),
    ) -> tuple[dict[int, int], UpdateStats]:
        """Subgraph addition with *propagate* doing the edge insertions.

        This is alternative (2) of the Figure 12 experiment: the same
        build-union-connect skeleton as Figure 6, "but using propagate
        instead of insert_1_index_edge to insert the edges" — so no merge
        pass ever runs and quality decays with each addition.
        """
        from repro.index.construction import bisimulation_partition, blocks_of
        from repro.maintenance.split_merge import _require_disjoint_oids

        _require_disjoint_oids(self.graph, subgraph, list(cross_edges))
        cross_edges = list(cross_edges)
        index = self.index
        stats = UpdateStats()
        sub_partition = blocks_of(bisimulation_partition(subgraph))
        mapping = self.graph.add_subgraph(subgraph)
        index.absorb_blocks([[mapping[w] for w in block] for block in sub_partition])
        root = mapping[subgraph_root]
        root_inode = index.inode_of(root)
        if index.extent_size(root_inode) > 1:
            singleton = index.split_off(root_inode, [root])
            stats.splits += 1
            split_stats = stabilize(index, [[singleton, root_inode]], self.splitter_choice)
            stats.splits += split_stats.splits
        from repro.maintenance.split_merge import _normalise_cross_edges

        for a, b, kind in _normalise_cross_edges(cross_edges):
            stats.absorb(
                self.insert_edge(mapping.get(a, a), mapping.get(b, b), kind)
            )
        stats.peak_inodes = max(stats.peak_inodes, index.num_inodes)
        return mapping, stats

    def index_size(self) -> int:
        """Current number of inodes."""
        return self.index.num_inodes

    def rebuild_from_graph(self) -> None:
        """Rebuild the index from scratch (guarded ``degrade`` fallback).

        Resets to the minimum 1-index — the same state the baseline's
        periodic reconstruction produces.
        """
        from repro.maintenance.reconstruction import reconstruct_from_scratch

        reconstruct_from_scratch(self.index)
