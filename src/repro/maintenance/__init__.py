"""Incremental index maintenance: the paper's algorithms and baselines."""

from repro.maintenance.ak_simple import SimpleAkMaintainer
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.base import MaintenanceTotals, Maintainer, UpdateStats
from repro.maintenance.propagate import PropagateMaintainer
from repro.maintenance.reconstruction import (
    DEFAULT_THRESHOLD,
    ReconstructionPolicy,
    ReconstructionPolicyProtocol,
    quotient_graph,
    reconstruct_from_scratch,
    reconstruct_via_index_graph,
)
from repro.maintenance.split_merge import SplitMergeMaintainer

__all__ = [
    "Maintainer",
    "UpdateStats",
    "MaintenanceTotals",
    "SplitMergeMaintainer",
    "PropagateMaintainer",
    "AkSplitMergeMaintainer",
    "SimpleAkMaintainer",
    "ReconstructionPolicy",
    "ReconstructionPolicyProtocol",
    "reconstruct_via_index_graph",
    "reconstruct_from_scratch",
    "quotient_graph",
    "DEFAULT_THRESHOLD",
]
