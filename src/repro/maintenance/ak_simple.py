"""The "simple" A(k) update baseline (Section 7.2).

This is the comparator the paper evaluates its A(k) maintainer against:
the algorithm sketched at the end of Qun et al. [17], "obtained by fixing
a minor mistake".  After a dedge ``(u, v)`` changes:

1. a breadth-first search finds all potentially affected dnodes — the
   descendants of ``v`` up to depth ``k - 1``, plus ``v`` itself;
2. every inode containing an affected dnode is re-partitioned according
   to **k-bisimilarity computed by definition** on the data graph — the
   stand-alone A(k)-index retains no information about A(k-1), so the
   recursive definition

       sig_0(w) = label(w)
       sig_j(w) = ( sig_{j-1}(w), { sig_{j-1}(p) : p parent of w } )

   is evaluated from scratch for every member.  Without memoisation this
   walks every ancestor *path* of length <= k, which is what makes the
   algorithm exponential in k (the paper: "Notice that the cost of this
   simple algorithm is exponential in k").

The algorithm only ever splits, so the index monotonically degrades —
Figure 13's blow-up — and must be reconstructed periodically
(:class:`~repro.maintenance.reconstruction.ReconstructionPolicy`).

``memoize=True`` caches signatures per update, turning the recursion
linear in the ancestor set; it is offered as an ablation (the blow-up in
*index quality* is unchanged, only the time is) and is what the paper's
"fixing a minor mistake" pointedly does **not** do.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.traversal import descendants_within
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, blocks_of
from repro.maintenance.base import UpdateStats


class SimpleAkMaintainer:
    """Stand-alone A(k) maintenance by definition (the baseline of §7.2)."""

    def __init__(self, index: StructuralIndex, k: int, memoize: bool = False):
        self.index = index
        self.graph: DataGraph = index.graph
        self.k = k
        self.memoize = memoize

    def insert_edge(
        self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> UpdateStats:
        """Insert the dedge and re-split every possibly-unstable inode."""
        self.graph.add_edge(source, target, kind)
        self.index.note_edge_added(source, target)
        return self._repartition_affected(target)

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete the dedge and re-split every possibly-unstable inode."""
        self.graph.remove_edge(source, target)
        self.index.note_edge_removed(source, target)
        return self._repartition_affected(target)

    def index_size(self) -> int:
        """Current number of inodes."""
        return self.index.num_inodes

    def reconstruct(self) -> None:
        """Rebuild the index to the minimum A(k) from scratch."""
        classes = ak_class_maps(self.graph, self.k)[self.k]
        fresh = StructuralIndex.from_partition(self.graph, blocks_of(classes))
        self.index._adopt_from(fresh)

    #: guarded ``degrade`` fallback; the rebuild is the same operation the
    #: 5 % reconstruction policy triggers.
    rebuild_from_graph = reconstruct

    # ------------------------------------------------------------------

    def _repartition_affected(self, v: int) -> UpdateStats:
        stats = UpdateStats()
        index = self.index
        affected = descendants_within(self.graph, v, self.k - 1)
        affected.add(v)
        touched = {index.inode_of(w) for w in affected}

        cache: dict[tuple[int, int], Hashable] | None = {} if self.memoize else None
        for inode in sorted(touched):
            members = sorted(index.extent(inode))
            if len(members) == 1:
                continue
            groups: dict[Hashable, list[int]] = {}
            for w in members:
                groups.setdefault(self._ksig(w, self.k, cache), []).append(w)
            if len(groups) < 2:
                continue
            ordered = sorted(groups.values(), key=len, reverse=True)
            for block in ordered[1:]:  # the largest group keeps the inode id
                index.split_off(inode, block)
                stats.splits += 1
                stats.moves += len(block)
        stats.trivial = stats.splits == 0
        stats.peak_inodes = index.num_inodes
        return stats

    def _ksig(
        self, w: int, depth: int, cache: dict[tuple[int, int], Hashable] | None
    ) -> Hashable:
        """k-bisimilarity signature by definition (exponential when uncached)."""
        if depth == 0:
            return self.graph.label(w)
        if cache is not None:
            key = (w, depth)
            hit = cache.get(key)
            if hit is not None:
                return hit
        sig = (
            self._ksig(w, depth - 1, cache),
            frozenset(self._ksig(p, depth - 1, cache) for p in self.graph.iter_pred(w)),
        )
        if cache is not None:
            cache[(w, depth)] = sig
        return sig
