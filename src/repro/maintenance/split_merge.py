"""The paper's split/merge maintenance algorithm for the 1-index.

This is the primary contribution of Section 5, transcribed from Figure 3
(edge insertion/deletion) and Figure 6 (subgraph addition):

* the **split phase** first makes the index *correct* again: if the
  updated dnode ``v`` is no longer bisimilar to the rest of its inode,
  ``{v}`` is split out and the split is propagated with Paige–Tarjan's
  compound-block worklist (:func:`repro.index.construction.stabilize`);

* the **merge phase** then makes it *minimal* again: starting from
  ``I[v]`` it looks for an inode with the same label and the same set of
  index parents, merges, and cascades the search through the index
  successors of freshly merged inodes until no merge applies.

Guarantees (Theorem 1): starting from a minimal 1-index, the result is a
minimal 1-index; on acyclic data graphs it is the unique minimum 1-index.
The property tests assert both claims directly.

Deletion guard.  Figure 3's comment block returns early when *any* dedge
remains between the extents of ``I[u]`` and ``I[v]``; that test is too
weak (``v`` may have lost its only parent in ``I[u]`` while its siblings
kept theirs, leaving ``I[v]`` unstable).  Following the proof of Lemma 3
("the algorithm first checks if this edge update changes any index
predecessor–successor relations") we return early iff ``v`` itself still
has a parent in ``I[u]`` — i.e. iff v's *index-parent set* is unchanged.
For insertion the analogous dnode-level test coincides with the iedge
test on any stable index.  See DESIGN.md, "Algorithmic fidelity notes".
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.exceptions import MaintenanceError
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.index.base import StructuralIndex
from repro.index.construction import bisimulation_partition, blocks_of, stabilize
from repro.maintenance.base import UpdateStats
from repro.obs import current as current_obs


def _normalise_cross_edges(
    cross_edges: Iterable[tuple]
) -> list[tuple[int, int, EdgeKind]]:
    """Accept ``(a, b)`` or ``(a, b, kind)`` cross-edge tuples."""
    normalised = []
    for item in cross_edges:
        if len(item) == 2:
            a, b = item
            normalised.append((a, b, EdgeKind.TREE))
        else:
            a, b, kind = item
            normalised.append((a, b, kind))
    return normalised


def _require_disjoint_oids(
    graph: DataGraph,
    subgraph: DataGraph,
    cross_edges: Iterable[tuple[int, int]],
    preserve_oids: bool = False,
) -> None:
    """Reject ambiguous cross-edge endpoints (and, when the subgraph's
    oids are to be preserved, any oid collision at all).

    Cross edges are resolved "subgraph oid first, host oid otherwise", so
    when a subgraph oid is *also* a live host oid the reference is
    ambiguous.  Subgraphs extracted from a host
    (:func:`repro.workload.updates.extract_subgraphs`) are naturally
    disjoint (their oids just left the host); hand-built subgraphs should
    pass explicit non-colliding oids to ``DataGraph.add_node``.
    """
    if not cross_edges and not preserve_oids:
        return
    colliding = [oid for oid in subgraph.nodes() if graph.has_node(oid)]
    if colliding:
        raise MaintenanceError(
            f"subgraph oids {sorted(colliding)[:5]} also exist in the host graph; "
            + (
                "cannot preserve them — use disjoint oids"
                if preserve_oids
                else "cross-edge endpoints would be ambiguous — use disjoint oids"
            )
        )


class SplitMergeMaintainer:
    """Split/merge maintenance of a 1-index (Figures 3 and 6).

    The maintainer takes ownership of both the graph and the index: all
    updates must go through it, otherwise the index silently drifts from
    the data.  The index passed in should be minimal (e.g. freshly built
    by :meth:`repro.index.OneIndex.build`); minimality is then preserved
    by every operation (Lemma 3).
    """

    def __init__(self, index: StructuralIndex, splitter_choice: str = "small"):
        self.index = index
        self.graph: DataGraph = index.graph
        #: forwarded to :func:`repro.index.construction.stabilize`; only
        #: the ablation benchmark changes it.
        self.splitter_choice = splitter_choice
        #: optional :class:`repro.resilience.TouchedSet` for incremental
        #: snapshot publication.  The 1-index journals every mutation, so
        #: the only direct report needed here is the wholesale
        #: invalidation on :meth:`rebuild_from_graph`.
        self.touched = None

    # ------------------------------------------------------------------
    # Edge insertion / deletion (Figure 3)
    # ------------------------------------------------------------------

    def insert_edge(
        self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> UpdateStats:
        """Insert the dedge ``source -> target`` and repair the index."""
        index = self.index
        iu = index.inode_of(source)
        iv = index.inode_of(target)
        trivial = index.has_iedge(iu, iv)
        self.graph.add_edge(source, target, kind)
        index.note_edge_added(source, target)
        if trivial:
            stats = UpdateStats(trivial=True)
            stats.peak_inodes = index.num_inodes
            current_obs().add("one.trivial")
            return stats
        return self._split_then_merge(target)

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete the dedge ``source -> target`` and repair the index."""
        index = self.index
        iu = index.inode_of(source)
        self.graph.remove_edge(source, target)
        index.note_edge_removed(source, target)
        # Trivial iff v still has a parent in I[u]: its index-parent set,
        # and hence every dnode's, is unchanged (see the module docstring).
        trivial = any(index.inode_of(p) == iu for p in self.graph.iter_pred(target))
        if trivial:
            stats = UpdateStats(trivial=True)
            stats.peak_inodes = index.num_inodes
            current_obs().add("one.trivial")
            return stats
        return self._split_then_merge(target)

    def _split_then_merge(self, v: int) -> UpdateStats:
        """The non-trivial path of Figure 3: split phase, then merge phase."""
        obs = current_obs()
        index = self.index
        stats = UpdateStats()
        with obs.span("one.repair", dnode=v) as repair_span:
            # --- split phase ---------------------------------------------
            with obs.span("one.split_phase") as split_span:
                iv = index.inode_of(v)
                seeds: list[list[int]] = []
                if index.extent_size(iv) > 1:
                    singleton = index.split_off(iv, [v])
                    stats.splits += 1
                    seeds = [[singleton, iv]]
                split_stats = stabilize(index, seeds, self.splitter_choice)
                stats.splits += split_stats.splits
                stats.peak_inodes = max(split_stats.peak_inodes, index.num_inodes)
                split_span.set(splits=stats.splits, peak_inodes=stats.peak_inodes)
            # --- merge phase ---------------------------------------------
            with obs.span("one.merge_phase") as merge_span:
                self._merge_phase(index.inode_of(v), stats)
                merge_span.set(merges=stats.merges)
            repair_span.set(splits=stats.splits, merges=stats.merges)
        if obs.enabled:
            # one.merges is emitted inside _merge_phase; stats.splits here
            # is exactly the split phase's work.
            obs.add("one.splits", stats.splits)
            obs.set_max("one.peak_inodes", stats.peak_inodes)
        return stats

    def _merge_phase(self, start: int, stats: UpdateStats) -> None:
        """Figure 3's merge phase, beginning at inode *start* (= I[v])."""
        index = self.index
        queue: deque[int] = deque()
        merges_before = stats.merges

        partner = self._find_merge_partner(start)
        if partner is not None:
            merged = index.merge_inodes([start, partner])
            stats.merges += 1
            queue.append(merged)

        while queue:
            inode = queue.popleft()
            if not index.has_inode(inode):
                continue
            merged_any = self._merge_successor_groups(inode, queue, stats)
            del merged_any  # cascade is driven purely by the queue
        current_obs().add("one.merges", stats.merges - merges_before)

    def _find_merge_partner(self, inode: int) -> int | None:
        """An inode with the same label and index parents as *inode*.

        The paper looks "among I[v]'s siblings"; when ``I[v]`` has no
        index parents (v became unreachable) the sibling set is undefined
        and we fall back to a scan over parentless inodes.  The number of
        candidates examined is reported through the ``one.merge_probes``
        counter — the cost driver of the merge phase.
        """
        index = self.index
        label = index.label_of(inode)
        parents = index.ipred_set(inode)
        probes = 0
        try:
            if parents:
                seen: set[int] = set()
                for parent in parents:
                    for sibling in index.isucc(parent):
                        if sibling == inode or sibling in seen:
                            continue
                        seen.add(sibling)
                        probes += 1
                        if (
                            index.label_of(sibling) == label
                            and index.ipred_set(sibling) == parents
                        ):
                            return sibling
                return None
            for other in index.inodes():
                probes += 1
                if (
                    other != inode
                    and index.label_of(other) == label
                    and not index.ipred_set(other)
                ):
                    return other
            return None
        finally:
            current_obs().add("one.merge_probes", probes)

    def _merge_successor_groups(
        self, inode: int, queue: deque[int], stats: UpdateStats
    ) -> bool:
        """Merge equal-signature groups among ``ISucc(inode)``."""
        index = self.index
        groups: dict[tuple[str, frozenset[int]], list[int]] = {}
        for child in index.isucc(inode):
            signature = (index.label_of(child), index.ipred_set(child))
            groups.setdefault(signature, []).append(child)
        merged_any = False
        for members in groups.values():
            if len(members) < 2:
                continue
            survivor = index.merge_inodes(members)
            stats.merges += len(members) - 1
            queue.append(survivor)
            merged_any = True
        return merged_any

    # ------------------------------------------------------------------
    # Node insertion / deletion (composed from edge operations, as
    # Section 1 prescribes: "edge insertion and deletion constitute the
    # basic operations upon which other kinds of updates can be based")
    # ------------------------------------------------------------------

    def insert_node(
        self, parent: int, label: str, value: object = None
    ) -> tuple[int, UpdateStats]:
        """Create a new dnode under *parent*; returns (oid, stats).

        The fresh dnode starts in a singleton inode (trivially stable) and
        the connecting edge goes through :meth:`insert_edge`, whose merge
        phase folds the newcomer into an existing inode when one matches.
        """
        oid = self.graph.add_node(label, value)
        self.index.add_dnode(oid)
        stats = self.insert_edge(parent, oid)
        return oid, stats

    def delete_node(self, dnode: int) -> UpdateStats:
        """Delete a dnode and all its incident dedges.

        Every incident edge is removed through :meth:`delete_edge` (so the
        index stays minimal throughout), then the isolated dnode is
        dropped from its inode and the graph.
        """
        graph = self.graph
        index = self.index
        stats = UpdateStats()
        for p in list(graph.iter_pred(dnode)):
            if p != dnode:
                stats.absorb(self.delete_edge(p, dnode))
        for c in list(graph.iter_succ(dnode)):
            stats.absorb(self.delete_edge(dnode, c))
        index.drop_dnode(dnode)
        graph.remove_node(dnode)
        stats.peak_inodes = max(stats.peak_inodes, index.num_inodes)
        return stats

    def set_value(self, dnode: int, value) -> UpdateStats:
        """Change a dnode's value.

        Values are not part of the bisimulation signature, so the index
        is untouched; the mutation still flows through the maintainer so
        it is journaled, batched, and replicated like every other op.
        """
        self.graph.set_value(dnode, value)
        stats = UpdateStats()
        stats.peak_inodes = self.index.num_inodes
        return stats

    # ------------------------------------------------------------------
    # Subgraph addition / deletion (Section 5.2)
    # ------------------------------------------------------------------

    def add_subgraph(
        self,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: Iterable[tuple[int, int]] = (),
        preserve_oids: bool = False,
    ) -> tuple[dict[int, int], UpdateStats]:
        """Figure 6: add a rooted subgraph plus its cross edges.

        *subgraph* is a separate :class:`DataGraph` (its own oids); its
        designated *subgraph_root* is where incoming cross edges point.
        *cross_edges* are ``(existing oid, subgraph oid)`` or
        ``(subgraph oid, existing oid)`` pairs — endpoints are resolved
        against the subgraph first (after translation), then the host
        graph.  Incoming edges to the root are batched: they are all added
        before a single merge pass, which is the optimisation the paper
        calls out; every other cross edge goes through
        :meth:`insert_edge`.

        With ``preserve_oids=True`` the subgraph's nodes keep their oids
        in the host graph (the corpus layer relies on this to know node
        locations before the op commits); the disjointness check then
        covers every subgraph oid, not just cross-edge endpoints.

        Returns the oid translation map and the aggregated stats.
        """
        if subgraph.num_nodes == 0:
            raise MaintenanceError("cannot add an empty subgraph")
        _require_disjoint_oids(self.graph, subgraph, cross_edges, preserve_oids)
        obs = current_obs()
        index = self.index
        stats = UpdateStats()
        with obs.span("one.add_subgraph", nodes=subgraph.num_nodes) as span:
            mapping = self._add_subgraph(
                subgraph, subgraph_root, cross_edges, stats, preserve_oids
            )
            span.set(splits=stats.splits, merges=stats.merges)
        if obs.enabled:
            obs.add("one.subgraph_adds")
            obs.set_max("one.peak_inodes", stats.peak_inodes)
        return mapping, stats

    def _add_subgraph(
        self,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: Iterable[tuple[int, int]],
        stats: UpdateStats,
        preserve_oids: bool = False,
    ) -> dict[int, int]:
        """Figure 6's body (split out so :meth:`add_subgraph` can trace it)."""
        index = self.index

        # 1. Graph surgery + adopt the subgraph's own (minimum) 1-index.
        sub_partition = blocks_of(bisimulation_partition(subgraph))
        mapping = self.graph.add_subgraph(subgraph, preserve_oids)
        mapped_blocks = [[mapping[w] for w in block] for block in sub_partition]
        index.absorb_blocks(mapped_blocks)
        stats.peak_inodes = index.num_inodes

        root = mapping[subgraph_root]
        root_inode = index.inode_of(root)
        if index.extent_size(root_inode) > 1:
            # The root of a rooted subgraph normally sits in a singleton
            # inode ("the root of the new subgraph must be in an inode by
            # itself"); subgraphs with a cycle back into their root can
            # violate that, so force the split and propagate it.
            singleton = index.split_off(root_inode, [root])
            stats.splits += 1
            split_stats = stabilize(index, [[singleton, root_inode]], self.splitter_choice)
            stats.splits += split_stats.splits
            stats.peak_inodes = max(stats.peak_inodes, split_stats.peak_inodes)
            current_obs().add("one.splits", 1 + split_stats.splits)

        # 2. Batch all incoming cross edges to the root, merge once.
        incoming_root: list[tuple[int, int, EdgeKind]] = []
        other_edges: list[tuple[int, int, EdgeKind]] = []
        for a, b, kind in _normalise_cross_edges(cross_edges):
            source = mapping.get(a, a)
            target = mapping.get(b, b)
            if target == root:
                incoming_root.append((source, target, kind))
            else:
                other_edges.append((source, target, kind))
        for source, target, kind in incoming_root:
            self.graph.add_edge(source, target, kind)
            index.note_edge_added(source, target)
        self._merge_phase(index.inode_of(root), stats)

        # 3. Remaining cross edges one at a time (Figure 6's final loop).
        for source, target, kind in other_edges:
            stats.absorb(self.insert_edge(source, target, kind))
        stats.peak_inodes = max(stats.peak_inodes, index.num_inodes)
        return mapping

    def delete_subgraph(self, subgraph_root: int) -> UpdateStats:
        """Delete the subtree hanging off *subgraph_root*.

        The doomed node set is everything reachable from the root via
        TREE edges (mirroring how :meth:`add_subgraph` workloads extract
        subgraphs).  All edges crossing the boundary are deleted through
        :meth:`delete_edge` (keeping the index minimal), the interior is
        then dropped wholesale, and a final merge sweep re-minimises the
        inodes whose parent sets changed when interior support vanished.
        """
        obs = current_obs()
        index = self.index
        graph = self.graph
        doomed = set(graph.subgraph_from(subgraph_root).nodes())
        stats = UpdateStats()
        with obs.span("one.delete_subgraph", nodes=len(doomed)) as span:
            self._delete_subgraph(doomed, stats)
            span.set(splits=stats.splits, merges=stats.merges)
        if obs.enabled:
            obs.add("one.subgraph_dels")
            obs.set_max("one.peak_inodes", stats.peak_inodes)
        return stats

    def _delete_subgraph(self, doomed: set[int], stats: UpdateStats) -> None:
        """Body of :meth:`delete_subgraph` (split out so it can be traced)."""
        index = self.index
        graph = self.graph

        boundary: list[tuple[int, int]] = []
        for w in doomed:
            for p in graph.iter_pred(w):
                if p not in doomed:
                    boundary.append((p, w))
            for c in graph.iter_succ(w):
                if c not in doomed:
                    boundary.append((w, c))
        for source, target in boundary:
            stats.absorb(self.delete_edge(source, target))

        # Snapshot merge candidates before interior support disappears:
        # surviving inodes that shared an extent with doomed dnodes, and
        # their index successors, are the only inodes whose index-parent
        # sets can change below.
        touched: set[int] = set()
        for w in doomed:
            inode = index.inode_of(w)
            touched.add(inode)
            touched.update(index.isucc(inode))

        # Interior edges: no maintenance needed, both endpoints die.
        for w in doomed:
            for c in list(graph.iter_succ(w)):
                graph.remove_edge(w, c)
                index.note_edge_removed(w, c)
        for w in doomed:
            index.drop_dnode(w)
            graph.remove_node(w)
        # Inodes that lost an index parent may now merge with lookalikes.
        sweep_before = stats.merges
        queue: deque[int] = deque()
        for inode in touched:
            if not index.has_inode(inode):
                continue
            partner = self._find_merge_partner(inode)
            if partner is not None:
                merged = index.merge_inodes([inode, partner])
                stats.merges += 1
                queue.append(merged)
        while queue:
            inode = queue.popleft()
            if index.has_inode(inode):
                self._merge_successor_groups(inode, queue, stats)
        current_obs().add("one.merges", stats.merges - sweep_before)
        stats.peak_inodes = max(stats.peak_inodes, index.num_inodes)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def index_size(self) -> int:
        """Current number of inodes."""
        return self.index.num_inodes

    def rebuild_from_graph(self) -> None:
        """Discard the partition and rebuild the minimum 1-index.

        The guarded maintainer's ``degrade`` policy calls this after a
        rolled-back failure: whatever state the incremental machinery got
        wrong is replaced by a from-scratch construction over the (clean)
        data graph, and maintenance continues incrementally from there.
        """
        from repro.maintenance.reconstruction import reconstruct_from_scratch

        if self.touched is not None:
            self.touched.mark_all()
        reconstruct_from_scratch(self.index)
