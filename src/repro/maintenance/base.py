"""Shared plumbing for the maintenance algorithms.

Every maintainer mutates a data graph *and* its index(es) in lockstep and
returns an :class:`UpdateStats` describing what the update did — how many
split and merge operations ran, how large the intermediate index got
(Section 5.1 discusses the worst-case blow-up of Figure 5), and whether
the update was *trivial* (no index change needed at all).

The :class:`Maintainer` protocol is what the experiment harness programs
against; all five concrete maintainers (split/merge and propagate for the
1-index, split/merge and simple for the A(k)-index, plus the
reconstruction wrapper) satisfy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.graph.datagraph import DataGraph


@dataclass
class UpdateStats:
    """What one maintenance operation did.

    ``splits``/``merges`` count inode-level operations; ``moves`` counts
    dnode reassignments (the A(k) maintainer's unit of work);
    ``peak_inodes`` is the largest index size reached *during* the update
    (the intermediate index of Section 5.1); ``trivial`` flags updates
    that changed no index predecessor–successor relation and returned
    immediately.
    """

    splits: int = 0
    merges: int = 0
    moves: int = 0
    peak_inodes: int = 0
    trivial: bool = False
    levels_touched: int = 0

    def absorb(self, other: "UpdateStats") -> None:
        """Accumulate another operation's counters into this one."""
        self.splits += other.splits
        self.merges += other.merges
        self.moves += other.moves
        self.peak_inodes = max(self.peak_inodes, other.peak_inodes)
        self.levels_touched = max(self.levels_touched, other.levels_touched)
        if not other.trivial:
            self.trivial = False

    def record_to(self, registry, prefix: str) -> None:
        """Tally this operation into a ``repro.obs`` metrics registry.

        Counters ``{prefix}.updates/trivial/splits/merges/moves`` and the
        gauge ``{prefix}.peak_inodes`` become the source of truth for
        aggregate views (e.g. :class:`repro.experiments.runner.MixedRunResult`),
        replacing hand-maintained tallies in the callers.
        """
        registry.counter(f"{prefix}.updates").inc()
        if self.trivial:
            registry.counter(f"{prefix}.trivial").inc()
        registry.counter(f"{prefix}.splits").add(self.splits)
        registry.counter(f"{prefix}.merges").add(self.merges)
        registry.counter(f"{prefix}.moves").add(self.moves)
        registry.gauge(f"{prefix}.peak_inodes").set_max(self.peak_inodes)


@dataclass
class MaintenanceTotals:
    """Running totals across a whole update sequence (harness helper)."""

    updates: int = 0
    trivial_updates: int = 0
    splits: int = 0
    merges: int = 0
    moves: int = 0
    peak_inodes: int = 0
    reconstructions: int = 0
    stats_log: list[UpdateStats] = field(default_factory=list)

    def record(self, stats: UpdateStats, keep_log: bool = False) -> None:
        self.updates += 1
        if stats.trivial:
            self.trivial_updates += 1
        self.splits += stats.splits
        self.merges += stats.merges
        self.moves += stats.moves
        self.peak_inodes = max(self.peak_inodes, stats.peak_inodes)
        if keep_log:
            self.stats_log.append(stats)


@runtime_checkable
class Maintainer(Protocol):
    """An incremental index maintainer bound to one data graph."""

    graph: DataGraph

    def insert_edge(self, source: int, target: int) -> UpdateStats:
        """Insert the dedge and repair the index."""
        ...

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Delete the dedge and repair the index."""
        ...

    def index_size(self) -> int:
        """Current number of inodes of the maintained index."""
        ...
