"""Index reconstruction (Kaushik et al. [8]) and the 5 % trigger policy.

Section 7 keeps the *propagate* and *simple* baselines usable by
periodically reconstructing their indexes.  Two pieces live here:

* :func:`reconstruct_via_index_graph` — the "index reconstruction" idea
  of [8]: run the 1-index construction *on the index graph itself*
  (treating inodes as data nodes) and then "blow up" each node of the new
  index by replacing old inodes with their extents.  Because the current
  partition is stable, bisimilarity of inodes in the quotient graph
  coincides with bisimilarity of their extents, so the result is the
  minimum 1-index of the underlying data — at a fraction of the cost of
  re-running construction over all dnodes.

* :class:`ReconstructionPolicy` — the paper's trigger heuristic:
  "remember the size of the index when it was last reconstructed, and
  then perform reconstruction whenever the current index is more than 5 %
  larger than that."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.index.construction import bisimulation_partition
from repro.obs import current as current_obs

#: The paper's reconstruction trigger: 5 % growth since last reconstruction.
DEFAULT_THRESHOLD = 0.05


@runtime_checkable
class ReconstructionPolicyProtocol(Protocol):
    """What any reconstruction trigger must speak.

    The experiment runner and the adaptive serving controller drive
    their triggers through exactly this surface, so the paper's flat
    5 %-growth :class:`ReconstructionPolicy` and the cost-based
    :class:`repro.adaptive.cost_model.CostBasedPolicy` are drop-in
    interchangeable (``--reconstruct-threshold`` tunes the former, the
    live obs metrics feed the latter).
    """

    reconstructions: int
    intervals: list[int]

    def start(self, size: int) -> None:
        """Initialise with the size of the freshly built index."""

    def should_reconstruct(self, current_size: int) -> bool:
        """Record one update; report whether the trigger fires."""

    def reconstructed(self, new_size: int) -> None:
        """Note that a reconstruction happened at the current update."""

    @property
    def mean_interval(self) -> float:
        """Average number of updates between reconstructions."""


def quotient_graph(index: StructuralIndex) -> tuple[DataGraph, dict[int, int]]:
    """The index graph as a :class:`DataGraph` (inodes become nodes).

    Returns the quotient graph and a map ``quotient oid -> inode id``.
    """
    quotient = DataGraph()
    to_inode: dict[int, int] = {}
    oid_of: dict[int, int] = {}
    for inode in index.inodes():
        oid = quotient.add_node(index.label_of(inode))
        oid_of[inode] = oid
        to_inode[oid] = inode
    for inode in index.inodes():
        for target in index.isucc(inode):
            quotient.add_edge(oid_of[inode], oid_of[target])
    return quotient, to_inode


def reconstruct_via_index_graph(index: StructuralIndex) -> None:
    """Rebuild *index* in place to the minimum 1-index, via its quotient.

    Precondition: *index* is a valid (self-stable) 1-index.  The quotient
    construction then computes which inodes are bisimilar; merging each
    bisimilarity class yields the coarsest stable partition of the data
    graph, i.e. the minimum 1-index (Lemma 1).
    """
    obs = current_obs()
    with obs.span("one.reconstruction", before=index.num_inodes) as span:
        quotient, to_inode = quotient_graph(index)
        classes = bisimulation_partition(quotient)
        groups: dict[int, list[int]] = {}
        for oid, cls in classes.items():
            groups.setdefault(cls, []).append(to_inode[oid])
        for members in groups.values():
            if len(members) > 1:
                index.merge_inodes(members)
        span.set(after=index.num_inodes)
    obs.add("recon.via_index_graph")


def reconstruct_from_scratch(index: StructuralIndex) -> None:
    """Rebuild *index* in place by full construction over the data graph.

    The expensive alternative (used as the third comparator in the
    subgraph-addition experiment): ignores the current partition entirely.
    """
    obs = current_obs()
    with obs.span("one.reconstruction_from_scratch", before=index.num_inodes) as span:
        classes = bisimulation_partition(index.graph)
        target: dict[int, list[int]] = {}
        for dnode, cls in classes.items():
            target.setdefault(cls, []).append(dnode)
        fresh = StructuralIndex.from_partition(index.graph, target.values())
        index._adopt_from(fresh)
        span.set(after=index.num_inodes)
    obs.add("recon.from_scratch")


@dataclass
class ReconstructionPolicy:
    """The paper's 5 %-growth reconstruction trigger.

    Track the index size with :meth:`should_reconstruct` after every
    update; when it returns ``True``, reconstruct and call
    :meth:`reconstructed` with the new size.  :attr:`intervals` records
    the number of updates between consecutive reconstructions (Table 1
    reports their mean).
    """

    threshold: float = DEFAULT_THRESHOLD
    baseline_size: int = 0
    updates_since: int = 0
    reconstructions: int = 0
    intervals: list[int] = field(default_factory=list)

    def start(self, size: int) -> None:
        """Initialise with the size of the freshly built index."""
        self.baseline_size = size
        self.updates_since = 0

    def should_reconstruct(self, current_size: int) -> bool:
        """Record one update; report whether the trigger fires."""
        self.updates_since += 1
        if self.baseline_size <= 0:
            return False
        return current_size > (1.0 + self.threshold) * self.baseline_size

    def reconstructed(self, new_size: int) -> None:
        """Note that a reconstruction happened at the current update."""
        self.reconstructions += 1
        self.intervals.append(self.updates_since)
        self.baseline_size = new_size
        self.updates_since = 0

    @property
    def mean_interval(self) -> float:
        """Average number of updates between reconstructions (Table 1)."""
        if not self.intervals:
            return float("inf")
        return sum(self.intervals) / len(self.intervals)
