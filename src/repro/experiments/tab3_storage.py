"""Table 3: storage of the split/merge A(k) organisation.

The split/merge maintainer keeps the whole A(0..k) family; Section 6's
refinement-tree layout makes the overhead over a stand-alone A(k)-index
small — below 15 % in the paper, growing with k:

    k                          2      3      4      5
    stand-alone A(k) (XMark)  2023   2044   2112   2192   (KB)
    A(0) to A(k) (XMark)      2035   2081   2224   2479
    additional storage        0.6%   1.8%   5.3%   13%

The reproduction computes the same logical accounting
(:mod:`repro.metrics.storage`) on freshly built families; the paper notes
the ratio "does not change much during updates" because the minimum
family is maintained — the test-suite asserts that too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.index.akindex import AkIndexFamily
from repro.metrics.storage import StorageEstimate, estimate_storage
from repro.workload.imdb import generate_imdb
from repro.workload.xmark import generate_xmark


@dataclass
class Tab3Result:
    """Storage estimates per dataset and k."""

    estimates: dict[tuple[str, int], StorageEstimate]
    level_sizes: dict[tuple[str, int], list[int]]
    ks: tuple[int, ...]


def run(scale: ExperimentScale) -> Tab3Result:
    """Run the Table 3 accounting at the given scale."""
    estimates: dict[tuple[str, int], StorageEstimate] = {}
    level_sizes: dict[tuple[str, int], list[int]] = {}
    graphs = {
        "XMark": generate_xmark(scale.xmark_at(1.0)).graph,
        "IMDB": generate_imdb(scale.imdb).graph,
    }
    for dataset, graph in graphs.items():
        for k in scale.ks:
            family = AkIndexFamily.build(graph, k)
            estimates[(dataset, k)] = estimate_storage(family)
            level_sizes[(dataset, k)] = family.sizes()
    return Tab3Result(estimates=estimates, level_sizes=level_sizes, ks=tuple(scale.ks))


def report(result: Tab3Result) -> str:
    """Render the table in the paper's layout."""
    rows = []
    for dataset in ("XMark", "IMDB"):
        rows.append(
            [f"stand-alone A(k) ({dataset}, KB)"]
            + [f"{result.estimates[(dataset, k)].standalone_kb:.0f}" for k in result.ks]
        )
        rows.append(
            [f"A(0) to A(k) ({dataset}, KB)"]
            + [f"{result.estimates[(dataset, k)].family_kb:.0f}" for k in result.ks]
        )
        rows.append(
            [f"additional storage ({dataset})"]
            + [
                f"{result.estimates[(dataset, k)].overhead_fraction * 100:.1f}%"
                for k in result.ks
            ]
        )
    table = format_table(["k"] + [str(k) for k in result.ks], rows)
    return "Table 3 — storage requirement of the split/merge organisation\n" + table


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
