"""``bench-replicate``: aggregate query throughput vs replica count.

The read-scaling payoff claim of DESIGN.md §10: N replicas serve ~N
times the aggregate query throughput of one, because each answers from
its own snapshot.  Measured with the real replication stack — a durable
primary under a live write load, followers bootstrapped over the wire
and tailing in the background, a staleness-bounded
:class:`~repro.replication.ReplicaRouter` spreading the clients.

Pure-Python query evaluation is GIL-bound, so raw threads over
in-process replicas cannot show the scaling a deployment would see.
Each replica is therefore fronted by a **capacity-1 server model**: a
lock plus a modeled per-query service time (a ``time.sleep``, which
releases the GIL) sized to a few multiples of the measured in-process
evaluation cost.  That models what replication actually buys — more
independent servers — while every query still runs the real router →
follower → snapshot path, and the followers really are applying shipped
WAL records the whole time (the reported steady-state lag proves it).

Reported per replica count: aggregate queries/sec from a fixed client
pool, scaling vs the single-replica baseline, steady-state replication
lag, and router fallbacks.  The CI gate (``benchmarks/bench_replicate.py``)
requires >= 1.7x at three replicas.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.obs import current as current_obs
from repro.replication import FollowerIndexService, Primary, ReplicaRouter, ReplicationLink
from repro.service import ServiceConfig, Update
from repro.store import DurableIndexService, StoreConfig
from repro.workload.queries import QueryWorkload
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: concurrent closed-loop query clients
CLIENTS = 8

#: replica counts swept (the gate compares the last against the first)
REPLICA_COUNTS = (1, 2, 3)

#: modeled per-query service time = this many multiples of the measured
#: in-process evaluation cost (floored at MIN_SERVICE_SECONDS), so the
#: capacity-1 model dominates the GIL-serialised evaluation share
SERVICE_TIME_MULTIPLE = 3.0
MIN_SERVICE_SECONDS = 0.002

#: staleness bound handed to the router (generous: the write load is
#: gentle; fallbacks to the primary are counted and reported)
MAX_LAG_LSNS = 512


def queries_per_client(scale: ExperimentScale) -> int:
    """Closed-loop queries each client issues per replica count."""
    if scale.name == "smoke":
        return 25
    if scale.name == "paper":
        return 120
    return 60


def pairs_for(scale: ExperimentScale) -> int:
    """Insert/delete pairs committed before the followers bootstrap."""
    return max(16, scale.pairs_1index // 4)


class _ModeledReplica:
    """Capacity-1 server façade over a follower.

    One query at a time (the lock), each costing a modeled service time
    (the sleep — which releases the GIL, so independent replicas overlap)
    plus the real snapshot evaluation.  Exposes the ``lag_lsns``/
    ``query`` surface the router routes by.
    """

    def __init__(self, follower: FollowerIndexService, service_seconds: float):
        self.follower = follower
        self.service_seconds = service_seconds
        self.served = 0
        self._lock = threading.Lock()

    @property
    def lag_lsns(self) -> int:
        return self.follower.lag_lsns

    def query(self, query):
        with self._lock:
            time.sleep(self.service_seconds)
            self.served += 1
            return self.follower.query(query)


@dataclass
class ReplicaCountPoint:
    """One client-pool run at one replica count."""

    replicas: int
    clients: int
    queries: int
    seconds: float
    steady_lag_lsns: int
    fallbacks: int

    @property
    def queries_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.queries / self.seconds


@dataclass
class BenchReplicateResult:
    """The full sweep plus the modeled service time it ran under."""

    scale: str
    service_ms: float
    writer_commits: int
    points: list[ReplicaCountPoint] = field(default_factory=list)

    def scaling(self, replicas: int) -> float:
        """Throughput at *replicas* over the single-replica baseline."""
        by_count = {p.replicas: p for p in self.points}
        if 1 not in by_count or replicas not in by_count:
            return 0.0
        base = by_count[1].queries_per_second
        if base <= 0:
            return 0.0
        return by_count[replicas].queries_per_second / base

    @property
    def max_steady_lag(self) -> int:
        if not self.points:
            return 0
        return max(p.steady_lag_lsns for p in self.points)

    def as_json(self) -> dict:
        """The ``BENCH_replicate.json`` payload (schema in DESIGN.md §10)."""
        return {
            "schema": "repro.bench_replicate/1",
            "scale": self.scale,
            "service_ms": round(self.service_ms, 3),
            "writer_commits": self.writer_commits,
            "points": [
                {**asdict(p), "queries_per_second": round(p.queries_per_second, 1)}
                for p in self.points
            ],
            "summary": {
                "scaling_2": round(self.scaling(2), 2),
                "scaling_3": round(self.scaling(3), 2),
                "max_steady_lag_lsns": self.max_steady_lag,
            },
        }


class _WriteLoad(threading.Thread):
    """A gentle background writer: the replicas must tail while serving."""

    def __init__(self, service: DurableIndexService, updates, pace_seconds: float = 0.005):
        super().__init__(name="repro-bench-writer", daemon=True)
        self.service = service
        self.steps = updates.steps(1_000_000)  # effectively endless
        self.pace_seconds = pace_seconds
        self.commits = 0
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.is_set():
            try:
                op, source, target = next(self.steps)
            except StopIteration:  # pragma: no cover - workload exhausted
                return
            if op == "insert":
                self.service.submit_nowait(Update.insert_edge(source, target, EdgeKind.IDREF))
            else:
                self.service.submit_nowait(Update.delete_edge(source, target))
            self.service.flush()
            self.commits += 1
            self.stop_event.wait(self.pace_seconds)


def _measure_service_seconds(replica: FollowerIndexService, queries) -> float:
    """Size the modeled service time off the real evaluation cost."""
    started = time.perf_counter()
    for query in queries:
        replica.query(query)
    mean_eval = (time.perf_counter() - started) / max(1, len(queries))
    return max(MIN_SERVICE_SECONDS, SERVICE_TIME_MULTIPLE * mean_eval)


def _drive_clients(router: ReplicaRouter, queries, per_client: int) -> tuple[int, float]:
    """CLIENTS closed-loop threads; returns (total queries, wall seconds)."""
    barrier = threading.Barrier(CLIENTS + 1)
    done: list[float] = []
    done_lock = threading.Lock()

    def client(position: int) -> None:
        barrier.wait()
        for i in range(per_client):
            router.query(queries[(position + i) % len(queries)])
        with done_lock:
            done.append(time.perf_counter())

    threads = [
        threading.Thread(target=client, args=(position,), daemon=True)
        for position in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    return CLIENTS * per_client, max(done) - started


def run(scale: ExperimentScale, seed: int = 103) -> BenchReplicateResult:
    """The replica-count sweep over the real replication stack."""
    batch_max_ops = 8
    directory = tempfile.mkdtemp(prefix="repro-bench-replicate-")
    followers: list[FollowerIndexService] = []
    writer = None
    try:
        graph = generate_xmark(scale.xmark).graph
        updates = MixedUpdateWorkload.prepare(graph, seed=seed)
        service = DurableIndexService(
            graph,
            directory,
            config=ServiceConfig(
                family="one",
                k=min(scale.ks),
                batch_max_ops=batch_max_ops,
                queue_capacity=0,
            ),
            store_config=StoreConfig(checkpoint_every_records=0),
        )
        # base load, then the checkpoint the followers bootstrap from
        for op, source, target in updates.steps(pairs_for(scale)):
            if op == "insert":
                service.submit_nowait(Update.insert_edge(source, target, EdgeKind.IDREF))
            else:
                service.submit_nowait(Update.delete_edge(source, target))
            if service.queue_depth() >= batch_max_ops:
                service.flush()
        service.drain()
        service.checkpoint()

        feed = Primary(service=service)
        for position in range(max(REPLICA_COUNTS)):
            link = ReplicationLink(feed, seed=seed + position)
            follower = FollowerIndexService.bootstrap(link)
            follower.catch_up(deadline_seconds=60.0)
            followers.append(follower)

        pool = QueryWorkload.generate(graph, count=16, seed=seed + 1)
        queries = list(pool)
        service_seconds = _measure_service_seconds(followers[0], queries)
        replicas = [_ModeledReplica(f, service_seconds) for f in followers]

        writer = _WriteLoad(service, updates)
        writer.start()
        for follower in followers:
            follower.start_tailing(poll_interval=0.005)

        result = BenchReplicateResult(
            scale=scale.name,
            service_ms=service_seconds * 1000.0,
            writer_commits=0,
        )
        per_client = queries_per_client(scale)
        obs = current_obs()
        for count in REPLICA_COUNTS:
            router = ReplicaRouter(
                replicas[:count], primary=service, max_lag_lsns=MAX_LAG_LSNS
            )
            total, seconds = _drive_clients(router, queries, per_client)
            steady_lag = max(f.lag_lsns for f in followers[:count])
            result.points.append(
                ReplicaCountPoint(
                    replicas=count,
                    clients=CLIENTS,
                    queries=total,
                    seconds=seconds,
                    steady_lag_lsns=steady_lag,
                    fallbacks=router.fallbacks,
                )
            )
            obs.observe(f"bench.replicate.qps_{count}", total / seconds)

        writer.stop_event.set()
        writer.join()
        result.writer_commits = writer.commits
        writer = None
        service.drain()
        # the replicas must still be byte-identical clones once the
        # writes stop — serving under load must not have corrupted them
        fingerprint = service.snapshot.fingerprint()
        for follower in followers:
            follower.stop_tailing()
            follower.catch_up(deadline_seconds=60.0)
            if follower.snapshot.fingerprint() != fingerprint:  # pragma: no cover
                raise AssertionError("replica diverged from primary under load")
        return result
    finally:
        if writer is not None:
            writer.stop_event.set()
            writer.join()
        for follower in followers:
            follower.close()
        try:
            service.close()
        except UnboundLocalError:  # pragma: no cover - constructor failed
            pass
        shutil.rmtree(directory, ignore_errors=True)


def report(result: BenchReplicateResult) -> str:
    """Render the scaling table."""
    table = format_table(
        ["replicas", "clients", "queries", "seconds", "qps", "scaling", "lag", "fallbacks"],
        [
            [
                p.replicas,
                p.clients,
                p.queries,
                f"{p.seconds:.2f}",
                f"{p.queries_per_second:.0f}",
                f"{result.scaling(p.replicas):.2f}x",
                p.steady_lag_lsns,
                p.fallbacks,
            ]
            for p in result.points
        ],
    )
    header = (
        f"modeled service time {result.service_ms:.1f} ms/query (capacity-1 "
        f"replicas), {result.writer_commits} background commits shipped while "
        f"serving; scaling at 3 replicas: {result.scaling(3):.2f}x"
    )
    return f"{header}\n\n{table}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
