"""Plain-text rendering of experiment results.

The harness prints figures as sampled series (one row per sample point)
and tables in the paper's own row/column layout, so a run can be eyeballed
against the original next to EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.runner import MixedRunResult, SeriesPoint


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align a list of rows under headers (all cells str()-ed)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def format_quality_series(
    title: str, series: dict[str, list[SeriesPoint]]
) -> str:
    """Render aligned quality curves: one row per sample point.

    All series must be sampled at the same update counts (the shared
    runner guarantees it).
    """
    names = list(series)
    if not names:
        return f"{title}\n(no data)"
    length = min(len(points) for points in series.values())
    headers = ["updates"] + [f"{name} quality" for name in names]
    rows = []
    for i in range(length):
        update = series[names[0]][i].update
        row = [update] + [f"{series[name][i].quality * 100:.2f}%" for name in names]
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def format_percent(value: float, digits: int = 2) -> str:
    """0.0312 -> '3.12%'."""
    return f"{value * 100:.{digits}f}%"


def format_run_summary(result: MixedRunResult) -> str:
    """One-line digest of a maintainer run (mean and tail update times)."""
    return (
        f"{result.name}: {result.updates} updates, "
        f"final quality {format_percent(result.final_quality)}, "
        f"max quality {format_percent(result.max_quality)}, "
        f"{result.mean_update_ms:.2f} ms/update "
        f"(p50 {result.p50_update_ms:.2f}, p95 {result.p95_update_ms:.2f}, "
        f"max {result.max_update_ms:.2f}), "
        f"{result.reconstructions} reconstructions"
    )
