"""``persist``: the serve workload committed through a durable store.

Not a paper figure — durability is this reproduction's extension toward
operating the maintained index as a system — but it follows the
experiment protocol: one XMark dataset at the chosen scale, the Section
7 mixed IDREF workload, committed through a
:class:`~repro.store.DurableIndexService` so every batch is logged
before it is published and checkpoints fire on their cadence.

Reported per family (1-index and A(k)): commits, WAL records/bytes,
fsyncs, checkpoints written, on-disk store size, and the final version.
With ``--store-dir`` the store survives the run (one subdirectory per
family) and ``recover`` can reopen it; without, it lives in a temporary
directory that is deleted at the end.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.service import IndexService, ServiceConfig, Update
from repro.store import DurableIndexService, StoreConfig
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: checkpoint cadence of the persist run (commits between checkpoints)
CHECKPOINT_EVERY = 16


@dataclass
class FamilyPersistStats:
    """What one family's durable run wrote."""

    store_dir: str
    commits: int
    wal_records: int
    wal_bytes: int
    fsyncs: int
    checkpoints: int
    store_bytes: int
    version: int


@dataclass
class PersistResult:
    """Per-family durable-run statistics (plus where the stores live)."""

    stats: dict[str, FamilyPersistStats] = field(default_factory=dict)
    kept: bool = False  # store dirs survive the run (--store-dir given)


def pairs_for(scale: ExperimentScale) -> int:
    """Insert/delete pairs committed durably (slice of the fig-11 budget)."""
    return max(16, scale.pairs_1index // 2)


def store_bytes(directory: str) -> int:
    """Total size of every file in the store directory."""
    return sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    )


def run(
    scale: ExperimentScale,
    store_config: StoreConfig | None = None,
    batch_max_ops: int = 8,
    seed: int = 53,
) -> PersistResult:
    """Commit the mixed workload durably, one store per family."""
    result = PersistResult(kept=scale.store_dir is not None)
    base_dir = scale.store_dir or tempfile.mkdtemp(prefix="repro-persist-")
    config = store_config or StoreConfig(checkpoint_every_records=CHECKPOINT_EVERY)
    try:
        for family in ("one", "ak"):
            graph = generate_xmark(scale.xmark).graph
            updates = MixedUpdateWorkload.prepare(graph, seed=seed)
            family_dir = os.path.join(base_dir, family)
            os.makedirs(family_dir, exist_ok=True)
            service = DurableIndexService(
                graph,
                family_dir,
                config=ServiceConfig(
                    family=family,
                    k=min(scale.ks),
                    batch_max_ops=batch_max_ops,
                    queue_capacity=0,
                ),
                store_config=config,
            )
            for op, source, target in updates.steps(pairs_for(scale)):
                if op == "insert":
                    service.submit_nowait(Update.insert_edge(source, target, EdgeKind.IDREF))
                else:
                    service.submit_nowait(Update.delete_edge(source, target))
                if service.queue_depth() >= batch_max_ops:
                    service.flush()
            service.drain()
            service.close()  # final checkpoint: recover is a pure load
            result.stats[family] = FamilyPersistStats(
                store_dir=family_dir,
                commits=service.stats.batches,
                wal_records=service.wal.appended_records,
                wal_bytes=service.wal.appended_bytes,
                fsyncs=service.wal.fsyncs_performed,
                checkpoints=service.checkpointer.checkpoints_written,
                store_bytes=store_bytes(family_dir),
                version=service.version,
            )
    finally:
        if not result.kept:
            shutil.rmtree(base_dir, ignore_errors=True)
    return result


def verify_roundtrip(result: PersistResult) -> dict[str, int]:
    """Recover every kept store and return the recovered versions.

    Only meaningful when the run kept its stores (``--store-dir``).
    """
    versions: dict[str, int] = {}
    for family, stats in result.stats.items():
        service = IndexService.recover(stats.store_dir)
        versions[family] = service.version
        service.close(checkpoint=False)
    return versions


def report(result: PersistResult) -> str:
    """Render the persist table."""
    headers = [
        "family",
        "commits",
        "wal records",
        "wal KiB",
        "fsyncs",
        "checkpoints",
        "store KiB",
        "version",
    ]
    rows = []
    for family, stats in result.stats.items():
        rows.append(
            [
                family,
                stats.commits,
                stats.wal_records,
                f"{stats.wal_bytes / 1024:.1f}",
                stats.fsyncs,
                stats.checkpoints,
                f"{stats.store_bytes / 1024:.1f}",
                stats.version,
            ]
        )
    table = format_table(headers, rows)
    if result.kept:
        where = ", ".join(s.store_dir for s in result.stats.values())
        return f"{table}\n\nstores kept at: {where} (reopen with `recover`)"
    return f"{table}\n\nstores were temporary (pass --store-dir to keep them)"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
