"""``corpus``: document-granular serving over one shared structural index.

Demonstrates the corpus engine end to end for both index families: an
XMark database split into pseudo-documents, bulk-loaded (splice, then
one refinement pass), then churned — seeded arrivals, expiries and
in-place replacements compiled into the ordinary update stream — while
a closed loop of path queries reads the published snapshots.  After the
churn the evolved corpus must fingerprint identically to a from-scratch
bulk load over the surviving documents: the differential guarantee of
DESIGN.md §11.

The 1-index family is compared on the graph fingerprint (on cyclic data
split/merge is minimal only up to quality, so partitions may differ —
the A(k) family compares graph *and* partition).  Composes with the shared
CLI switches: ``--guard``/``--guard-policy`` wrap maintenance in
transactions, ``--store-dir`` serves the corpora durably (WAL +
snapshots), ``--serve-metrics`` exposes the run's live telemetry.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.corpus import CorpusChurnWorkload, CorpusService
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.service import ServiceConfig

FAMILIES = ("one", "ak")


def documents_for(scale: ExperimentScale) -> int:
    """How many pseudo-documents the XMark database is split into."""
    return {"smoke": 5, "paper": 12}.get(scale.name, 8)


def churn_steps(scale: ExperimentScale) -> int:
    """Churn schedule length."""
    return {"smoke": 20, "paper": 120}.get(scale.name, 50)


@dataclass
class CorpusFamilyStats:
    """One family's bulk-load + churn run."""

    family: str
    documents: int
    dnodes: int
    dedges: int
    bulk_seconds: float
    report: object = None  # ChurnReport
    dangling_after: int = 0


@dataclass
class CorpusResult:
    """Both families' runs."""

    scale: str
    stats: dict[str, CorpusFamilyStats] = field(default_factory=dict)

    @property
    def all_converged(self) -> bool:
        return all(s.report.converged for s in self.stats.values())


def service_config(scale: ExperimentScale, family: str) -> ServiceConfig:
    """The corpus serving config, honouring the CLI's ``--guard``."""
    kwargs = {"family": family, "k": min(scale.ks)}
    if scale.guard is not None:
        kwargs["guard"] = scale.guard
    return ServiceConfig(**kwargs)


def run(scale: ExperimentScale, seed: int = 211) -> CorpusResult:
    """Bulk-load + churn for both families."""
    from repro.workload.xmark import generate_xmark

    result = CorpusResult(scale=scale.name)
    documents = generate_xmark(scale.xmark).as_documents(documents_for(scale))
    scratch = None
    if scale.store_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-corpus-")
    base_dir = scale.store_dir or scratch
    try:
        for family in FAMILIES:
            config = service_config(scale, family)
            started = time.perf_counter()
            corpus = CorpusService.bulk_load(
                documents,
                config=config,
                store_dir=os.path.join(base_dir, f"corpus-{family}"),
            )
            bulk_seconds = time.perf_counter() - started
            try:
                corpus.check()
                corpus.start()
                churn = CorpusChurnWorkload(
                    pool=documents, steps=churn_steps(scale), seed=seed,
                    pace_seconds=0.01,
                )
                # cyclic XMark: the 1-index family compares graphs only
                compare = "graph" if family == "one" else "full"
                report = churn.run(corpus, compare=compare)
                corpus.stop()
                corpus.check()
                result.stats[family] = CorpusFamilyStats(
                    family=family,
                    documents=len(corpus.document_ids()),
                    dnodes=corpus.service.graph.num_nodes,
                    dedges=corpus.service.graph.num_edges,
                    bulk_seconds=bulk_seconds,
                    report=report,
                    dangling_after=len(corpus.dangling_refs()),
                )
            finally:
                corpus.close()
        return result
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def report(result: CorpusResult) -> str:
    """Render the per-family table."""
    table = format_table(
        [
            "family", "docs", "dnodes", "bulk_s", "steps",
            "add/rm/repl", "depth_max", "depth_mean", "queries", "converged",
        ],
        [
            [
                s.family,
                s.documents,
                s.dnodes,
                f"{s.bulk_seconds:.2f}",
                s.report.steps,
                f"{s.report.adds}/{s.report.removes}/{s.report.replaces}",
                s.report.max_depth,
                f"{s.report.mean_depth:.1f}",
                s.report.queries_served,
                "yes" if s.report.converged else "NO",
            ]
            for s in result.stats.values()
        ],
    )
    verdict = (
        "every evolved corpus fingerprints identically to its from-scratch rebuild"
        if result.all_converged
        else "DIVERGENCE: an evolved corpus does not match its rebuild"
    )
    return f"{table}\n\n{verdict}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
