"""``bench-store``: targeted A/B measurements of the durable store.

Two claims get numbers here:

1. **fsync policy is the durability/throughput dial.**  The same
   fig-11 workload is committed durably three times, identical except
   for :class:`~repro.store.StoreConfig`'s ``fsync`` policy: ``always``
   (one fsync per commit — group-commit durability), ``batch`` (one per
   ``sync_every`` commits) and ``off`` (page-cache only).  The experiment
   reports wall-clock and fsync counts per policy; the log contents are
   byte-identical across the three.

2. **Checkpoint + log beats rebuild.**  A crashed store (checkpoint at
   ~90 % of the run, unreplayed tail) is recovered two ways over the
   same bytes: (A) :func:`repro.store.recover` — checkpoint load + tail
   replay through the maintainer; (B) the reconstruction baseline the
   paper's Table 1 prices — load the checkpoint's *graph*, re-apply the
   tail to the graph alone (:func:`repro.store.apply_ops_raw`), then
   ``build`` the index from scratch.  Both paths end on the same graph;
   (A) must win, because it replaces global partition refinement with a
   checkpoint parse plus localised split/merge work.  Invariant
   post-checks are skipped in both arms (timed elsewhere) so the A/B
   isolates recovery itself.

All numbers are recorded through :mod:`repro.obs` (``bench.store.*``),
so ``--trace-summary`` shows them next to the ``store.*`` counters.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.recover import CHECKPOINT_AT, make_crashed_store, pairs_for
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.graph.serialize import graph_from_dict, graph_to_dict
from repro.index.akindex import AkIndexFamily
from repro.index.oneindex import OneIndex
from repro.obs import current as current_obs
from repro.resilience.wire import batch_from_wire
from repro.service import ServiceConfig, Update
from repro.store import (
    DurableIndexService,
    StoreConfig,
    apply_ops_raw,
    latest_checkpoint,
    read_records,
    recover,
)
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark


@dataclass
class FsyncMeasurement:
    """One fsync policy's durable commit run."""

    policy: str
    commits: int
    seconds: float
    fsyncs: int
    wal_bytes: int


@dataclass
class RecoveryMeasurement:
    """The recovery-vs-rebuild A/B for one family."""

    family: str
    replayed_records: int
    replayed_ops: int
    recover_seconds: float
    rebuild_seconds: float
    states_match: bool

    @property
    def speedup(self) -> float:
        """Rebuild / recover wall-clock."""
        if self.recover_seconds <= 0:
            return float("inf")
        return self.rebuild_seconds / self.recover_seconds


@dataclass
class BenchStoreResult:
    """Both A/Bs at one scale."""

    fsync: list[FsyncMeasurement]
    recovery: list[RecoveryMeasurement]


def run_fsync_ab(
    scale: ExperimentScale, batch_max_ops: int = 8, seed: int = 53
) -> list[FsyncMeasurement]:
    """Commit the same workload under each fsync policy."""
    obs = current_obs()
    measurements = []
    for policy in ("off", "batch", "always"):
        graph = generate_xmark(scale.xmark).graph
        updates = MixedUpdateWorkload.prepare(graph, seed=seed)
        directory = tempfile.mkdtemp(prefix=f"repro-bench-fsync-{policy}-")
        try:
            service = DurableIndexService(
                graph,
                directory,
                config=ServiceConfig(batch_max_ops=batch_max_ops, queue_capacity=0),
                store_config=StoreConfig(fsync=policy, checkpoint_every_records=0),
            )
            operations = list(updates.steps(pairs_for(scale)))
            started = time.perf_counter()
            for op, source, target in operations:
                if op == "insert":
                    service.submit_nowait(
                        Update.insert_edge(source, target, EdgeKind.IDREF)
                    )
                else:
                    service.submit_nowait(Update.delete_edge(source, target))
                if service.queue_depth() >= batch_max_ops:
                    service.flush()
            service.drain()
            seconds = time.perf_counter() - started
            measurements.append(
                FsyncMeasurement(
                    policy=policy,
                    commits=service.stats.batches,
                    seconds=seconds,
                    fsyncs=service.wal.fsyncs_performed,
                    wal_bytes=service.wal.appended_bytes,
                )
            )
            service.close(checkpoint=False)
            obs.observe(f"bench.store.fsync_{policy}_seconds", seconds)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return measurements


def _fingerprint_graph(graph) -> str:
    return json.dumps(graph_to_dict(graph), sort_keys=True)


def run_recovery_ab(
    scale: ExperimentScale, family: str = "one", seed: int = 53
) -> RecoveryMeasurement:
    """Recover a crashed store via checkpoint+log, and via rebuild."""
    obs = current_obs()
    directory = tempfile.mkdtemp(prefix="repro-bench-recover-")
    try:
        make_crashed_store(scale, family, directory, seed=seed)

        # A: checkpoint load + tail replay through the maintainer
        started = time.perf_counter()
        recovered = recover(directory, check_level="")
        recover_seconds = time.perf_counter() - started

        # B: reconstruction baseline — checkpoint graph, raw tail, build
        started = time.perf_counter()
        ckpt = latest_checkpoint(directory)
        graph = graph_from_dict(ckpt.graph_dict)
        for record in read_records(directory):
            if record.lsn <= ckpt.wal_lsn:
                continue
            apply_ops_raw(graph, batch_from_wire(record.ops))
        if family == "one":
            OneIndex.build(graph)
        else:
            AkIndexFamily.build(graph, min(scale.ks))
        rebuild_seconds = time.perf_counter() - started

        measurement = RecoveryMeasurement(
            family=family,
            replayed_records=recovered.replayed_records,
            replayed_ops=recovered.replayed_ops,
            recover_seconds=recover_seconds,
            rebuild_seconds=rebuild_seconds,
            states_match=_fingerprint_graph(recovered.graph)
            == _fingerprint_graph(graph),
        )
        obs.observe("bench.store.recover_seconds", recover_seconds)
        obs.observe("bench.store.rebuild_seconds", rebuild_seconds)
        return measurement
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run(scale: ExperimentScale) -> BenchStoreResult:
    """Run both A/Bs at the given scale."""
    return BenchStoreResult(
        fsync=run_fsync_ab(scale),
        recovery=[run_recovery_ab(scale, family) for family in ("one", "ak")],
    )


def report(result: BenchStoreResult) -> str:
    """Render both A/B tables."""
    baseline = next(m for m in result.fsync if m.policy == "off")
    fsync_table = format_table(
        ["fsync policy", "commits", "fsyncs", "wal KiB", "seconds", "vs off"],
        [
            [
                m.policy,
                m.commits,
                m.fsyncs,
                f"{m.wal_bytes / 1024:.1f}",
                f"{m.seconds:.3f}",
                f"{m.seconds / baseline.seconds:.2f}x" if baseline.seconds > 0 else "-",
            ]
            for m in result.fsync
        ],
    )
    recovery_table = format_table(
        ["family", "replayed recs/ops", "recover ms", "rebuild ms", "speedup", "match"],
        [
            [
                m.family,
                f"{m.replayed_records}/{m.replayed_ops}",
                f"{m.recover_seconds * 1000:.1f}",
                f"{m.rebuild_seconds * 1000:.1f}",
                f"{m.speedup:.1f}x",
                "yes" if m.states_match else "NO",
            ]
            for m in result.recovery
        ],
    )
    note = (
        f"recovery A/B: crashed store, checkpoint at {CHECKPOINT_AT:.0%} of the "
        "workload; rebuild = checkpoint graph + raw tail + from-scratch build"
    )
    return f"{fsync_table}\n\n{recovery_table}\n\n{note}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
