"""``bench-serve``: targeted A/B measurements of the serving layer.

Two claims get numbers here:

1. **Coalescing wins.**  A stream of N *cancelling* insert/delete pairs
   (insert an IDREF dedge, delete it again) is the serving layer's best
   case: batched with coalescing on, every pair annihilates before the
   maintainer ever sees it and the commit is (near-)trivial; applied
   unbatched, every operation pays a full split/merge + publish cycle.
   The experiment runs the *same* operation stream both ways — both
   runs end on an identical graph — and reports the wall-clock ratio.

2. **Path-compile caching wins.**  Query texts repeat in a hot serving
   mix, and :func:`repro.query.automaton.as_nfa` memoises text →
   automaton compilation in a bounded LRU.  The experiment evaluates a
   :class:`~repro.workload.queries.QueryWorkload` against one snapshot
   with a cold cache and again warm, and reports both times plus the
   cache counters.

All numbers are also recorded through :mod:`repro.obs` (``bench.serve.*``
histograms), so ``--trace-summary`` shows them in the summary table.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.obs import current as current_obs
from repro.query.automaton import clear_path_cache, path_cache_info
from repro.service import IndexService, ServiceConfig, Update
from repro.workload.queries import QueryWorkload
from repro.workload.random_graphs import candidate_edges
from repro.workload.xmark import generate_xmark


@dataclass
class BenchServeResult:
    """Both A/B measurements at one scale."""

    num_pairs: int
    unbatched_seconds: float
    unbatched_commits: int
    batched_seconds: float
    batched_applied: int
    coalesced_away: int
    num_queries: int
    cold_seconds: float
    warm_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def coalescing_speedup(self) -> float:
        """Unbatched / batched wall-clock for the same cancelling stream."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.unbatched_seconds / self.batched_seconds

    @property
    def cache_speedup(self) -> float:
        """Cold / warm wall-clock for the same query sweep."""
        if self.warm_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds


def pairs_for(scale: ExperimentScale) -> int:
    """Cancelling pairs for a scale (a slice of the 1-index pair budget)."""
    return max(16, scale.pairs_1index // 4)


def _cancelling_stream(graph, num_pairs: int, seed: int) -> list[Update]:
    """N insert/delete pairs over currently-absent IDREF dedges."""
    rng = random.Random(seed)
    pairs = candidate_edges(graph, rng, num_pairs, acyclic=False)
    stream: list[Update] = []
    for source, target in pairs:
        stream.append(Update.insert_edge(source, target, EdgeKind.IDREF))
        stream.append(Update.delete_edge(source, target))
    return stream


def run_coalescing_ab(
    scale: ExperimentScale, seed: int = 31
) -> tuple[int, float, int, float, int, int]:
    """Commit the same cancelling stream unbatched, then batched+coalesced."""
    obs = current_obs()
    num_pairs = pairs_for(scale)

    # A: one commit (and one published version) per operation
    graph = generate_xmark(scale.xmark).graph
    stream = _cancelling_stream(graph, num_pairs, seed)
    service = IndexService(
        graph, ServiceConfig(batch_max_ops=1, queue_capacity=0, coalesce=False)
    )
    started = time.perf_counter()
    for update in stream:
        service.submit_nowait(update)
        service.flush()
    unbatched_seconds = time.perf_counter() - started
    unbatched_commits = service.stats.batches
    service.close()
    obs.observe("bench.serve.unbatched_seconds", unbatched_seconds)

    # B: the same stream as one coalesced batch (same generator seed, so
    # the op sequence is identical down to the edge endpoints)
    graph = generate_xmark(scale.xmark).graph
    stream = _cancelling_stream(graph, num_pairs, seed)
    service = IndexService(
        graph,
        ServiceConfig(batch_max_ops=len(stream), queue_capacity=0, coalesce=True),
    )
    for update in stream:
        service.submit_nowait(update)
    started = time.perf_counter()
    service.flush()
    batched_seconds = time.perf_counter() - started
    batched_applied = service.stats.applied_ops
    coalesced_away = service.stats.coalescing.removed
    service.close()
    obs.observe("bench.serve.batched_seconds", batched_seconds)
    obs.add("bench.serve.coalesced_away", coalesced_away)

    return (
        num_pairs,
        unbatched_seconds,
        unbatched_commits,
        batched_seconds,
        batched_applied,
        coalesced_away,
    )


def run_cache_ab(
    scale: ExperimentScale, seed: int = 41, sweeps: int = 3
) -> tuple[int, float, float, int, int]:
    """Evaluate one query pool cold, then warm, against one snapshot."""
    obs = current_obs()
    graph = generate_xmark(scale.xmark).graph
    service = IndexService(graph, ServiceConfig(family="one"))
    queries = QueryWorkload.generate(graph, count=32, seed=seed)

    clear_path_cache()
    started = time.perf_counter()
    for expression in queries:
        service.query(expression)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(sweeps):
        for expression in queries:
            service.query(expression)
    warm_seconds = (time.perf_counter() - started) / sweeps
    info = path_cache_info()
    service.close()
    obs.observe("bench.serve.cache_cold_seconds", cold_seconds)
    obs.observe("bench.serve.cache_warm_seconds", warm_seconds)
    return len(queries) * (sweeps + 1), cold_seconds, warm_seconds, info.hits, info.misses


def run(scale: ExperimentScale) -> BenchServeResult:
    """Run both A/Bs at the given scale."""
    (
        num_pairs,
        unbatched_seconds,
        unbatched_commits,
        batched_seconds,
        batched_applied,
        coalesced_away,
    ) = run_coalescing_ab(scale)
    num_queries, cold_seconds, warm_seconds, hits, misses = run_cache_ab(scale)
    return BenchServeResult(
        num_pairs=num_pairs,
        unbatched_seconds=unbatched_seconds,
        unbatched_commits=unbatched_commits,
        batched_seconds=batched_seconds,
        batched_applied=batched_applied,
        coalesced_away=coalesced_away,
        num_queries=num_queries,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cache_hits=hits,
        cache_misses=misses,
    )


def report(result: BenchServeResult) -> str:
    """Render both A/B tables."""
    coalescing = format_table(
        ["mode", "commits", "applied ops", "seconds", "speedup"],
        [
            [
                "unbatched",
                result.unbatched_commits,
                2 * result.num_pairs,
                f"{result.unbatched_seconds:.3f}",
                "1.0x",
            ],
            [
                "batched+coalesced",
                1,
                result.batched_applied,
                f"{result.batched_seconds:.3f}",
                f"{result.coalescing_speedup:.1f}x",
            ],
        ],
    )
    cache = format_table(
        ["cache", "sweep seconds", "speedup", "hits", "misses"],
        [
            ["cold", f"{result.cold_seconds:.4f}", "1.0x", "-", "-"],
            [
                "warm",
                f"{result.warm_seconds:.4f}",
                f"{result.cache_speedup:.1f}x",
                result.cache_hits,
                result.cache_misses,
            ],
        ],
    )
    header = (
        f"{result.num_pairs} cancelling insert/delete pairs "
        f"({result.coalesced_away} ops coalesced away); "
        f"{result.num_queries} snapshot queries"
    )
    return f"{header}\n\n{coalescing}\n\n{cache}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
