"""Scale presets for the experiment harness.

The paper's datasets (167 k–272 k dnodes, 5000 update pairs) take minutes
per experiment in pure Python, so every experiment is parameterised by an
:class:`ExperimentScale`:

* ``smoke``  — seconds; used by the test-suite to exercise the harness;
* ``small``  — the default for ``pytest benchmarks/``; tens of seconds
  per experiment, large enough for every qualitative trend to show;
* ``paper``  — approaches the paper's dataset sizes; for an unattended
  full run via ``python -m repro.experiments --scale paper``.

All randomness is seeded through the configs, so a scale fully determines
the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.maintenance.reconstruction import DEFAULT_THRESHOLD
from repro.resilience.guard import GuardConfig
from repro.workload.imdb import IMDBConfig
from repro.workload.xmark import XMarkConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Everything an experiment needs to size itself."""

    name: str
    xmark: XMarkConfig
    imdb: IMDBConfig
    #: insert/delete pairs for the 1-index experiments (paper: 5000)
    pairs_1index: int
    #: insert/delete pairs for the A(k) experiments (paper: 1000)
    pairs_ak: int
    #: quality is sampled every this many update operations
    sample_every: int
    #: subgraphs for the Figure 12 experiment (paper: 500)
    num_subgraphs: int
    #: k values for the A(k) experiments (paper: 2..5)
    ks: tuple[int, ...] = (2, 3, 4, 5)
    #: cyclicities for the XMark experiments (paper: 1, 0.5, 0.2, 0)
    cyclicities: tuple[float, ...] = (1.0, 0.5, 0.2, 0.0)
    #: memoise the simple A(k) baseline's signature recursion (an
    #: ablation of its exponential-in-k cost; see ak_simple.py)
    simple_ak_memoize: bool = False
    #: run maintainers under a transactional guard (``--guard`` on the
    #: CLI); ``None`` = unguarded, the paper's configuration
    guard: Optional[GuardConfig] = None
    #: directory for the durable-store experiments (``--store-dir`` on
    #: the CLI); ``None`` = a throwaway temporary directory per run
    store_dir: Optional[str] = None
    #: growth fraction that triggers reconstruction in the baseline
    #: experiments (``--reconstruct-threshold`` on the CLI; the paper
    #: hard-codes 5 %)
    reconstruct_threshold: float = DEFAULT_THRESHOLD

    def xmark_at(self, cyclicity: float) -> XMarkConfig:
        """The scale's XMark config with the given cyclicity."""
        return replace(self.xmark, cyclicity=cyclicity)


SMOKE = ExperimentScale(
    name="smoke",
    xmark=XMarkConfig(
        num_items=60,
        num_persons=80,
        num_open_auctions=50,
        num_closed_auctions=30,
        num_categories=12,
    ),
    imdb=IMDBConfig(num_movies=80, num_persons=110, num_communities=6),
    pairs_1index=30,
    pairs_ak=10,
    sample_every=10,
    num_subgraphs=10,
    ks=(2, 3),
    cyclicities=(1.0, 0.0),
)

SMALL = ExperimentScale(
    name="small",
    xmark=XMarkConfig(),
    imdb=IMDBConfig(),
    pairs_1index=300,
    pairs_ak=60,
    sample_every=60,
    num_subgraphs=120,
)

PAPER = ExperimentScale(
    name="paper",
    xmark=XMarkConfig(
        num_items=5000,
        num_persons=7000,
        num_open_auctions=4000,
        num_closed_auctions=2500,
        num_categories=800,
    ),
    imdb=IMDBConfig(num_movies=8000, num_persons=11000, num_communities=200),
    pairs_1index=5000,
    pairs_ak=1000,
    sample_every=500,
    num_subgraphs=500,
)

SCALES: dict[str, ExperimentScale] = {s.name: s for s in (SMOKE, SMALL, PAPER)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a preset; raises ``KeyError`` with the available names."""
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None
