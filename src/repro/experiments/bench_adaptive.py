"""``bench-adaptive``: A/B measurements of the adaptive serving plane.

Three claims get numbers here (the CI gates live in
``benchmarks/bench_adaptive.py``; the committed baseline is
``BENCH_adaptive.json``, schema ``repro.bench_adaptive/1``):

1. **Routing + caching win.**  The *same* closed-loop session — same
   XMark graph, same mixed update stream, same shifting query pool,
   seed-identical draw sequences — runs once against a plain
   :class:`~repro.service.IndexService` at the leaf A(k) (fixed-k
   serving: every query pays a full leaf evaluation) and once against
   an :class:`~repro.adaptive.AdaptiveIndexService` (short child-only
   paths evaluate on coarse ladder levels, repeats come from the
   footprint-invalidated result cache).  Reported: query p50/p95 per
   side and the p95 ratio.

2. **Answers are identical.**  Both runs commit the same operation
   sequence, so they end on the same graph; at quiescence every pooled
   expression is evaluated on both services and the match sets must be
   equal, expression by expression.  (The differential suite holds the
   same line at *every* version boundary; this is the end-to-end check
   on the benchmarked configuration.)

3. **The cost-based trigger is no more eager than the flat 5 %.**  The
   paper's propagate baseline replays the same mixed workload twice on
   cyclic XMark — once under the flat
   :class:`~repro.maintenance.ReconstructionPolicy`, once under the
   :class:`~repro.adaptive.CostBasedPolicy` (whose floor *is* the flat
   threshold) — and the cost side must fire at most as many times while
   sampling equal-or-better bloat against the true minimum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adaptive import AdaptiveConfig, AdaptiveIndexService, CostBasedPolicy, CostConfig
from repro.experiments.adaptive import (
    QUERY_SESSIONS,
    UPDATE_SESSIONS,
    shifting_pool,
    steps_for,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.runner import MixedRunResult, run_mixed_updates
from repro.index.oneindex import OneIndex
from repro.maintenance.propagate import PropagateMaintainer
from repro.maintenance.reconstruction import (
    ReconstructionPolicy,
    reconstruct_via_index_graph,
)
from repro.metrics.quality import minimum_1index_size_of
from repro.service import IndexService, ServiceConfig
from repro.workload.sessions import ClosedLoopDriver, DriverReport, SessionMix
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: seed of the routing A/B (graph, workload, pool and roster draws)
ROUTING_SEED = 47
#: seed of the reconstruction A/B workload
RECON_SEED = 53


@dataclass
class RoutingSide:
    """One side of the routing A/B."""

    mode: str
    report: DriverReport
    final_version: int
    #: adaptive side only: route tallies and cache counters
    routed: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    reconstructions: int = 0
    retunes: int = 0


@dataclass
class ReconstructionSide:
    """One side of the flat-vs-cost reconstruction A/B."""

    mode: str
    result: MixedRunResult
    mean_interval: float
    #: mean sampled bloat (index size over true minimum, minus one)
    mean_bloat: float
    final_bloat: float
    skipped_low_yield: int = 0
    expected_yield: float | None = None

    @property
    def triggers(self) -> int:
        return self.result.reconstructions


@dataclass
class BenchAdaptiveResult:
    """All three A/Bs at one scale."""

    scale: str
    k: int
    levels: tuple[int, ...]
    steps: int
    fixed: RoutingSide
    adaptive: RoutingSide
    queries_compared: int
    answers_identical: bool
    compare_seconds: float
    flat: ReconstructionSide
    cost: ReconstructionSide

    @property
    def p95_ratio(self) -> float:
        """Adaptive / fixed query p95 (< 1 means routing wins)."""
        if self.fixed.report.query_p95_ms <= 0:
            return float("inf")
        return self.adaptive.report.query_p95_ms / self.fixed.report.query_p95_ms

    @property
    def p50_ratio(self) -> float:
        """Adaptive / fixed query p50."""
        if self.fixed.report.query_p50_ms <= 0:
            return float("inf")
        return self.adaptive.report.query_p50_ms / self.fixed.report.query_p50_ms

    @property
    def cache_hit_rate(self) -> float:
        return self.adaptive.cache.get("hit_rate", 0.0)

    def as_json(self) -> dict:
        """The ``BENCH_adaptive.json`` payload (schema in DESIGN.md §12)."""

        def side(s: RoutingSide) -> dict:
            return {
                "query_p50_ms": round(s.report.query_p50_ms, 3),
                "query_p95_ms": round(s.report.query_p95_ms, 3),
                "queries": s.report.queries,
                "queries_per_second": round(s.report.queries_per_second, 1),
                "commit_p95_ms": round(s.report.commit_p95_ms, 3),
                "versions": s.final_version,
            }

        def recon(s: ReconstructionSide) -> dict:
            doc = {
                "triggers": s.triggers,
                "mean_interval": (
                    None if s.mean_interval == float("inf") else round(s.mean_interval, 1)
                ),
                "mean_bloat": round(s.mean_bloat, 4),
                "final_bloat": round(s.final_bloat, 4),
            }
            if s.mode == "cost":
                doc["skipped_low_yield"] = s.skipped_low_yield
                doc["expected_yield"] = (
                    None if s.expected_yield is None else round(s.expected_yield, 3)
                )
            return doc

        return {
            "schema": "repro.bench_adaptive/1",
            "scale": self.scale,
            "k": self.k,
            "levels": list(self.levels),
            "steps": self.steps,
            "routing": {
                "fixed": side(self.fixed),
                "adaptive": side(self.adaptive),
                "routed": {str(key): n for key, n in sorted(self.adaptive.routed.items(), key=lambda kv: str(kv[0]))},
                "cache": self.adaptive.cache,
                "reconstructions": self.adaptive.reconstructions,
                "retunes": self.adaptive.retunes,
            },
            "equivalence": {
                "queries_compared": self.queries_compared,
                "answers_identical": self.answers_identical,
                "compare_seconds": round(self.compare_seconds, 3),
            },
            "reconstruction": {
                "flat": recon(self.flat),
                "cost": recon(self.cost),
            },
            "summary": {
                "p95_ratio": round(self.p95_ratio, 3),
                "p50_ratio": round(self.p50_ratio, 3),
                "cache_hit_rate": round(self.cache_hit_rate, 3),
                "cost_triggers_vs_flat": f"{self.cost.triggers}/{self.flat.triggers}",
                "answers_identical": self.answers_identical,
            },
        }


def run_routing_ab(
    scale: ExperimentScale, seed: int = ROUTING_SEED
) -> tuple[RoutingSide, RoutingSide, int, bool, float, int, tuple[int, ...]]:
    """Fixed-k vs adaptive over seed-identical closed-loop sessions."""
    k = max(scale.ks)
    steps = steps_for(scale)

    # A: fixed-k — the base service, every query on the leaf A(k).  The
    # workload mutates the graph (it removes its pooled IDREF edges), so
    # it is prepared before the service captures v0.
    graph = generate_xmark(scale.xmark).graph
    pool = shifting_pool(graph, k, steps, seed + 1)
    updates = MixedUpdateWorkload.prepare(graph, seed=seed)
    fixed_service = IndexService(graph, ServiceConfig(family="ak", k=k))
    fixed_report = ClosedLoopDriver(
        fixed_service,
        updates,
        pool,
        SessionMix(
            steps=steps,
            query_sessions=QUERY_SESSIONS,
            update_sessions=UPDATE_SESSIONS,
            seed=seed + 2,
        ),
    ).run()
    fixed = RoutingSide(
        mode="fixed", report=fixed_report, final_version=fixed_service.version
    )

    # B: adaptive — same seeds end to end, so the same ops and the same
    # query draw sequence hit the adaptive plane instead
    graph = generate_xmark(scale.xmark).graph
    pool = shifting_pool(graph, k, steps, seed + 1)
    updates = MixedUpdateWorkload.prepare(graph, seed=seed)
    adaptive_service = AdaptiveIndexService(
        graph, ServiceConfig(family="ak", k=k), AdaptiveConfig()
    )
    levels = adaptive_service.router.levels
    adaptive_report = ClosedLoopDriver(
        adaptive_service,
        updates,
        pool,
        SessionMix(
            steps=steps,
            query_sessions=QUERY_SESSIONS,
            update_sessions=UPDATE_SESSIONS,
            seed=seed + 2,
        ),
    ).run()
    adaptive = RoutingSide(
        mode="adaptive",
        report=adaptive_report,
        final_version=adaptive_service.version,
        routed=dict(adaptive_service.router.lifetime_routed),
        cache=adaptive_service.cache.stats.as_dict(),
        reconstructions=adaptive_service.controller.policy.reconstructions,
        retunes=adaptive_service.controller.retunes,
    )

    # equivalence sweep: both sides are quiescent on the same final
    # graph, so every pooled expression must answer identically
    started = time.perf_counter()
    expressions = sorted(set(pool))
    identical = True
    for text in expressions:
        if (
            fixed_service.query(text).report.matches
            != adaptive_service.query(text).report.matches
        ):
            identical = False
            break
    compare_seconds = time.perf_counter() - started
    fixed_service.close()
    adaptive_service.close()
    return fixed, adaptive, len(expressions), identical, compare_seconds, steps, levels


def run_reconstruction_ab(
    scale: ExperimentScale, seed: int = RECON_SEED
) -> tuple[ReconstructionSide, ReconstructionSide]:
    """Flat 5 % vs cost-based trigger on the propagate baseline.

    Propagate is the paper's 1-index algorithm that genuinely drifts
    from minimum on cyclic data, so the trigger actually has work to do;
    both sides replay the identical workload (same seeds, own graph
    copies).
    """
    sides: list[ReconstructionSide] = []
    threshold = scale.reconstruct_threshold
    for mode in ("flat", "cost"):
        graph = generate_xmark(scale.xmark_at(1.0)).graph
        workload = MixedUpdateWorkload.prepare(graph, seed=seed)
        index = OneIndex.build(graph)
        maintainer = PropagateMaintainer(index)
        if mode == "flat":
            policy = ReconstructionPolicy(threshold=threshold)
        else:
            policy = CostBasedPolicy(
                config=CostConfig(min_bloat=threshold, hard_bloat=4 * threshold)
            )
        result = run_mixed_updates(
            name=f"bench-adaptive/recon-{mode}",
            maintainer=maintainer,
            workload=workload,
            num_pairs=scale.pairs_1index,
            sample_every=scale.sample_every,
            minimum_size_fn=minimum_1index_size_of,
            policy=policy,
            reconstruct=lambda idx=index: reconstruct_via_index_graph(idx),
        )
        bloats = [point.quality for point in result.points]
        sides.append(
            ReconstructionSide(
                mode=mode,
                result=result,
                mean_interval=policy.mean_interval,
                mean_bloat=sum(bloats) / len(bloats) if bloats else result.final_quality,
                final_bloat=result.final_quality,
                skipped_low_yield=getattr(policy, "skipped_low_yield", 0),
                expected_yield=getattr(policy, "expected_yield", None),
            )
        )
    return sides[0], sides[1]


def run(scale: ExperimentScale) -> BenchAdaptiveResult:
    """Run all three A/Bs at the given scale."""
    fixed, adaptive, compared, identical, compare_seconds, steps, levels = (
        run_routing_ab(scale)
    )
    flat, cost = run_reconstruction_ab(scale)
    return BenchAdaptiveResult(
        scale=scale.name,
        k=max(scale.ks),
        levels=levels,
        steps=steps,
        fixed=fixed,
        adaptive=adaptive,
        queries_compared=compared,
        answers_identical=identical,
        compare_seconds=compare_seconds,
        flat=flat,
        cost=cost,
    )


def report(result: BenchAdaptiveResult) -> str:
    """Render the routing table, the equivalence line, the trigger table."""
    routing = format_table(
        ["mode", "queries", "p50 ms", "p95 ms", "queries/s", "versions"],
        [
            [
                side.mode,
                side.report.queries,
                f"{side.report.query_p50_ms:.2f}",
                f"{side.report.query_p95_ms:.2f}",
                f"{side.report.queries_per_second:.0f}",
                side.final_version,
            ]
            for side in (result.fixed, result.adaptive)
        ],
    )
    cache = result.adaptive.cache
    routed = " ".join(
        f"{key}:{n}"
        for key, n in sorted(result.adaptive.routed.items(), key=lambda kv: str(kv[0]))
    )
    equivalence = (
        f"{result.queries_compared} pooled expressions compared at quiescence: "
        + ("identical answers" if result.answers_identical else "ANSWER MISMATCH")
    )
    recon = format_table(
        ["trigger", "fires", "mean interval", "mean bloat", "final bloat"],
        [
            [
                side.mode,
                side.triggers,
                "-" if side.mean_interval == float("inf") else f"{side.mean_interval:.1f}",
                f"{side.mean_bloat:.3f}",
                f"{side.final_bloat:.3f}",
            ]
            for side in (result.flat, result.cost)
        ],
    )
    header = (
        f"A(k={result.k}) ladder {list(result.levels)}, {result.steps} closed-loop "
        f"steps; p95 ratio {result.p95_ratio:.2f} (adaptive/fixed), cache hit rate "
        f"{cache['hit_rate']:.2f} ({cache['revalidated']} revalidated across commits)"
    )
    return (
        f"{header}\n\n{routing}\n\nrouted: {routed}\n{equivalence}\n\n"
        f"propagate baseline, cyclic XMark — reconstruction triggers:\n{recon}"
    )


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
