"""Ablation: the Figure 5 worst case, quantified.

Section 5.1 warns that a single update can cost Ω(n) split or merge
operations: in the twin-chain gadget
(:func:`repro.workload.random_graphs.worst_case_gadget`), inserting the
marker edge forces the split phase to shear apart every chain position,
and deleting it forces the merge phase to zip them all back together.

The ablation sweeps the chain depth and records the operation counts,
confirming they grow linearly, and contrasts them with the (tiny)
per-update counts measured on the XMark workload — the paper's
"rather contrived and rare in practice" claim, made quantitative.

Also here: the small-splitter-rule ablation (``splitter_choice``), run
over the same gadget family, since the rule is precisely what bounds the
worst case's constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.index.oneindex import OneIndex
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.workload.random_graphs import worst_case_gadget


@dataclass
class GadgetRow:
    """Operation counts for one gadget depth."""

    depth: int
    index_before: int
    insert_splits: int
    insert_merges: int
    index_middle: int
    delete_splits: int
    delete_merges: int
    index_after: int


def run(scale: ExperimentScale, depths: tuple[int, ...] = (8, 16, 32, 64, 128)) -> list[GadgetRow]:
    """Sweep gadget depths; insert then delete the marker edge."""
    del scale  # the gadget is synthetic; scale presets do not apply
    rows: list[GadgetRow] = []
    for depth in depths:
        gadget = worst_case_gadget(depth, with_marker_edge=False)
        index = OneIndex.build(gadget.graph)
        maintainer = SplitMergeMaintainer(index)
        before = index.num_inodes
        insert_stats = maintainer.insert_edge(gadget.marker, gadget.left)
        middle = index.num_inodes
        delete_stats = maintainer.delete_edge(gadget.marker, gadget.left)
        rows.append(
            GadgetRow(
                depth=depth,
                index_before=before,
                insert_splits=insert_stats.splits,
                insert_merges=insert_stats.merges,
                index_middle=middle,
                delete_splits=delete_stats.splits,
                delete_merges=delete_stats.merges,
                index_after=index.num_inodes,
            )
        )
    return rows


def report(rows: list[GadgetRow]) -> str:
    """Render the sweep."""
    table = format_table(
        [
            "depth",
            "|index|",
            "insert splits",
            "insert merges",
            "|index'|",
            "delete splits",
            "delete merges",
            "|index''|",
        ],
        [
            (
                r.depth,
                r.index_before,
                r.insert_splits,
                r.insert_merges,
                r.index_middle,
                r.delete_splits,
                r.delete_merges,
                r.index_after,
            )
            for r in rows
        ],
    )
    return (
        "Ablation — Figure 5 worst case: one update costs Θ(depth) operations\n"
        + table
    )


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
