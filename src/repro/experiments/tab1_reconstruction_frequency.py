"""Table 1: how often the simple A(k) algorithm must reconstruct.

With the 5 % trigger, the paper reports the average number of updates
between two consecutive reconstructions over 2000 updates:

    dataset   A(2)   A(3)   A(4)    A(5)
    XMark     18.6   25.8   46.6    85.2
    IMDB      32.2   69     126.4   142.2

Small k reconstructs most often (coarse inodes shatter fastest), and the
interval grows with k — the shape the reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_mixed_updates
from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, blocks_of
from repro.maintenance.ak_simple import SimpleAkMaintainer
from repro.maintenance.reconstruction import ReconstructionPolicy
from repro.metrics.quality import minimum_ak_size_of
from repro.workload.imdb import generate_imdb
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

WORKLOAD_SEED = 43


@dataclass
class Tab1Result:
    """Mean updates between reconstructions, per dataset and k."""

    intervals: dict[str, dict[int, float]]
    reconstructions: dict[str, dict[int, int]]
    total_updates: int


def _graph_for(dataset: str, scale: ExperimentScale) -> DataGraph:
    if dataset == "XMark":
        return generate_xmark(scale.xmark_at(1.0)).graph
    if dataset == "IMDB":
        return generate_imdb(scale.imdb).graph
    raise ValueError(f"unknown dataset {dataset!r}")


def run(scale: ExperimentScale) -> Tab1Result:
    """Run the Table 1 experiment at the given scale."""
    intervals: dict[str, dict[int, float]] = {}
    recon_counts: dict[str, dict[int, int]] = {}
    for dataset in ("XMark", "IMDB"):
        intervals[dataset] = {}
        recon_counts[dataset] = {}
        for k in scale.ks:
            graph = _graph_for(dataset, scale)
            workload = MixedUpdateWorkload.prepare(graph, seed=WORKLOAD_SEED)
            index = StructuralIndex.from_partition(
                graph, blocks_of(ak_class_maps(graph, k)[k])
            )
            maintainer = SimpleAkMaintainer(index, k, memoize=scale.simple_ak_memoize)
            policy = ReconstructionPolicy(threshold=scale.reconstruct_threshold)
            result = run_mixed_updates(
                name=f"{dataset}/simple A({k})",
                maintainer=maintainer,
                workload=workload,
                num_pairs=scale.pairs_ak,
                sample_every=10**9,  # Table 1 needs no quality samples
                minimum_size_fn=lambda g, k=k: minimum_ak_size_of(g, k),
                policy=policy,
                reconstruct=maintainer.reconstruct,
            )
            intervals[dataset][k] = policy.mean_interval
            recon_counts[dataset][k] = result.reconstructions
    return Tab1Result(
        intervals=intervals,
        reconstructions=recon_counts,
        total_updates=2 * scale.pairs_ak,
    )


def report(result: Tab1Result) -> str:
    """Render the table in the paper's layout."""
    ks = sorted(next(iter(result.intervals.values())))
    rows = []
    for dataset, per_k in result.intervals.items():
        rows.append(
            [dataset]
            + [
                "-" if per_k[k] == float("inf") else f"{per_k[k]:.1f}"
                for k in ks
            ]
        )
    table = format_table(["dataset"] + [f"A({k})" for k in ks], rows)
    return (
        f"Table 1 — average updates between reconstructions for the simple "
        f"algorithm ({result.total_updates} updates, 5% trigger)\n" + table
    )


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
