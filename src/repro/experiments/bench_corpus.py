"""``bench-corpus``: bulk-load A/B plus churn staleness for the corpus engine.

Three ingest strategies build the *same* corpus (same documents, same
oids — the compiler allocates them, not the maintainer) and must land on
the *same* index, verified by the oid-independent corpus fingerprint:

* **bulk** — splice every document subgraph under ROOT with raw graph
  surgery, then build the index once over the finished graph: one
  refinement pass (:meth:`~repro.corpus.service.CorpusService.bulk_load`);
* **per-document** — start empty and feed each compiled
  ``add_subgraph`` through the serving path, so the index is repaired
  incrementally per document (Figure 6's batched subgraph addition);
* **per-edge** — the naive baseline: every node arrives as a singleton
  subgraph and every reference edge as an individual ``insert_edge``,
  driving the raw maintainer one repair at a time.

The expected ordering is bulk < per-document < per-edge; the CI gate
(``benchmarks/bench_corpus.py``) requires bulk to beat per-edge.  The
second half measures churn serving: a seeded arrival/expiry/replacement
schedule under live queries with the background writer draining, the
sampled queue depth bounding staleness, and the final corpus required
to fingerprint identically to a from-scratch rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.corpus import (
    ChurnReport,
    CorpusCatalog,
    CorpusChurnWorkload,
    CorpusService,
    corpus_fingerprint,
    parse_document,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.index.akindex import AkIndexFamily
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.service import ServiceConfig

#: the A/B runs the A(k) family: its split/merge maintains the *minimum*
#: family on arbitrary graphs, so all three strategies must agree on the
#: full (graph + partition) fingerprint even on cyclic XMark
FAMILY = "ak"


def documents_for(scale: ExperimentScale) -> int:
    """Pseudo-documents the XMark database is split into."""
    return {"smoke": 5, "paper": 12}.get(scale.name, 8)


def churn_steps(scale: ExperimentScale) -> int:
    """Churn schedule length."""
    return {"smoke": 24, "paper": 150}.get(scale.name, 60)


@dataclass
class IngestPoint:
    """One ingest strategy's run."""

    strategy: str
    seconds: float
    fingerprint: str
    #: total index-repair steps the maintainer ran (splits + merges not
    #: broken out; per-edge pays one repair per node and per edge)
    repairs: int


@dataclass
class BenchCorpusResult:
    """The ingest A/B plus the churn serving run."""

    scale: str
    family: str
    k: int
    documents: int
    dnodes: int
    dedges: int
    ingest: list[IngestPoint] = field(default_factory=list)
    churn: ChurnReport = field(default_factory=ChurnReport)

    def point(self, strategy: str) -> IngestPoint:
        return next(p for p in self.ingest if p.strategy == strategy)

    @property
    def fingerprints_match(self) -> bool:
        return len({p.fingerprint for p in self.ingest}) == 1

    def speedup(self, slow: str, fast: str) -> float:
        """Wall-clock ratio ``slow / fast`` (> 1 means *fast* wins)."""
        fast_seconds = self.point(fast).seconds
        if fast_seconds <= 0:
            return float("inf")
        return self.point(slow).seconds / fast_seconds

    def as_json(self) -> dict:
        """The ``BENCH_corpus.json`` payload (schema in DESIGN.md §11)."""
        return {
            "schema": "repro.bench_corpus/1",
            "scale": self.scale,
            "family": self.family,
            "k": self.k,
            "documents": self.documents,
            "dnodes": self.dnodes,
            "dedges": self.dedges,
            "ingest": [
                {
                    "strategy": p.strategy,
                    "seconds": round(p.seconds, 3),
                    "repairs": p.repairs,
                }
                for p in self.ingest
            ],
            "summary": {
                "fingerprints_match": self.fingerprints_match,
                "bulk_speedup_vs_per_edge": round(
                    self.speedup("per-edge", "bulk"), 2
                ),
                "bulk_speedup_vs_per_document": round(
                    self.speedup("per-document", "bulk"), 2
                ),
            },
            "churn": {
                "steps": self.churn.steps,
                "adds": self.churn.adds,
                "removes": self.churn.removes,
                "replaces": self.churn.replaces,
                "updates_submitted": self.churn.updates_submitted,
                "queries_served": self.churn.queries_served,
                "depth_max": self.churn.max_depth,
                "depth_mean": round(self.churn.mean_depth, 2),
                "converged": self.churn.converged,
            },
        }


def _per_edge_ingest(documents, k: int):
    """The naive baseline: singleton-subgraph nodes, one edge at a time."""
    graph = DataGraph()
    root = graph.add_root()
    catalog = CorpusCatalog(next_oid=graph._next_oid)
    family = AkIndexFamily.build(graph, k)
    maintainer = AkSplitMergeMaintainer(family)
    repairs = 0
    for doc_id, text in documents:
        document = parse_document(doc_id, text)
        (update,) = catalog.compile_add(document, root)
        sub, sub_root, cross = update.args[:3]
        tree_parent = {}
        ref_edges = []
        for source, target in sub.edges():
            if sub.edge_kind(source, target) is EdgeKind.TREE:
                tree_parent[target] = source
            else:
                ref_edges.append((source, target))
        splice, *cross_refs = cross
        for oid in sub.nodes():  # insertion order: parents precede children
            single = DataGraph()
            single.add_node(sub.label(oid), sub.value(oid), oid=oid)
            parent = splice[0] if oid == sub_root else tree_parent[oid]
            maintainer.add_subgraph(
                single, oid, [(parent, oid, EdgeKind.TREE)], preserve_oids=True
            )
            repairs += 1
        for source, target in ref_edges:
            maintainer.insert_edge(source, target, EdgeKind.IDREF)
            repairs += 1
        for source, target, kind in cross_refs:
            maintainer.insert_edge(source, target, kind)
            repairs += 1
    extents = [set(e) for e in family.levels[-1].extents.values()]
    return corpus_fingerprint(graph, catalog, extents), repairs


def run(scale: ExperimentScale, seed: int = 223) -> BenchCorpusResult:
    """The ingest A/B, then churn serving on the bulk-loaded corpus."""
    from repro.workload.xmark import generate_xmark

    k = min(scale.ks)
    documents = generate_xmark(scale.xmark).as_documents(documents_for(scale))
    config = ServiceConfig(family=FAMILY, k=k)
    result = BenchCorpusResult(
        scale=scale.name, family=FAMILY, k=k,
        documents=len(documents), dnodes=0, dedges=0,
    )

    started = time.perf_counter()
    fingerprint, repairs = _per_edge_ingest(documents, k)
    result.ingest.append(IngestPoint(
        strategy="per-edge",
        seconds=time.perf_counter() - started,
        fingerprint=fingerprint,
        repairs=repairs,
    ))

    started = time.perf_counter()
    incremental = CorpusService.empty(config=config)
    for doc_id, text in documents:
        incremental.add_document(doc_id, text)
    incremental.await_quiescent()
    seconds = time.perf_counter() - started
    result.ingest.append(IngestPoint(
        strategy="per-document",
        seconds=seconds,
        fingerprint=incremental.fingerprint(),
        repairs=len(documents),
    ))
    incremental.close()

    started = time.perf_counter()
    corpus = CorpusService.bulk_load(documents, config=config)
    seconds = time.perf_counter() - started
    result.ingest.append(IngestPoint(
        strategy="bulk",
        seconds=seconds,
        fingerprint=corpus.fingerprint(),
        repairs=1,
    ))
    result.dnodes = corpus.service.graph.num_nodes
    result.dedges = corpus.service.graph.num_edges

    try:
        corpus.start()
        churn = CorpusChurnWorkload(
            pool=documents, steps=churn_steps(scale), seed=seed,
            pace_seconds=0.01,
        )
        result.churn = churn.run(corpus, compare="full")
        corpus.stop()
        corpus.check()
    finally:
        corpus.close()
    return result


def report(result: BenchCorpusResult) -> str:
    """Render the A/B table plus the churn line."""
    table = format_table(
        ["strategy", "seconds", "repairs", "vs bulk"],
        [
            [
                p.strategy,
                f"{p.seconds:.3f}",
                p.repairs,
                f"{result.speedup(p.strategy, 'bulk'):.1f}x",
            ]
            for p in result.ingest
        ],
    )
    match = (
        "all three strategies agree on the corpus fingerprint"
        if result.fingerprints_match
        else "FINGERPRINT MISMATCH between ingest strategies"
    )
    header = (
        f"{result.documents} documents -> {result.dnodes} dnodes / "
        f"{result.dedges} dedges, family {result.family} (k={result.k})"
    )
    return f"{header}\n\n{table}\n\n{match}\n{result.churn.summary()}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
