"""Table 2: average update times of the A(k) maintainers.

The paper's numbers (ms per update over 2000 updates, Java, 2.4 GHz):

    k                               2     3     4     5
    split/merge (XMark)            31    33    34    44
    simple+reconstruction (XMark)  42   203   566   675
    split/merge (IMDB)            112   115   127   153
    simple+reconstruction (IMDB)  176   305   342  1030

The shapes the reproduction checks: split/merge is nearly flat in k
(thanks to the refinement-tree organisation of Section 6), while
simple+reconstruction grows steeply — the by-definition k-bisimilarity
recomputation is exponential in k and the reconstructions pile on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.runner import MixedRunResult, run_mixed_updates
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, blocks_of
from repro.maintenance.ak_simple import SimpleAkMaintainer
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.reconstruction import ReconstructionPolicy
from repro.metrics.quality import minimum_ak_size_of
from repro.workload.imdb import generate_imdb
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

WORKLOAD_SEED = 43

ALGORITHMS = ("split/merge", "simple+reconstruction")


@dataclass
class Tab2Result:
    """Mean per-update milliseconds, per (algorithm, dataset, k)."""

    times_ms: dict[tuple[str, str, int], float]
    runs: dict[tuple[str, str, int], MixedRunResult]
    ks: tuple[int, ...]
    total_updates: int


def _graph_for(dataset: str, scale: ExperimentScale) -> DataGraph:
    if dataset == "XMark":
        return generate_xmark(scale.xmark_at(1.0)).graph
    if dataset == "IMDB":
        return generate_imdb(scale.imdb).graph
    raise ValueError(f"unknown dataset {dataset!r}")


def run(scale: ExperimentScale) -> Tab2Result:
    """Run the Table 2 experiment at the given scale."""
    times: dict[tuple[str, str, int], float] = {}
    runs: dict[tuple[str, str, int], MixedRunResult] = {}
    for dataset in ("XMark", "IMDB"):
        for k in scale.ks:
            for algorithm in ALGORITHMS:
                graph = _graph_for(dataset, scale)
                workload = MixedUpdateWorkload.prepare(graph, seed=WORKLOAD_SEED)
                policy = None
                reconstruct = None
                if algorithm == "split/merge":
                    maintainer = AkSplitMergeMaintainer(AkIndexFamily.build(graph, k))
                else:
                    index = StructuralIndex.from_partition(
                        graph, blocks_of(ak_class_maps(graph, k)[k])
                    )
                    maintainer = SimpleAkMaintainer(
                        index, k, memoize=scale.simple_ak_memoize
                    )
                    policy = ReconstructionPolicy(threshold=scale.reconstruct_threshold)
                    reconstruct = maintainer.reconstruct
                result = run_mixed_updates(
                    name=f"{dataset}/{algorithm}/A({k})",
                    maintainer=maintainer,
                    workload=workload,
                    num_pairs=scale.pairs_ak,
                    sample_every=10**9,
                    minimum_size_fn=lambda g, k=k: minimum_ak_size_of(g, k),
                    policy=policy,
                    reconstruct=reconstruct,
                )
                key = (algorithm, dataset, k)
                runs[key] = result
                times[key] = (
                    result.mean_update_with_recon_ms
                    if algorithm == "simple+reconstruction"
                    else result.mean_update_ms
                )
    return Tab2Result(
        times_ms=times, runs=runs, ks=tuple(scale.ks), total_updates=2 * scale.pairs_ak
    )


def report(result: Tab2Result) -> str:
    """Render the table in the paper's layout."""
    rows = []
    for dataset in ("XMark", "IMDB"):
        for algorithm in ALGORITHMS:
            rows.append(
                [f"{algorithm} ({dataset})"]
                + [f"{result.times_ms[(algorithm, dataset, k)]:.1f}" for k in result.ks]
            )
    table = format_table(["k"] + [str(k) for k in result.ks], rows)
    return (
        f"Table 2 — average running times over {result.total_updates} updates "
        "(ms per update)\n" + table
    )


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
