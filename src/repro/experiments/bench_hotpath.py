"""``bench-hotpath``: the publish/serve hot-path perf baseline.

Three measurements back the DESIGN.md §8 claims and feed the
``BENCH_hotpath.json`` baseline the perf-smoke CI job regenerates:

1. **Publish latency vs graph size** — for each graph size, apply one
   mixed batch through a guarded maintainer with a
   :class:`~repro.resilience.TouchedSet` attached, then time
   :meth:`IndexSnapshot.capture` (the full O(|G|+|I|) freeze) against
   :meth:`IndexSnapshot.evolve` (the O(touched) copy-on-write path) for
   the *same* post-batch state — and byte-compare their fingerprints,
   so every speedup number is only reported for provably identical
   snapshots.

2. **Sustained serving throughput** — the closed-loop serve session run
   twice per family, ``incremental_publish`` on vs off, same seeds;
   reports updates/sec, queries/sec and commit latency for both.

3. **Maintenance ops/sec** — raw split/merge throughput with the
   serving layer out of the picture: N insert/delete edge pairs applied
   directly through each family's maintainer.

4. **Memory A/B: slab core vs dict core** — per tier (``medium`` =
   20k nodes; ``large`` = 500k–1M nodes, skipped at smoke scale), build
   the graph + 1-index on the array-backed core, replay the same graph
   onto the retained dict-of-sets reference
   (:mod:`repro.core.refimpl`), build its 1-index, and report
   ``approx_bytes`` for all four structures plus both construction
   times.  The two cores' snapshots are byte-compared via
   :meth:`IndexSnapshot.capture` fingerprints, so the memory ratio is
   only ever reported for provably identical indexes.  At the medium
   tier a second, ``tracemalloc``-traced build pass records real
   allocation peaks as a cross-check on the ``approx_bytes`` estimates.

All numbers also flow through :mod:`repro.obs`
(``bench.hotpath.*``), so ``--trace-summary`` tabulates them.
"""

from __future__ import annotations

import gc
import random
import time
import tracemalloc
from dataclasses import asdict, dataclass

from repro.core.refimpl import build_dict_one_index, to_dict_graph
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.oneindex import OneIndex
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.obs import current as current_obs
from repro.resilience.guard import GuardConfig, GuardedMaintainer
from repro.resilience.journal import TouchedSet
from repro.service import IndexService, ServiceConfig
from repro.service.snapshot import IndexSnapshot
from repro.workload.queries import QueryWorkload
from repro.workload.random_graphs import candidate_edges, document_tree, random_dag
from repro.workload.sessions import ClosedLoopDriver, SessionMix
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: operations in the measured publish batch (kept small and constant so
#: the evolve cost stays O(touched) while the graph size sweeps)
PUBLISH_BATCH_OPS = 16

#: timing repetitions per publish measurement (minimum is reported)
PUBLISH_REPEATS = 5

#: timing repetitions per memory-tier index build (minimum is reported);
#: the large tier runs once — its builds are long enough to be stable
MEMORY_BUILD_REPEATS = 3


@dataclass
class PublishPoint:
    """Full-capture vs evolve publish latency at one graph size."""

    family: str
    k: int
    nodes: int
    edges: int
    inodes: int
    batch_ops: int
    full_capture_ms: float
    evolve_ms: float
    fingerprints_equal: bool

    @property
    def speedup(self) -> float:
        """Full-capture / evolve latency for the same published state."""
        if self.evolve_ms <= 0:
            return float("inf")
        return self.full_capture_ms / self.evolve_ms


@dataclass
class ThroughputPoint:
    """One closed-loop serve run (one family, one publish mode)."""

    family: str
    incremental_publish: bool
    steps: int
    updates_per_second: float
    queries_per_second: float
    commit_p50_ms: float
    commit_p95_ms: float
    versions: int


@dataclass
class MaintenancePoint:
    """Raw maintainer throughput: edge insert/delete pairs per second."""

    family: str
    ops: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.ops / self.seconds


@dataclass
class MemoryPoint:
    """Slab core vs dict core: bytes and build time at one tier.

    ``*_build_seconds`` time from-scratch 1-index construction only
    (:meth:`OneIndex.build` vs :func:`build_dict_one_index`) — the
    apples-to-apples pair; graph population is excluded because the two
    cores ingest through different paths (generator vs replay).
    ``tracemalloc_*`` fields are real allocation peaks from a separate
    traced build pass, or 0 at tiers where tracing is skipped.
    """

    tier: str
    nodes: int
    edges: int
    slab_graph_bytes: int
    slab_index_bytes: int
    dict_graph_bytes: int
    dict_index_bytes: int
    slab_build_seconds: float
    dict_build_seconds: float
    tracemalloc_slab_peak_bytes: int
    tracemalloc_dict_peak_bytes: int
    fingerprints_equal: bool

    @property
    def slab_total_bytes(self) -> int:
        return self.slab_graph_bytes + self.slab_index_bytes

    @property
    def dict_total_bytes(self) -> int:
        return self.dict_graph_bytes + self.dict_index_bytes

    @property
    def memory_ratio(self) -> float:
        """dict-core bytes / slab-core bytes (graph + index); higher is better."""
        if self.slab_total_bytes <= 0:
            return float("inf")
        return self.dict_total_bytes / self.slab_total_bytes

    @property
    def build_ratio(self) -> float:
        """Slab index build time / dict index build time; <= 1 means no regression."""
        if self.dict_build_seconds <= 0:
            return float("inf")
        return self.slab_build_seconds / self.dict_build_seconds


@dataclass
class BenchHotpathResult:
    """All four measurements at one scale."""

    scale: str
    publish_latency: list[PublishPoint]
    throughput: list[ThroughputPoint]
    maintenance: list[MaintenancePoint]
    memory: list[MemoryPoint]

    @property
    def worst_publish_speedup(self) -> float:
        """Smallest evolve speedup over the sweep (the gate's number)."""
        if not self.publish_latency:
            return 0.0
        return min(p.speedup for p in self.publish_latency)

    @property
    def largest_graph_speedup(self) -> float:
        """Evolve speedup on the largest benchmarked graph."""
        if not self.publish_latency:
            return 0.0
        return max(self.publish_latency, key=lambda p: p.nodes).speedup

    @property
    def all_fingerprints_equal(self) -> bool:
        """Whether every evolve/capture pair byte-matched."""
        return all(p.fingerprints_equal for p in self.publish_latency)

    @property
    def memory_ratio_largest(self) -> float:
        """dict/slab memory ratio at the largest benchmarked tier."""
        if not self.memory:
            return 0.0
        return max(self.memory, key=lambda p: p.nodes).memory_ratio

    @property
    def worst_memory_ratio(self) -> float:
        """Smallest dict/slab memory ratio over the tiers (the gate's number)."""
        if not self.memory:
            return 0.0
        return min(p.memory_ratio for p in self.memory)

    @property
    def worst_build_ratio(self) -> float:
        """Largest slab/dict build-time ratio over the tiers (<= 1 is a win)."""
        if not self.memory:
            return 0.0
        return max(p.build_ratio for p in self.memory)

    @property
    def memory_fingerprints_equal(self) -> bool:
        """Whether every slab/dict index pair byte-matched."""
        return all(p.fingerprints_equal for p in self.memory)

    def as_json(self) -> dict:
        """The ``BENCH_hotpath.json`` payload (schema documented in DESIGN.md §8)."""
        return {
            "schema": "repro.bench_hotpath/2",
            "scale": self.scale,
            "publish_latency": [
                {**asdict(p), "speedup": round(p.speedup, 2)}
                for p in self.publish_latency
            ],
            "throughput": [asdict(p) for p in self.throughput],
            "maintenance": [
                {**asdict(p), "ops_per_second": round(p.ops_per_second, 1)}
                for p in self.maintenance
            ],
            "memory": [
                {
                    **asdict(p),
                    "slab_total_bytes": p.slab_total_bytes,
                    "dict_total_bytes": p.dict_total_bytes,
                    "memory_ratio": round(p.memory_ratio, 2),
                    "build_ratio": round(p.build_ratio, 3),
                }
                for p in self.memory
            ],
            "summary": {
                "worst_publish_speedup": round(self.worst_publish_speedup, 2),
                "largest_graph_speedup": round(self.largest_graph_speedup, 2),
                "all_fingerprints_equal": self.all_fingerprints_equal,
                "memory_ratio_largest": round(self.memory_ratio_largest, 2),
                "worst_memory_ratio": round(self.worst_memory_ratio, 2),
                "worst_build_ratio": round(self.worst_build_ratio, 3),
                "memory_fingerprints_equal": self.memory_fingerprints_equal,
            },
        }


def graph_sizes_for(scale: ExperimentScale) -> tuple[int, ...]:
    """Node counts for the publish-latency sweep."""
    if scale.name == "smoke":
        return (300, 1500)
    if scale.name == "paper":
        return (5000, 20000, 50000, 150000)
    return (2000, 10000, 50000)


def _publish_workload(graph: DataGraph, seed: int) -> list[tuple[str, tuple]]:
    """One mixed batch: node inserts + edge inserts (always applicable)."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    calls: list[tuple[str, tuple]] = []
    edges = candidate_edges(graph, rng, PUBLISH_BATCH_OPS // 2, acyclic=True)
    for source, target in edges:
        calls.append(("insert_edge", (source, target)))
    while len(calls) < PUBLISH_BATCH_OPS:
        calls.append(("insert_node", (rng.choice(nodes), rng.choice("WXYZ"))))
    return calls


def _measure_publish(family: str, k: int, num_nodes: int, seed: int) -> PublishPoint:
    """Build graph+index, apply one batch, time both publish paths."""
    rng = random.Random(seed)
    graph = random_dag(rng, num_nodes, extra_edges=num_nodes // 10)
    if family == "one":
        index = OneIndex.build(graph)
        maintainer = SplitMergeMaintainer(index)
    else:
        family_obj = AkIndexFamily.build(graph, k)
        maintainer = AkSplitMergeMaintainer(family_obj)
    guarded = GuardedMaintainer(maintainer, GuardConfig(policy="degrade"))
    touched = TouchedSet()
    guarded.track_touched(touched)
    kwargs = (
        {"index": guarded.index} if family == "one" else {"family": guarded.family}
    )
    prev = IndexSnapshot.capture(0, graph, **kwargs)
    guarded.apply_batch(_publish_workload(graph, seed + 1))

    full_seconds = min(
        _timed(lambda: IndexSnapshot.capture(1, graph, **kwargs))
        for _ in range(PUBLISH_REPEATS)
    )
    evolve_seconds = min(
        _timed(lambda: IndexSnapshot.evolve(prev, 1, graph, touched, **kwargs))
        for _ in range(PUBLISH_REPEATS)
    )
    evolved = IndexSnapshot.evolve(prev, 1, graph, touched, **kwargs)
    fresh = IndexSnapshot.capture(1, graph, **kwargs)
    obs = current_obs()
    obs.observe("bench.hotpath.full_capture_seconds", full_seconds)
    obs.observe("bench.hotpath.evolve_seconds", evolve_seconds)
    return PublishPoint(
        family=family,
        k=k if family == "ak" else 0,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        inodes=fresh.num_inodes,
        batch_ops=PUBLISH_BATCH_OPS,
        full_capture_ms=full_seconds * 1000.0,
        evolve_ms=evolve_seconds * 1000.0,
        fingerprints_equal=evolved.fingerprint() == fresh.fingerprint(),
    )


def _timed(func) -> float:
    started = time.perf_counter()
    func()
    return time.perf_counter() - started


def run_publish_latency(scale: ExperimentScale, seed: int = 61) -> list[PublishPoint]:
    """The full-capture vs evolve sweep over graph sizes, both families."""
    points: list[PublishPoint] = []
    sizes = graph_sizes_for(scale)
    for num_nodes in sizes:
        points.append(_measure_publish("one", 0, num_nodes, seed))
    # one A(k) point at the mid size: the evolve path differs (leaf
    # tokens, not inode ids), so it needs its own number
    k = min(scale.ks)
    points.append(_measure_publish("ak", k, sizes[len(sizes) // 2], seed))
    return points


def throughput_steps_for(scale: ExperimentScale) -> int:
    """Closed-loop steps per throughput run."""
    return max(120, scale.pairs_1index)


def run_throughput(scale: ExperimentScale, seed: int = 71) -> list[ThroughputPoint]:
    """The serve closed loop, incremental publish on vs off, per family."""
    points: list[ThroughputPoint] = []
    steps = throughput_steps_for(scale)
    for family in ("one", "ak"):
        for incremental in (True, False):
            graph = generate_xmark(scale.xmark).graph
            updates = MixedUpdateWorkload.prepare(graph, seed=seed)
            service = IndexService(
                graph,
                ServiceConfig(
                    family=family,
                    k=min(scale.ks),
                    batch_max_ops=32,
                    queue_capacity=128,
                    incremental_publish=incremental,
                ),
            )
            queries = QueryWorkload.generate(graph, count=24, seed=seed + 1)
            driver = ClosedLoopDriver(
                service,
                updates,
                queries,
                SessionMix(steps=steps, seed=seed + 2),
            )
            rep = driver.run()
            points.append(
                ThroughputPoint(
                    family=family,
                    incremental_publish=incremental,
                    steps=rep.steps,
                    updates_per_second=rep.updates_per_second,
                    queries_per_second=rep.queries_per_second,
                    commit_p50_ms=rep.commit_p50_ms,
                    commit_p95_ms=rep.commit_p95_ms,
                    versions=service.version,
                )
            )
            service.close()
    return points


def maintenance_pairs_for(scale: ExperimentScale) -> int:
    """Edge insert/delete pairs per maintenance measurement."""
    return max(20, scale.pairs_1index)


def run_maintenance(scale: ExperimentScale, seed: int = 81) -> list[MaintenancePoint]:
    """Raw split/merge ops/sec for both families on one XMark graph."""
    points: list[MaintenancePoint] = []
    num_pairs = maintenance_pairs_for(scale)
    for family in ("one", "ak"):
        graph = generate_xmark(scale.xmark).graph
        rng = random.Random(seed)
        pairs = candidate_edges(graph, rng, num_pairs, acyclic=False)
        if family == "one":
            maintainer = SplitMergeMaintainer(OneIndex.build(graph))
        else:
            maintainer = AkSplitMergeMaintainer(
                AkIndexFamily.build(graph, min(scale.ks))
            )
        started = time.perf_counter()
        for source, target in pairs:
            maintainer.insert_edge(source, target)
            maintainer.delete_edge(source, target)
        seconds = time.perf_counter() - started
        points.append(
            MaintenancePoint(family=family, ops=2 * len(pairs), seconds=seconds)
        )
        current_obs().observe(f"bench.hotpath.maintain_{family}_seconds", seconds)
    return points


def memory_tiers_for(scale: ExperimentScale) -> tuple[tuple[str, int], ...]:
    """``(tier_name, node_count)`` pairs for the memory A/B sweep.

    The ``large`` tier is the 500k–1M-node test the array-backed core
    exists for; smoke keeps CI fast with the medium tier only (whose
    gate already discriminates the two cores decisively).
    """
    if scale.name == "smoke":
        return (("medium", 20000),)
    if scale.name == "paper":
        return (("medium", 20000), ("large", 1000000))
    return (("medium", 20000), ("large", 500000))


def _measure_memory(tier: str, num_nodes: int, seed: int, trace: bool) -> MemoryPoint:
    """One slab-vs-dict A/B: build both cores' graph + 1-index, size them.

    Uses :func:`document_tree` rather than :func:`random_dag`: document
    corpora have an O(schema) 1-index, so the bytes measured here are
    the per-node storage both cores actually disagree about (adjacency,
    labels, class maps, extents) — not the partition-fragmentation
    noise of a uniformly random graph, whose 13k-inode index for 20k
    nodes is the same dict-of-dicts on either core.
    """
    rng = random.Random(seed)
    graph = document_tree(rng, num_nodes)
    repeats = MEMORY_BUILD_REPEATS if num_nodes <= 50000 else 1
    slab_build_seconds, index = _timed_best(lambda: OneIndex.build(graph), repeats)
    dict_graph = to_dict_graph(graph)
    dict_build_seconds, dict_index = _timed_best(
        lambda: build_dict_one_index(dict_graph), repeats
    )

    slab_fp = IndexSnapshot.capture(0, graph, index=index).fingerprint()
    dict_fp = IndexSnapshot.capture(0, dict_graph, index=dict_index).fingerprint()

    slab_peak = dict_peak = 0
    if trace:
        # a separate traced pass: tracemalloc skews timings, so the
        # timed builds above run untraced and these rebuilds exist only
        # to cross-check approx_bytes against real allocation peaks
        tracemalloc.start()
        OneIndex.build(graph)
        _, slab_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        build_dict_one_index(dict_graph)
        _, dict_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    point = MemoryPoint(
        tier=tier,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        slab_graph_bytes=graph.approx_bytes(),
        slab_index_bytes=index.approx_bytes(),
        dict_graph_bytes=dict_graph.approx_bytes(),
        dict_index_bytes=dict_index.approx_bytes(),
        slab_build_seconds=slab_build_seconds,
        dict_build_seconds=dict_build_seconds,
        tracemalloc_slab_peak_bytes=slab_peak,
        tracemalloc_dict_peak_bytes=dict_peak,
        fingerprints_equal=slab_fp == dict_fp,
    )
    obs = current_obs()
    obs.observe(f"bench.hotpath.memory_{tier}_slab_bytes", point.slab_total_bytes)
    obs.observe(f"bench.hotpath.memory_{tier}_dict_bytes", point.dict_total_bytes)
    return point


def _timed_best(func, repeats: int) -> tuple[float, object]:
    """Best-of-*repeats* wall time plus the result (builds are sized after).

    Collections are forced before and disabled during each run: the
    builds allocate heavily and a generational GC pass landing inside
    one core's timing but not the other's would swamp the build-ratio
    gate with noise.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = func()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = min(best, elapsed)
    return best, result


def run_memory(scale: ExperimentScale, seed: int = 91) -> list[MemoryPoint]:
    """The slab-vs-dict memory A/B over the scale's tiers (1-index)."""
    return [
        _measure_memory(tier, num_nodes, seed, trace=tier == "medium")
        for tier, num_nodes in memory_tiers_for(scale)
    ]


def run(scale: ExperimentScale) -> BenchHotpathResult:
    """All four measurements at the given scale."""
    return BenchHotpathResult(
        scale=scale.name,
        publish_latency=run_publish_latency(scale),
        throughput=run_throughput(scale),
        maintenance=run_maintenance(scale),
        memory=run_memory(scale),
    )


def report(result: BenchHotpathResult) -> str:
    """Render the three tables."""
    publish = format_table(
        ["family", "nodes", "edges", "inodes", "full ms", "evolve ms", "speedup", "identical"],
        [
            [
                p.family if p.family == "one" else f"ak(k={p.k})",
                p.nodes,
                p.edges,
                p.inodes,
                f"{p.full_capture_ms:.2f}",
                f"{p.evolve_ms:.2f}",
                f"{p.speedup:.1f}x",
                "yes" if p.fingerprints_equal else "NO",
            ]
            for p in result.publish_latency
        ],
    )
    throughput = format_table(
        ["family", "publish", "updates/s", "queries/s", "commit p50/p95 ms", "versions"],
        [
            [
                p.family,
                "evolve" if p.incremental_publish else "full",
                f"{p.updates_per_second:.0f}",
                f"{p.queries_per_second:.0f}",
                f"{p.commit_p50_ms:.2f}/{p.commit_p95_ms:.2f}",
                p.versions,
            ]
            for p in result.throughput
        ],
    )
    maintenance = format_table(
        ["family", "ops", "seconds", "ops/s"],
        [
            [p.family, p.ops, f"{p.seconds:.3f}", f"{p.ops_per_second:.0f}"]
            for p in result.maintenance
        ],
    )
    memory = format_table(
        [
            "tier",
            "nodes",
            "edges",
            "slab MB",
            "dict MB",
            "ratio",
            "slab build s",
            "dict build s",
            "identical",
        ],
        [
            [
                p.tier,
                p.nodes,
                p.edges,
                f"{p.slab_total_bytes / 1e6:.1f}",
                f"{p.dict_total_bytes / 1e6:.1f}",
                f"{p.memory_ratio:.1f}x",
                f"{p.slab_build_seconds:.2f}",
                f"{p.dict_build_seconds:.2f}",
                "yes" if p.fingerprints_equal else "NO",
            ]
            for p in result.memory
        ],
    )
    header = (
        f"publish batch = {PUBLISH_BATCH_OPS} ops; worst evolve speedup "
        f"{result.worst_publish_speedup:.1f}x, largest-graph speedup "
        f"{result.largest_graph_speedup:.1f}x, fingerprints "
        f"{'all identical' if result.all_fingerprints_equal else 'MISMATCHED'}; "
        f"slab core {result.memory_ratio_largest:.1f}x smaller than dict core "
        f"at the largest tier (cross-core fingerprints "
        f"{'identical' if result.memory_fingerprints_equal else 'MISMATCHED'})"
    )
    return f"{header}\n\n{publish}\n\n{throughput}\n\n{maintenance}\n\n{memory}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
