"""``adaptive``: a closed-loop run through the adaptive serving plane.

Not a paper figure — the adaptive plane (:mod:`repro.adaptive`) is this
reproduction's extension toward the ROADMAP north star — but it follows
the experiment protocol: one XMark dataset at the chosen scale, the
Section 7 mixed update workload, and a fixed session roster driven
closed-loop, exactly like the ``serve`` experiment.  Two things differ:

* the service is an :class:`~repro.adaptive.AdaptiveIndexService`, so
  queries are ladder-routed, results are cached with footprint-based
  invalidation, and the cost-based controller governs reconstruction;
* the query traffic is a :class:`~repro.workload.queries.ShiftingQueryPool`
  — a short child-only phase giving way to a deeper descendant-heavy
  phase — so the router's demand window actually moves mid-run.

Reported per family: the usual driver numbers plus where the traffic
routed, the result-cache effectiveness (hit rate, revalidations across
commits), the published ladder sizes, and what the controller did
(cost-based reconstructions, ladder retunes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive import AdaptiveConfig, AdaptiveIndexService
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.service import ServiceConfig
from repro.workload.queries import QueryWorkload, ShiftingQueryPool
from repro.workload.sessions import ClosedLoopDriver, DriverReport, SessionMix
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: session roster of the standard adaptive run (same as ``serve``)
QUERY_SESSIONS = 3
UPDATE_SESSIONS = 1


@dataclass
class AdaptiveRun:
    """One family's closed-loop run through the adaptive plane."""

    family: str
    report: DriverReport
    #: lifetime route-key tallies (level -> count, plus ``"safe"``)
    routed: dict
    cache: dict
    ladder_sizes: dict
    reconstructions: int
    retunes: int
    final_version: int
    final_inodes: int


@dataclass
class AdaptiveResult:
    """One :class:`AdaptiveRun` per served family."""

    runs: dict[str, AdaptiveRun]


def steps_for(scale: ExperimentScale) -> int:
    """Closed-loop steps for a scale (sized like the serve experiment)."""
    return max(200, 4 * scale.pairs_1index)


def shifting_pool(graph, k: int, steps: int, seed: int) -> ShiftingQueryPool:
    """The standard two-phase mix: short child-only, then deep + descendant.

    Phase budgets split the run's expected query draws in half, so the
    shift lands mid-run whatever the scale.
    """
    short = QueryWorkload.generate(
        graph, count=24, seed=seed, max_depth=max(2, k // 2), descendant_fraction=0.0
    )
    deep = QueryWorkload.generate(
        graph, count=24, seed=seed + 1, max_depth=max(3, k), descendant_fraction=0.35
    )
    roster = QUERY_SESSIONS + UPDATE_SESSIONS
    budget = max(1, (steps * QUERY_SESSIONS) // (2 * roster))
    return ShiftingQueryPool([(budget, short), (budget, deep)])


def run(
    scale: ExperimentScale,
    batch_max_ops: int = 32,
    queue_capacity: int = 128,
    seed: int = 29,
) -> AdaptiveResult:
    """Run the closed-loop adaptive session for both families."""
    runs: dict[str, AdaptiveRun] = {}
    steps = steps_for(scale)
    k = max(scale.ks)
    for family in ("ak", "one"):
        graph = generate_xmark(scale.xmark).graph
        updates = MixedUpdateWorkload.prepare(graph, seed=seed)
        pool = shifting_pool(graph, k, steps, seed + 1)
        service = AdaptiveIndexService(
            graph,
            ServiceConfig(
                family=family,
                k=k,
                batch_max_ops=batch_max_ops,
                queue_capacity=queue_capacity,
                guard=scale.guard if scale.guard is not None else ServiceConfig().guard,
            ),
            AdaptiveConfig(),
        )
        driver = ClosedLoopDriver(
            service,
            updates,
            pool,
            SessionMix(
                steps=steps,
                query_sessions=QUERY_SESSIONS,
                update_sessions=UPDATE_SESSIONS,
                seed=seed + 2,
            ),
        )
        report = driver.run()
        runs[family] = AdaptiveRun(
            family=family,
            report=report,
            routed=dict(service.router.lifetime_routed),
            cache=service.cache.stats.as_dict(),
            ladder_sizes=service.ladder_sizes(),
            reconstructions=service.controller.policy.reconstructions,
            retunes=service.controller.retunes,
            final_version=service.version,
            final_inodes=service.snapshot.num_inodes,
        )
        service.close()
    return AdaptiveResult(runs=runs)


def _routed_summary(routed: dict) -> str:
    parts = [f"{key}:{count}" for key, count in sorted(routed.items(), key=str)]
    return " ".join(parts) if parts else "-"


def _ladder_summary(sizes: dict) -> str:
    return " ".join(f"A({j})={n}" for j, n in sorted(sizes.items()))


def report(result: AdaptiveResult) -> str:
    """Render the adaptive serving table plus per-family detail lines."""
    headers = [
        "family",
        "queries/s",
        "query p50/p95 ms",
        "commit p50/p95 ms",
        "cache hit rate",
        "revalidated",
        "recons",
        "retunes",
        "versions",
        "inodes",
    ]
    rows = []
    details = []
    for family, run_ in result.runs.items():
        rep = run_.report
        rows.append(
            [
                family,
                f"{rep.queries_per_second:.0f}",
                f"{rep.query_p50_ms:.2f}/{rep.query_p95_ms:.2f}",
                f"{rep.commit_p50_ms:.2f}/{rep.commit_p95_ms:.2f}",
                f"{run_.cache['hit_rate']:.2f}",
                run_.cache["revalidated"],
                run_.reconstructions,
                run_.retunes,
                run_.final_version,
                run_.final_inodes,
            ]
        )
        details.append(
            f"{family}: routed {_routed_summary(run_.routed)}; "
            f"ladder {_ladder_summary(run_.ladder_sizes)}"
        )
    return format_table(headers, rows) + "\n\n" + "\n".join(details)


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
