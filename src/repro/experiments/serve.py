"""``serve``: a seeded closed-loop serving run per index family.

Not a paper figure — the serving layer is this reproduction's extension
toward the ROADMAP north star — but it follows the experiment protocol:
one XMark dataset at the chosen scale, the Section 7 mixed update
workload, a :class:`~repro.workload.queries.QueryWorkload` drawn from
the live label paths, and a fixed session roster (3 query : 1 update)
driven closed-loop through an :class:`~repro.service.IndexService`.

Reported per family (1-index and A(k)): sustained queries/sec, commit
latency p50/p95, coalescing savings, and the staleness profile (queries
answered per published index version).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.service import IndexService, ServiceConfig
from repro.workload.queries import QueryWorkload
from repro.workload.sessions import ClosedLoopDriver, DriverReport, SessionMix
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: session roster of the standard serve run
QUERY_SESSIONS = 3
UPDATE_SESSIONS = 1


@dataclass
class ServeResult:
    """One driver report per served family."""

    reports: dict[str, DriverReport]
    final_versions: dict[str, int]
    final_inodes: dict[str, int]


def steps_for(scale: ExperimentScale) -> int:
    """Closed-loop steps for a scale (sized off the 1-index pair budget)."""
    return max(200, 4 * scale.pairs_1index)


def run(
    scale: ExperimentScale,
    batch_max_ops: int = 32,
    queue_capacity: int = 128,
    seed: int = 23,
) -> ServeResult:
    """Run the standard closed-loop serve session for both families."""
    reports: dict[str, DriverReport] = {}
    final_versions: dict[str, int] = {}
    final_inodes: dict[str, int] = {}
    for family in ("one", "ak"):
        graph = generate_xmark(scale.xmark).graph
        updates = MixedUpdateWorkload.prepare(graph, seed=seed)
        service = IndexService(
            graph,
            ServiceConfig(
                family=family,
                k=min(scale.ks),
                batch_max_ops=batch_max_ops,
                queue_capacity=queue_capacity,
                guard=scale.guard if scale.guard is not None else ServiceConfig().guard,
            ),
        )
        queries = QueryWorkload.generate(graph, count=48, seed=seed + 1)
        driver = ClosedLoopDriver(
            service,
            updates,
            queries,
            SessionMix(
                steps=steps_for(scale),
                query_sessions=QUERY_SESSIONS,
                update_sessions=UPDATE_SESSIONS,
                seed=seed + 2,
            ),
        )
        reports[family] = driver.run()
        final_versions[family] = service.version
        final_inodes[family] = service.snapshot.num_inodes
        service.close()
    return ServeResult(
        reports=reports, final_versions=final_versions, final_inodes=final_inodes
    )


def report(result: ServeResult) -> str:
    """Render the serve table."""
    headers = [
        "family",
        "queries/s",
        "updates/s",
        "query p50/p95 ms",
        "commit p50/p95 ms",
        "batches",
        "coalesced",
        "stale mean/max",
        "versions",
        "inodes",
    ]
    rows = []
    for family, rep in result.reports.items():
        rows.append(
            [
                family,
                f"{rep.queries_per_second:.0f}",
                f"{rep.updates_per_second:.0f}",
                f"{rep.query_p50_ms:.2f}/{rep.query_p95_ms:.2f}",
                f"{rep.commit_p50_ms:.2f}/{rep.commit_p95_ms:.2f}",
                rep.batches,
                rep.coalesced_away,
                f"{rep.mean_queries_per_version:.1f}/{rep.max_queries_per_version}",
                result.final_versions[family],
                result.final_inodes[family],
            ]
        )
    return format_table(headers, rows)


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
