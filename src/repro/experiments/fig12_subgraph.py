"""Figure 12: 1-index quality over a sequence of subgraph additions.

Protocol (Section 7.1): extract ~500 auction subtrees from XMark (no
IDREF traversal, ~50 dnodes each), delete them all, rebuild the index,
then re-add them one at a time with three alternatives:

1. ``add_1_index_subgraph`` (Figure 6) driven by split/merge — keeps
   quality "at 0 % almost all the time";
2. the same skeleton but with *propagate* inserting the edges — quality
   keeps growing and is sensitive to the data's structure;
3. full reconstruction after every addition — always minimum, but
   "more than 100 times slower".

The reproduction reports the quality series of (1) and (2) and the mean
per-addition times of all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_quality_series, format_table
from repro.experiments.runner import SeriesPoint
from repro.graph.datagraph import DataGraph
from repro.index.oneindex import OneIndex
from repro.maintenance.propagate import PropagateMaintainer
from repro.maintenance.reconstruction import reconstruct_from_scratch
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.metrics.quality import minimum_1index_size_of
from repro.metrics.timing import Stopwatch
from repro.workload.updates import (
    ExtractedSubgraph,
    average_size,
    extract_subgraphs,
    remove_subgraph_raw,
)
from repro.workload.xmark import generate_xmark

#: label of the subtree roots the paper extracts ("auction" dnodes)
SUBTREE_LABEL = "open_auction"

ALTERNATIVES = ("split/merge", "propagate", "reconstruction")


@dataclass
class SubgraphRun:
    """One alternative's quality series and timing."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)
    additions: int = 0
    total_seconds: float = 0.0

    @property
    def mean_ms_per_subgraph(self) -> float:
        """Mean wall-clock per subgraph addition."""
        if self.additions == 0:
            return 0.0
        return self.total_seconds / self.additions * 1000

    @property
    def max_quality(self) -> float:
        """Worst sampled quality."""
        if not self.points:
            return 0.0
        return max(p.quality for p in self.points)


@dataclass
class Fig12Result:
    """All three alternatives plus the workload description."""

    num_subgraphs: int
    mean_subgraph_size: float
    runs: dict[str, SubgraphRun]


def _prepared_graph(scale: ExperimentScale) -> tuple[DataGraph, list[ExtractedSubgraph]]:
    """An XMark graph with the subtrees already cut out."""
    dataset = generate_xmark(scale.xmark_at(1.0))
    extracted = extract_subgraphs(
        dataset.graph, SUBTREE_LABEL, scale.num_subgraphs, seed=23
    )
    for item in extracted:
        remove_subgraph_raw(dataset.graph, item)
    return dataset.graph, extracted


def run(scale: ExperimentScale) -> Fig12Result:
    """Run the Figure 12 experiment at the given scale."""
    runs: dict[str, SubgraphRun] = {}
    sample_every = max(1, scale.num_subgraphs // 10)
    extracted_reference: list[ExtractedSubgraph] | None = None

    for alternative in ALTERNATIVES:
        graph, extracted = _prepared_graph(scale)
        if extracted_reference is None:
            extracted_reference = extracted
        index = OneIndex.build(graph)
        run_record = SubgraphRun(name=alternative)
        watch = Stopwatch()
        maintainer: SplitMergeMaintainer | PropagateMaintainer | None
        if alternative == "split/merge":
            maintainer = SplitMergeMaintainer(index)
        elif alternative == "propagate":
            maintainer = PropagateMaintainer(index)
        else:
            maintainer = None

        for number, item in enumerate(extracted, 1):
            with watch:
                if maintainer is not None:
                    maintainer.add_subgraph(item.subgraph, item.root, item.cross_edges)
                else:
                    mapping = graph.add_subgraph(item.subgraph)
                    for a, b, kind in item.cross_edges:
                        graph.add_edge(mapping.get(a, a), mapping.get(b, b), kind)
                    reconstruct_from_scratch(index)
            run_record.additions += 1
            if number % sample_every == 0:
                run_record.points.append(
                    SeriesPoint(
                        update=number,
                        index_size=index.num_inodes,
                        minimum_size=minimum_1index_size_of(graph),
                    )
                )
        run_record.total_seconds = watch.total_seconds
        runs[alternative] = run_record

    assert extracted_reference is not None
    return Fig12Result(
        num_subgraphs=len(extracted_reference),
        mean_subgraph_size=average_size(extracted_reference),
        runs=runs,
    )


def report(result: Fig12Result) -> str:
    """Render the quality series and the timing table."""
    series = {
        name: run_record.points
        for name, run_record in result.runs.items()
        if name != "reconstruction"  # always 0% by construction
    }
    timing = format_table(
        ["alternative", "ms/subgraph", "max quality"],
        [
            (name, f"{r.mean_ms_per_subgraph:.1f}", f"{r.max_quality * 100:.2f}%")
            for name, r in result.runs.items()
        ],
    )
    return "\n".join(
        [
            "Figure 12 — 1-index quality during subgraph additions (XMark)",
            f"{result.num_subgraphs} subgraphs, "
            f"average size {result.mean_subgraph_size:.1f} dnodes",
            "",
            format_quality_series("quality after N additions", series),
            "",
            timing,
        ]
    )


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
