"""``recover``: crash-recover a durable store and time it against rebuild.

The payoff experiment for :mod:`repro.store`: reopening a store is a
checkpoint load plus a short WAL replay, where the alternative the paper
measures throughout (Table 1's reconstruction events) is a full
from-scratch ``build`` over the recovered graph.

With ``--store-dir`` pointing at a directory ``persist`` populated, the
experiment reopens those stores.  Otherwise it manufactures a *crashed*
store per family first: commit the mixed workload durably, checkpoint at
~90 % of the run, keep committing the tail, then drop the service
without a final checkpoint — recovery must replay the tail.

Reported per family: what was replayed, the full recovery wall-clock
(including the ``valid``-level invariant post-check), and the wall-clock
of rebuilding the same index from the recovered graph.  The CI-gated
A/B (``bench-store`` / ``benchmarks/bench_store.py``) asserts the
ordering; this experiment reports it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.index.akindex import AkIndexFamily
from repro.index.oneindex import OneIndex
from repro.service import ServiceConfig, Update
from repro.store import DurableIndexService, StoreConfig, latest_checkpoint, recover
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: fraction of the workload committed before the (only) checkpoint
CHECKPOINT_AT = 0.9


@dataclass
class FamilyRecoverStats:
    """One family's recovery, timed."""

    checkpoint_lsn: int
    replayed_records: int
    replayed_ops: int
    version: int
    recover_seconds: float
    rebuild_seconds: float

    @property
    def speedup(self) -> float:
        """Rebuild / recover wall-clock."""
        if self.recover_seconds <= 0:
            return float("inf")
        return self.rebuild_seconds / self.recover_seconds


@dataclass
class RecoverResult:
    """Per-family recovery statistics."""

    stats: dict[str, FamilyRecoverStats] = field(default_factory=dict)
    reused: bool = False  # stores came from a previous persist run


def pairs_for(scale: ExperimentScale) -> int:
    """Insert/delete pairs in a manufactured crashed store."""
    return max(16, scale.pairs_1index // 2)


def make_crashed_store(
    scale: ExperimentScale,
    family: str,
    directory: str,
    batch_max_ops: int = 8,
    seed: int = 53,
) -> None:
    """Commit the workload durably, checkpoint at ~90 %, crash at the end."""
    graph = generate_xmark(scale.xmark).graph
    updates = MixedUpdateWorkload.prepare(graph, seed=seed)
    service = DurableIndexService(
        graph,
        directory,
        config=ServiceConfig(
            family=family,
            k=min(scale.ks),
            batch_max_ops=batch_max_ops,
            queue_capacity=0,
        ),
        store_config=StoreConfig(checkpoint_every_records=0),
    )
    operations = list(updates.steps(pairs_for(scale)))
    checkpoint_after = int(len(operations) * CHECKPOINT_AT)
    for step, (op, source, target) in enumerate(operations):
        if op == "insert":
            service.submit_nowait(Update.insert_edge(source, target, EdgeKind.IDREF))
        else:
            service.submit_nowait(Update.delete_edge(source, target))
        if service.queue_depth() >= batch_max_ops:
            service.flush()
        if step == checkpoint_after:
            service.drain()
            service.checkpoint()
    service.drain()
    # "crash": no final checkpoint — recovery must replay the tail
    service.wal.close()


def run(scale: ExperimentScale, seed: int = 53) -> RecoverResult:
    """Recover one store per family, timing recovery vs rebuild."""
    result = RecoverResult()
    base_dir = scale.store_dir
    temporary = base_dir is None
    if temporary:
        base_dir = tempfile.mkdtemp(prefix="repro-recover-")
    try:
        for family in ("one", "ak"):
            family_dir = os.path.join(base_dir, family)
            reusable = (
                os.path.isdir(family_dir) and latest_checkpoint(family_dir) is not None
            )
            if not reusable:
                shutil.rmtree(family_dir, ignore_errors=True)
                os.makedirs(family_dir, exist_ok=True)
                make_crashed_store(scale, family, family_dir, seed=seed)
            else:
                result.reused = True

            started = time.perf_counter()
            recovered = recover(family_dir)
            recover_seconds = time.perf_counter() - started

            started = time.perf_counter()
            if recovered.kind == "one":
                OneIndex.build(recovered.graph)
            else:
                AkIndexFamily.build(recovered.graph, recovered.k)
            rebuild_seconds = time.perf_counter() - started

            result.stats[family] = FamilyRecoverStats(
                checkpoint_lsn=recovered.checkpoint_lsn,
                replayed_records=recovered.replayed_records,
                replayed_ops=recovered.replayed_ops,
                version=recovered.version,
                recover_seconds=recover_seconds,
                rebuild_seconds=rebuild_seconds,
            )
    finally:
        if temporary:
            shutil.rmtree(base_dir, ignore_errors=True)
    return result


def report(result: RecoverResult) -> str:
    """Render the recovery table."""
    headers = [
        "family",
        "ckpt lsn",
        "replayed recs/ops",
        "version",
        "recover ms",
        "rebuild ms",
        "speedup",
    ]
    rows = []
    for family, stats in result.stats.items():
        rows.append(
            [
                family,
                stats.checkpoint_lsn,
                f"{stats.replayed_records}/{stats.replayed_ops}",
                stats.version,
                f"{stats.recover_seconds * 1000:.1f}",
                f"{stats.rebuild_seconds * 1000:.1f}",
                f"{stats.speedup:.1f}x",
            ]
        )
    table = format_table(headers, rows)
    source = (
        "reopened stores from --store-dir"
        if result.reused
        else "manufactured crashed stores (checkpoint at 90%, torn tail replayed)"
    )
    note = "recover ms includes the valid-level invariant post-check"
    return f"{table}\n\n{source}; {note}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
