"""Figure 13: A(k)-index quality of the *simple* algorithm (no recon).

The simple baseline only ever splits, so without reconstructions the
A(k)-index "blows up rapidly, especially for small k's" — small k means
coarse inodes, and every nearby update shatters them further from the
minimum.  Split/merge holds 0 % by Theorem 2, so the paper plots only the
simple algorithm; we do the same (and assert split/merge's zero in the
test-suite rather than plotting a flat line).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.runner import MixedRunResult, run_mixed_updates
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, blocks_of
from repro.maintenance.ak_simple import SimpleAkMaintainer
from repro.metrics.quality import minimum_ak_size_of
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

WORKLOAD_SEED = 43


@dataclass
class Fig13Result:
    """One quality series per k."""

    dataset: str
    runs: dict[int, MixedRunResult]


def run(scale: ExperimentScale) -> Fig13Result:
    """Run the Figure 13 experiment: simple algorithm, k in scale.ks."""
    runs: dict[int, MixedRunResult] = {}
    for k in scale.ks:
        graph = generate_xmark(scale.xmark_at(1.0)).graph
        workload = MixedUpdateWorkload.prepare(graph, seed=WORKLOAD_SEED)
        index = StructuralIndex.from_partition(
            graph, blocks_of(ak_class_maps(graph, k)[k])
        )
        maintainer = SimpleAkMaintainer(index, k, memoize=scale.simple_ak_memoize)
        runs[k] = run_mixed_updates(
            name=f"simple A({k})",
            maintainer=maintainer,
            workload=workload,
            num_pairs=scale.pairs_ak,
            sample_every=scale.sample_every,
            minimum_size_fn=lambda g, k=k: minimum_ak_size_of(g, k),
        )
    return Fig13Result(dataset="XMark(1)", runs=runs)


def report(result: Fig13Result) -> str:
    """Render one quality column per k."""
    ks = sorted(result.runs)
    length = min(len(result.runs[k].points) for k in ks) if ks else 0
    rows = []
    for i in range(length):
        update = result.runs[ks[0]].points[i].update
        rows.append(
            [update]
            + [f"{result.runs[k].points[i].quality * 100:.2f}%" for k in ks]
        )
    table = format_table(
        ["updates"] + [f"A({k})" for k in ks],
        rows,
    )
    final = format_table(
        ["k", "final quality", "splits"],
        [
            (
                k,
                f"{result.runs[k].final_quality * 100:.2f}%",
                result.runs[k].total_splits,
            )
            for k in ks
        ],
    )
    return "\n".join(
        [
            f"Figure 13 — A(k) quality of the simple algorithm ({result.dataset}, "
            "no reconstructions)",
            table,
            "",
            final,
        ]
    )


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
