"""``replicate``: WAL-ship a primary to followers across a hostile wire.

The headline robustness experiment for :mod:`repro.replication`: one
durable primary per family commits the mixed workload; two followers
bootstrap from its checkpoint **mid-run** and then tail the WAL through
links whose injector fires one of the five
:data:`~repro.resilience.faults.REPLICATION_FAULTS` on every third
replication round-trip (drop, truncate, corrupt, duplicate, stall — in
rotation).

The claim under test is the tentpole invariant: however hostile the
wire, once the faults clear every follower converges to a
**byte-identical** snapshot fingerprint, at the same version, at the
primary's log end.  The reported duplicates/retries/fault tallies show
the machinery actually worked for it — a run where nothing was dropped,
torn or re-delivered would prove nothing.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.graph.datagraph import EdgeKind
from repro.replication import FollowerIndexService, Primary, ReplicationLink
from repro.resilience.faults import REPLICATION_FAULTS, FaultInjector
from repro.service import ServiceConfig, Update
from repro.store import DurableIndexService, StoreConfig
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: read replicas per family
NUM_FOLLOWERS = 2

#: fraction of the workload committed before the followers bootstrap —
#: they must catch up on the remaining tail through the faulty links
BOOTSTRAP_AT = 0.6

#: every N-th replication round-trip gets mangled (rotating through all
#: five fault kinds)
FAULT_EVERY = 2

#: records per fetch — kept small so even the smoke tail takes several
#: round-trips and actually meets the injector
FETCH_RECORDS = 2


@dataclass
class FollowerReplicateStats:
    """One follower's journey from bootstrap to convergence."""

    bootstrap_lsn: int
    applied_lsn: int
    records_applied: int
    duplicates_skipped: int
    retries: int
    faults: dict[str, int]
    converged: bool


@dataclass
class FamilyReplicateStats:
    """One family's primary + followers, after convergence."""

    wal_last_lsn: int
    primary_version: int
    records_shipped: int
    followers: list[FollowerReplicateStats] = field(default_factory=list)

    @property
    def all_converged(self) -> bool:
        return all(f.converged for f in self.followers)


@dataclass
class ReplicateResult:
    """Per-family replication statistics."""

    stats: dict[str, FamilyReplicateStats] = field(default_factory=dict)

    @property
    def all_converged(self) -> bool:
        return all(s.all_converged for s in self.stats.values())


def pairs_for(scale: ExperimentScale) -> int:
    """Insert/delete pairs committed by the primary."""
    return max(16, scale.pairs_1index // 2)


def _run_family(
    scale: ExperimentScale, family: str, directory: str, seed: int
) -> FamilyReplicateStats:
    """One primary, two fault-ridden followers, one convergence check."""
    batch_max_ops = 8
    graph = generate_xmark(scale.xmark).graph
    updates = MixedUpdateWorkload.prepare(graph, seed=seed)
    service = DurableIndexService(
        graph,
        directory,
        config=ServiceConfig(
            family=family,
            k=min(scale.ks),
            batch_max_ops=batch_max_ops,
            queue_capacity=0,
        ),
        store_config=StoreConfig(checkpoint_every_records=0),
    )
    feed = Primary(service=service)
    followers: list[FollowerIndexService] = []
    try:
        operations = list(updates.steps(pairs_for(scale)))
        bootstrap_after = int(len(operations) * BOOTSTRAP_AT)
        for step, (op, source, target) in enumerate(operations):
            if op == "insert":
                service.submit_nowait(Update.insert_edge(source, target, EdgeKind.IDREF))
            else:
                service.submit_nowait(Update.delete_edge(source, target))
            if service.queue_depth() >= batch_max_ops:
                service.flush()
            if step == bootstrap_after:
                # mid-run bootstrap: checkpoint now, so the followers
                # start behind and must tail the rest through the faults
                service.drain()
                service.checkpoint()
                for position in range(NUM_FOLLOWERS):
                    link = ReplicationLink(
                        feed,
                        fault_injector=FaultInjector(
                            at_replication=FAULT_EVERY,
                            replication_fault=REPLICATION_FAULTS,
                            rearm=True,
                        ),
                        seed=seed + position,
                        sleep=lambda _seconds: None,  # full backoff schedule, zero wall-clock
                    )
                    followers.append(FollowerIndexService.bootstrap(link))
        service.drain()

        bootstrap_lsns = [f.applied_lsn for f in followers]
        for follower in followers:
            follower.catch_up(max_records=FETCH_RECORDS, deadline_seconds=60.0)

        stats = FamilyReplicateStats(
            wal_last_lsn=service.wal.last_lsn,
            primary_version=service.version,
            records_shipped=feed.records_shipped,
        )
        primary_fingerprint = service.snapshot.fingerprint()
        for follower, bootstrap_lsn in zip(followers, bootstrap_lsns):
            converged = (
                follower.applied_lsn == service.wal.last_lsn
                and follower.version == service.version
                and follower.snapshot.fingerprint() == primary_fingerprint
            )
            stats.followers.append(
                FollowerReplicateStats(
                    bootstrap_lsn=bootstrap_lsn,
                    applied_lsn=follower.applied_lsn,
                    records_applied=follower.records_applied,
                    duplicates_skipped=follower.duplicates_skipped,
                    retries=follower.link.retries,
                    faults=dict(follower.link.faults_applied),
                    converged=converged,
                )
            )
        return stats
    finally:
        for follower in followers:
            follower.close()
        service.close()


def run(scale: ExperimentScale, seed: int = 97) -> ReplicateResult:
    """Replicate one primary per family through fault-injected links."""
    result = ReplicateResult()
    base_dir = tempfile.mkdtemp(prefix="repro-replicate-")
    try:
        for family in ("one", "ak"):
            family_dir = os.path.join(base_dir, family)
            os.makedirs(family_dir, exist_ok=True)
            result.stats[family] = _run_family(scale, family, family_dir, seed)
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    return result


def report(result: ReplicateResult) -> str:
    """Render the per-follower convergence table."""
    headers = [
        "family",
        "wal lsn",
        "follower",
        "bootstrap lsn",
        "applied",
        "dups",
        "retries",
        "faults",
        "converged",
    ]
    rows = []
    for family, stats in result.stats.items():
        for position, follower in enumerate(stats.followers):
            faults = ",".join(
                f"{kind}:{count}" for kind, count in sorted(follower.faults.items())
            )
            rows.append(
                [
                    family,
                    stats.wal_last_lsn,
                    position,
                    follower.bootstrap_lsn,
                    follower.records_applied,
                    follower.duplicates_skipped,
                    follower.retries,
                    faults or "-",
                    "yes" if follower.converged else "NO",
                ]
            )
    table = format_table(headers, rows)
    note = (
        f"every {FAULT_EVERY}nd round-trip mangled (rotating "
        f"{'/'.join(REPLICATION_FAULTS)}); converged = same applied LSN, "
        "same version, byte-identical snapshot fingerprint as the primary"
    )
    verdict = (
        "all followers converged"
        if result.all_converged
        else "CONVERGENCE FAILED"
    )
    return f"{table}\n\n{note}; {verdict}"


def main(scale: ExperimentScale) -> str:
    """CLI entry point."""
    return report(run(scale))
