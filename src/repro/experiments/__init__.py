"""The experiment harness: one module per paper figure/table.

Run from the command line::

    python -m repro.experiments --scale small fig9 tab3

or programmatically::

    from repro.experiments import fig09_imdb_quality, config
    result = fig09_imdb_quality.run(config.SMALL)
"""

from repro.experiments import (
    ablation_worstcase,
    adaptive,
    bench_adaptive,
    bench_corpus,
    bench_hotpath,
    bench_replicate,
    bench_serve,
    bench_store,
    corpus,
    fig09_imdb_quality,
    fig10_xmark_quality,
    fig11_running_times,
    fig12_subgraph,
    fig13_ak_quality,
    persist,
    recover,
    replicate,
    serve,
    tab1_reconstruction_frequency,
    tab2_ak_times,
    tab3_storage,
)
from repro.experiments.config import PAPER, SCALES, SMALL, SMOKE, ExperimentScale, scale_by_name

#: registry used by the CLI and the benchmarks: id -> module with main()
EXPERIMENTS = {
    "fig9": fig09_imdb_quality,
    "fig10": fig10_xmark_quality,
    "fig11": fig11_running_times,
    "fig12": fig12_subgraph,
    "fig13": fig13_ak_quality,
    "tab1": tab1_reconstruction_frequency,
    "tab2": tab2_ak_times,
    "tab3": tab3_storage,
    "ablation": ablation_worstcase,
    "serve": serve,
    "bench-serve": bench_serve,
    "bench-hotpath": bench_hotpath,
    "persist": persist,
    "recover": recover,
    "bench-store": bench_store,
    "replicate": replicate,
    "bench-replicate": bench_replicate,
    "corpus": corpus,
    "bench-corpus": bench_corpus,
    "adaptive": adaptive,
    "bench-adaptive": bench_adaptive,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "scale_by_name",
    "SMOKE",
    "SMALL",
    "PAPER",
    "SCALES",
]
