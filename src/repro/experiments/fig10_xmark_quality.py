"""Figure 10: 1-index quality over mixed edge updates on XMark(c).

Paper's findings (Section 7.1), one panel per cyclicity c in
{1, 0.5, 0.2, 0}:

* split/merge stays essentially at zero on every panel (< 0.5 %) —
  XMark's IDREF edges are spread uniformly, so the minimal index the
  algorithm maintains *is* the minimum;
* propagate degrades linearly everywhere, and faster as cyclicity drops:
  XMark(1) is so irregular (minimum index > 40 % of the data graph) that
  there is little room to be worse than minimum, while regular XMark(0)
  "gets worse very quickly".

The reproduction checks the same ordering of degradation rates.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.mixed_1index import (
    DatasetComparison,
    run_dataset_comparison,
    xmark_factory,
)
from repro.experiments.reporting import format_quality_series, format_run_summary


def run(scale: ExperimentScale) -> dict[float, DatasetComparison]:
    """Run the Figure 10 experiment: one comparison per cyclicity."""
    return {
        cyclicity: run_dataset_comparison(
            f"XMark({cyclicity:g})", xmark_factory(scale, cyclicity), scale
        )
        for cyclicity in scale.cyclicities
    }


def report(panels: dict[float, DatasetComparison]) -> str:
    """Render all panels."""
    lines = [
        "Figure 10 — 1-index quality over mixed edge insertions and deletions (XMark)"
    ]
    for cyclicity, comparison in sorted(panels.items(), reverse=True):
        series = {name: r.points for name, r in comparison.results.items()}
        lines.append("")
        lines.append(
            format_quality_series(
                f"XMark({cyclicity:g}) — {comparison.num_dnodes} dnodes, "
                f"initial minimum index {comparison.initial_index_size}",
                series,
            )
        )
        lines.extend(format_run_summary(r) for r in comparison.results.values())
    return "\n".join(lines)


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
