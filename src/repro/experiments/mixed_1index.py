"""Shared setup for the 1-index mixed-update experiments (Figs 9–11).

Both maintainers must see the *identical* update sequence, so each gets
its own copy of the dataset (same seeds → same oids) and its own
:class:`MixedUpdateWorkload` (same seed → same pool and same random
draws).  The paper's protocol: pool 20 % of the IDREF edges, alternate
insert/delete, 5 % reconstruction trigger for *both* algorithms (on
cyclic data split/merge only guarantees minimality, so it gets the same
safety net — which in practice never fires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.datagraph import DataGraph
from repro.index.oneindex import OneIndex
from repro.maintenance.propagate import PropagateMaintainer
from repro.maintenance.reconstruction import (
    ReconstructionPolicy,
    reconstruct_via_index_graph,
)
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.metrics.quality import minimum_1index_size_of
from repro.resilience import GuardedMaintainer
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import MixedRunResult, run_mixed_updates
from repro.workload.imdb import generate_imdb
from repro.workload.updates import MixedUpdateWorkload
from repro.workload.xmark import generate_xmark

#: workload seed shared by every 1-index experiment
WORKLOAD_SEED = 71

ALGORITHMS = ("split/merge", "propagate")


@dataclass
class DatasetComparison:
    """Results of both algorithms on one dataset."""

    dataset: str
    num_dnodes: int
    num_dedges: int
    initial_index_size: int
    results: dict[str, MixedRunResult]


def _make_maintainer(algorithm: str, index: OneIndex):
    if algorithm == "split/merge":
        return SplitMergeMaintainer(index)
    if algorithm == "propagate":
        return PropagateMaintainer(index)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def run_dataset_comparison(
    dataset: str,
    graph_factory: Callable[[], DataGraph],
    scale: ExperimentScale,
) -> DatasetComparison:
    """Run split/merge and propagate over the same mixed workload."""
    results: dict[str, MixedRunResult] = {}
    shape: tuple[int, int, int] | None = None
    for algorithm in ALGORITHMS:
        graph = graph_factory()
        workload = MixedUpdateWorkload.prepare(graph, seed=WORKLOAD_SEED)
        index = OneIndex.build(graph)
        maintainer = _make_maintainer(algorithm, index)
        if scale.guard is not None:
            # Guarded runs keep the identical update sequence; the guard's
            # transaction/check overhead lands in the same per-update
            # stopwatch, so Figure 11's table reports it directly.
            maintainer = GuardedMaintainer(maintainer, scale.guard)
        policy = ReconstructionPolicy(threshold=scale.reconstruct_threshold)
        results[algorithm] = run_mixed_updates(
            name=f"{dataset}/{algorithm}",
            maintainer=maintainer,
            workload=workload,
            num_pairs=scale.pairs_1index,
            sample_every=scale.sample_every,
            minimum_size_fn=minimum_1index_size_of,
            policy=policy,
            reconstruct=lambda idx=index: reconstruct_via_index_graph(idx),
        )
        if shape is None:
            shape = (graph.num_nodes, graph.num_edges, index.num_inodes)
    assert shape is not None
    return DatasetComparison(
        dataset=dataset,
        num_dnodes=shape[0],
        num_dedges=shape[1],
        initial_index_size=shape[2],
        results=results,
    )


def imdb_factory(scale: ExperimentScale) -> Callable[[], DataGraph]:
    """A fresh IMDB graph per call (identical across calls)."""
    return lambda: generate_imdb(scale.imdb).graph


def xmark_factory(scale: ExperimentScale, cyclicity: float) -> Callable[[], DataGraph]:
    """A fresh XMark(c) graph per call (identical across calls)."""
    return lambda: generate_xmark(scale.xmark_at(cyclicity)).graph
