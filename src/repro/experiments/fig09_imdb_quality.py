"""Figure 9: 1-index quality over mixed edge updates on IMDB.

Paper's findings (Section 7.1):

* *propagate* degrades almost linearly — ~5 % after the first ~500
  updates (matching [8]) — so the 5 % trigger reconstructs about once
  every 500 updates;
* *split/merge* keeps quality low for the whole run, never exceeding 3 %
  — the minimal 1-index it maintains is very close to the minimum even
  though IMDB's clustered references make minimal ≠ minimum possible
  (Figure 4 situations).

The reproduction asserts the same *shape*: propagate's max quality well
above split/merge's, and propagate reconstructing while split/merge
(almost) never does.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.mixed_1index import (
    DatasetComparison,
    imdb_factory,
    run_dataset_comparison,
)
from repro.experiments.reporting import format_quality_series, format_run_summary


def run(scale: ExperimentScale) -> DatasetComparison:
    """Run the Figure 9 experiment at the given scale."""
    return run_dataset_comparison("IMDB", imdb_factory(scale), scale)


def report(comparison: DatasetComparison) -> str:
    """Render the experiment in the paper's terms."""
    series = {name: result.points for name, result in comparison.results.items()}
    lines = [
        "Figure 9 — 1-index quality over mixed edge insertions and deletions (IMDB)",
        f"dataset: {comparison.num_dnodes} dnodes, {comparison.num_dedges} dedges, "
        f"initial minimum 1-index: {comparison.initial_index_size} inodes",
        "",
        format_quality_series("quality = #inodes / #minimum - 1", series),
        "",
    ]
    lines.extend(format_run_summary(r) for r in comparison.results.values())
    return "\n".join(lines)


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
