"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments                      # all, small scale
    python -m repro.experiments --scale smoke fig9
    python -m repro.experiments --scale paper tab2 tab3

    # structured observability (repro.obs): JSONL trace and/or summary
    python -m repro.experiments --scale smoke --trace out.jsonl fig9
    python -m repro.experiments --scale smoke --trace-summary fig11

    # profile the run: cProfile stats land next to the trace output
    python -m repro.experiments --scale smoke --profile hot.pstats bench-hotpath

    # transactional maintenance (repro.resilience): run the 1-index
    # maintainers under a guard and see the overhead in the fig11 table
    python -m repro.experiments --scale smoke --guard fig11
    python -m repro.experiments --guard --guard-policy degrade --check-every 50 fig11

    # live telemetry (repro.obs.live): serve /metrics + /health while the
    # run is in flight, and evaluate SLO rules over the sliding windows
    python -m repro.experiments --scale small --serve-metrics 9100 serve
    python -m repro.experiments --serve-metrics 0 --slo rules.json serve
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.experiments import EXPERIMENTS, scale_by_name
from repro.obs import JsonlSink, Observer, SummarySink, observed
from repro.resilience import POLICIES, GuardConfig


def _run_experiments(chosen: list[str], scale, obs: Observer | None = None) -> None:
    for name in chosen:
        module = EXPERIMENTS[name]
        started = time.perf_counter()
        print(f"=== {name} (scale={scale.name}) ===")
        if obs is not None:
            with obs.span(f"experiment.{name}", scale=scale.name):
                output = module.main(scale)
        else:
            output = module.main(scale)
        print(output)
        print(f"--- {name} done in {time.perf_counter() - started:.1f}s ---\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the evaluation of 'Incremental Maintenance of "
        "XML Structural Indexes' (SIGMOD 2004).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("smoke", "small", "paper"),
        help="dataset/workload scale preset (default: small)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable repro.obs and write a JSONL trace of the run to PATH",
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="enable repro.obs and print a per-span/counter summary at the end",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run everything under cProfile and dump the pstats data to "
        "PATH (inspect with `python -m pstats PATH`); the top functions "
        "by cumulative time are also printed at the end",
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="directory for the durable-store experiments (persist writes a "
        "store there; recover reopens it); default: a temporary directory",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        metavar="PORT",
        default=None,
        help="enable repro.obs and serve Prometheus /metrics plus JSON "
        "/health on 127.0.0.1:PORT for the duration of the run "
        "(0 = pick an ephemeral port; the bound URL is printed)",
    )
    parser.add_argument(
        "--slo",
        metavar="PATH",
        default=None,
        help="evaluate SLO rules over the live telemetry windows: PATH is "
        "a JSON rule file (see repro.obs.slo.load_rules), or the literal "
        "'default' for the stock serving rules; the verdict is printed at "
        "the end and reflected in /health when --serve-metrics is on",
    )
    parser.add_argument(
        "--reconstruct-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="growth fraction that triggers baseline reconstruction in the "
        "reconstruction experiments (default: the paper's 0.05, i.e. 5%%)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="run maintainers inside transactions (repro.resilience) so every "
        "update is atomic; overhead shows up in the timing tables",
    )
    parser.add_argument(
        "--guard-policy",
        default="raise",
        choices=POLICIES,
        help="what a guarded run does after a rolled-back failure "
        "(default: raise)",
    )
    parser.add_argument(
        "--check-every",
        type=int,
        default=0,
        metavar="N",
        help="with --guard, verify graph/index invariants after every N-th "
        "update (0 = never; checks are O(n + m))",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}")

    scale = scale_by_name(args.scale)
    if args.store_dir:
        scale = replace(scale, store_dir=args.store_dir)
    if args.reconstruct_threshold is not None:
        if args.reconstruct_threshold <= 0:
            parser.error("--reconstruct-threshold must be > 0")
        scale = replace(scale, reconstruct_threshold=args.reconstruct_threshold)
    if args.guard:
        scale = replace(
            scale,
            guard=GuardConfig(
                policy=args.guard_policy, check_every=args.check_every
            ),
        )
    elif args.guard_policy != "raise" or args.check_every:
        parser.error("--guard-policy/--check-every require --guard")
    plane = watchdog = server = None
    if args.serve_metrics is not None or args.slo:
        from repro.obs import (
            LivePlane,
            MetricsServer,
            SloWatchdog,
            default_service_rules,
            load_rules,
        )

        plane = LivePlane()
        rules = []
        if args.slo:
            if args.slo == "default":
                rules = default_service_rules()
            else:
                try:
                    rules = load_rules(args.slo)
                except (OSError, ValueError) as exc:
                    parser.error(f"cannot load SLO rules from {args.slo!r}: {exc}")
        watchdog = SloWatchdog(plane, rules)
        if args.serve_metrics is not None:
            server = MetricsServer(
                plane=plane, watchdog=watchdog, port=args.serve_metrics
            )
    sinks = []
    jsonl = None
    if args.trace:
        try:
            jsonl = JsonlSink(args.trace)
        except OSError as exc:
            parser.error(f"cannot open trace file {args.trace!r}: {exc}")
        sinks.append(jsonl)
    if args.trace_summary:
        sinks.append(SummarySink(sys.stdout))
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if sinks or plane is not None:
            with observed(*sinks, live=plane) as obs:
                if server is not None:
                    server.registry = obs.metrics
                    server.start()
                    print(f"metrics: serving /metrics and /health on {server.url}")
                _run_experiments(chosen, scale, obs)
            if jsonl is not None:
                print(f"trace: wrote {jsonl.emitted} records to {args.trace}")
        else:
            _run_experiments(chosen, scale)
    finally:
        if server is not None:
            server.stop()
        if watchdog is not None and watchdog.rules:
            for status in watchdog.evaluate():
                print(
                    f"slo: {status.rule.name}: {status.status} "
                    f"({status.rule.metric} {status.rule.stat}="
                    f"{status.fast_value} {status.rule.op} {status.rule.threshold})"
                )
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            import pstats

            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(15)
            print(f"profile: wrote pstats data to {args.profile}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
