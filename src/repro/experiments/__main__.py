"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments                      # all, small scale
    python -m repro.experiments --scale smoke fig9
    python -m repro.experiments --scale paper tab2 tab3
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, scale_by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the evaluation of 'Incremental Maintenance of "
        "XML Structural Indexes' (SIGMOD 2004).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("smoke", "small", "paper"),
        help="dataset/workload scale preset (default: small)",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}")

    scale = scale_by_name(args.scale)
    for name in chosen:
        module = EXPERIMENTS[name]
        started = time.perf_counter()
        print(f"=== {name} (scale={scale.name}) ===")
        print(module.main(scale))
        print(f"--- {name} done in {time.perf_counter() - started:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
