"""The shared engine behind every maintenance experiment.

All of Figures 9–11/13 and Tables 1–2 run the same loop: replay a mixed
insert/delete workload through a maintainer, optionally firing the 5 %
reconstruction policy, while sampling index quality and accumulating
per-update wall-clock time.  :func:`run_mixed_updates` is that loop;
the per-figure modules configure and interpret it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.maintenance.base import UpdateStats
from repro.maintenance.reconstruction import ReconstructionPolicy
from repro.metrics.timing import Stopwatch
from repro.workload.updates import MixedUpdateWorkload


class _EdgeMaintainer(Protocol):
    graph: DataGraph

    def insert_edge(self, source: int, target: int) -> UpdateStats: ...

    def delete_edge(self, source: int, target: int) -> UpdateStats: ...

    def index_size(self) -> int: ...


@dataclass
class SeriesPoint:
    """One quality sample along an update sequence."""

    update: int
    index_size: int
    minimum_size: int

    @property
    def quality(self) -> float:
        """The Section 3 quality metric at this point."""
        return self.index_size / self.minimum_size - 1.0


@dataclass
class MixedRunResult:
    """Everything one maintainer run produces."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)
    updates: int = 0
    trivial_updates: int = 0
    total_splits: int = 0
    total_merges: int = 0
    peak_inodes: int = 0
    update_seconds: float = 0.0
    reconstructions: int = 0
    reconstruction_seconds: float = 0.0
    reconstruction_intervals: list[int] = field(default_factory=list)
    final_size: int = 0
    final_minimum: int = 0

    @property
    def mean_update_ms(self) -> float:
        """Mean per-update time, excluding reconstructions (Figure 11's
        'split/merge' and 'propagate' bars)."""
        if self.updates == 0:
            return 0.0
        return self.update_seconds / self.updates * 1000

    @property
    def mean_update_with_recon_ms(self) -> float:
        """Mean per-update time with amortised reconstruction cost
        (Figure 11's 'propagate + reconstruction' bars)."""
        if self.updates == 0:
            return 0.0
        return (self.update_seconds + self.reconstruction_seconds) / self.updates * 1000

    @property
    def max_quality(self) -> float:
        """Worst sampled quality over the run."""
        if not self.points:
            return 0.0
        return max(point.quality for point in self.points)

    @property
    def final_quality(self) -> float:
        """Quality at the end of the run."""
        if self.final_minimum == 0:
            return 0.0
        return self.final_size / self.final_minimum - 1.0


def run_mixed_updates(
    name: str,
    maintainer: _EdgeMaintainer,
    workload: MixedUpdateWorkload,
    num_pairs: int,
    sample_every: int,
    minimum_size_fn: Callable[[DataGraph], int],
    policy: Optional[ReconstructionPolicy] = None,
    reconstruct: Optional[Callable[[], None]] = None,
) -> MixedRunResult:
    """Replay ``2 * num_pairs`` operations through *maintainer*.

    *minimum_size_fn* computes the current minimum-index size for quality
    sampling (it runs outside the timed sections).  When *policy* and
    *reconstruct* are given, the policy is consulted after every update
    and reconstructions are timed separately — the paper's protocol for
    the baselines (and, on cyclic data, for split/merge too).
    """
    result = MixedRunResult(name=name)
    update_watch = Stopwatch()
    recon_watch = Stopwatch()
    if policy is not None:
        policy.start(maintainer.index_size())

    for op_number, (op, source, target) in enumerate(workload.steps(num_pairs), 1):
        with update_watch:
            if op == "insert":
                # workload edges come from the IDREF pool
                stats = maintainer.insert_edge(source, target, EdgeKind.IDREF)
            else:
                stats = maintainer.delete_edge(source, target)
        result.updates += 1
        result.total_splits += stats.splits
        result.total_merges += stats.merges
        result.peak_inodes = max(result.peak_inodes, stats.peak_inodes)
        if stats.trivial:
            result.trivial_updates += 1

        if policy is not None and reconstruct is not None:
            if policy.should_reconstruct(maintainer.index_size()):
                with recon_watch:
                    reconstruct()
                policy.reconstructed(maintainer.index_size())

        if op_number % sample_every == 0:
            result.points.append(
                SeriesPoint(
                    update=op_number,
                    index_size=maintainer.index_size(),
                    minimum_size=minimum_size_fn(maintainer.graph),
                )
            )

    result.update_seconds = update_watch.total_seconds
    result.reconstruction_seconds = recon_watch.total_seconds
    if policy is not None:
        result.reconstructions = policy.reconstructions
        result.reconstruction_intervals = list(policy.intervals)
    result.final_size = maintainer.index_size()
    result.final_minimum = minimum_size_fn(maintainer.graph)
    return result
