"""The shared engine behind every maintenance experiment.

All of Figures 9–11/13 and Tables 1–2 run the same loop: replay a mixed
insert/delete workload through a maintainer, optionally firing the 5 %
reconstruction policy, while sampling index quality and accumulating
per-update wall-clock time.  :func:`run_mixed_updates` is that loop;
the per-figure modules configure and interpret it.

Observability: the loop tallies its work into a per-run
:class:`repro.obs.MetricsRegistry` (counters ``run.updates``,
``run.splits``, ``run.merges``, …; histograms ``run.update_seconds``,
``run.reconstruction_seconds``) and the returned
:class:`MixedRunResult` is a snapshot view over that registry rather
than a hand-maintained tally.  When the current observer
(:func:`repro.obs.current`) is enabled, the run additionally emits a
``run`` span, one ``run.update`` event per operation and a final
metrics-snapshot record, so a JSONL trace of any experiment can be
cross-checked against the result object (their split/merge counts are
equal by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.maintenance.base import UpdateStats
from repro.maintenance.reconstruction import ReconstructionPolicy
from repro.metrics.timing import Stopwatch, max_ms, p50_ms, p95_ms
from repro.obs import MetricsRegistry, Observer, current
from repro.workload.updates import MixedUpdateWorkload


class _EdgeMaintainer(Protocol):
    graph: DataGraph

    def insert_edge(self, source: int, target: int) -> UpdateStats: ...

    def delete_edge(self, source: int, target: int) -> UpdateStats: ...

    def index_size(self) -> int: ...


@dataclass
class SeriesPoint:
    """One quality sample along an update sequence."""

    update: int
    index_size: int
    minimum_size: int

    @property
    def quality(self) -> float:
        """The Section 3 quality metric at this point."""
        return self.index_size / self.minimum_size - 1.0


@dataclass
class MixedRunResult:
    """Everything one maintainer run produces.

    The scalar fields are synced from the run's metrics registry
    (:attr:`metrics`) when the runner finishes — see
    :meth:`sync_from_metrics`; they remain plain fields so results can
    be constructed directly in tests and serialised trivially.
    """

    name: str
    points: list[SeriesPoint] = field(default_factory=list)
    updates: int = 0
    trivial_updates: int = 0
    total_splits: int = 0
    total_merges: int = 0
    peak_inodes: int = 0
    update_seconds: float = 0.0
    reconstructions: int = 0
    reconstruction_seconds: float = 0.0
    reconstruction_intervals: list[int] = field(default_factory=list)
    final_size: int = 0
    final_minimum: int = 0
    #: per-update durations (seconds), for tail percentiles
    update_lap_seconds: list[float] = field(default_factory=list)
    #: the per-run registry the scalar fields are views of (None when the
    #: result was built by hand)
    metrics: Optional[MetricsRegistry] = None

    def sync_from_metrics(self, registry: MetricsRegistry) -> None:
        """Refresh the scalar tallies from a ``run.*`` metrics registry."""
        self.metrics = registry
        self.updates = registry.counter("run.updates").value
        self.trivial_updates = registry.counter("run.trivial").value
        self.total_splits = registry.counter("run.splits").value
        self.total_merges = registry.counter("run.merges").value
        self.peak_inodes = int(registry.gauge("run.peak_inodes").max_value)
        update_hist = registry.histogram("run.update_seconds")
        self.update_seconds = update_hist.total
        self.update_lap_seconds = list(update_hist.values)
        self.reconstructions = registry.counter("run.reconstructions").value
        self.reconstruction_seconds = registry.histogram(
            "run.reconstruction_seconds"
        ).total

    @property
    def mean_update_ms(self) -> float:
        """Mean per-update time, excluding reconstructions (Figure 11's
        'split/merge' and 'propagate' bars)."""
        if self.updates == 0:
            return 0.0
        return self.update_seconds / self.updates * 1000

    @property
    def p50_update_ms(self) -> float:
        """Median per-update time (0.0 when laps were not recorded)."""
        return p50_ms(self.update_lap_seconds)

    @property
    def p95_update_ms(self) -> float:
        """95th-percentile per-update time (0.0 when laps were not recorded)."""
        return p95_ms(self.update_lap_seconds)

    @property
    def max_update_ms(self) -> float:
        """Worst single update time (0.0 when laps were not recorded)."""
        return max_ms(self.update_lap_seconds)

    @property
    def mean_update_with_recon_ms(self) -> float:
        """Mean per-update time with amortised reconstruction cost
        (Figure 11's 'propagate + reconstruction' bars)."""
        if self.updates == 0:
            return 0.0
        return (self.update_seconds + self.reconstruction_seconds) / self.updates * 1000

    @property
    def max_quality(self) -> float:
        """Worst sampled quality over the run."""
        if not self.points:
            return 0.0
        return max(point.quality for point in self.points)

    @property
    def final_quality(self) -> float:
        """Quality at the end of the run."""
        if self.final_minimum == 0:
            return 0.0
        return self.final_size / self.final_minimum - 1.0


def run_mixed_updates(
    name: str,
    maintainer: _EdgeMaintainer,
    workload: MixedUpdateWorkload,
    num_pairs: int,
    sample_every: int,
    minimum_size_fn: Callable[[DataGraph], int],
    policy: Optional[ReconstructionPolicy] = None,
    reconstruct: Optional[Callable[[], None]] = None,
    obs: Optional[Observer] = None,
) -> MixedRunResult:
    """Replay ``2 * num_pairs`` operations through *maintainer*.

    *minimum_size_fn* computes the current minimum-index size for quality
    sampling (it runs outside the timed sections).  When *policy* and
    *reconstruct* are given, the policy is consulted after every update
    and reconstructions are timed separately — the paper's protocol for
    the baselines (and, on cyclic data, for split/merge too).

    *obs* is the observer to trace through (default: the process-wide
    :func:`repro.obs.current`); tracing work happens outside the timed
    sections, so enabling it does not skew the reported update times.
    """
    registry = MetricsRegistry()
    result = MixedRunResult(name=name)
    update_watch = Stopwatch()
    recon_watch = Stopwatch()
    # Hoisted registry slots: the loop's per-update cost must stay at a
    # handful of attribute bumps, observability on or off.
    lap_hist = registry.histogram("run.update_seconds")
    recon_hist = registry.histogram("run.reconstruction_seconds")
    recon_counter = registry.counter("run.reconstructions")
    if obs is None:
        obs = current()
    if policy is not None:
        policy.start(maintainer.index_size())

    with obs.span("run", run=name, num_pairs=num_pairs) as run_span:
        # validate=True: the runner applies every operation as it is
        # yielded, so a desynchronised stream fails at the workload
        # boundary with the offending step index.
        steps = workload.steps(num_pairs, validate=True)
        for op_number, (op, source, target) in enumerate(steps, 1):
            with update_watch:
                if op == "insert":
                    # workload edges come from the IDREF pool
                    stats = maintainer.insert_edge(source, target, EdgeKind.IDREF)
                else:
                    stats = maintainer.delete_edge(source, target)
            lap_hist.observe(update_watch.last_seconds)
            stats.record_to(registry, "run")
            if obs.enabled:
                obs.event(
                    "run.update",
                    op=op,
                    source=source,
                    target=target,
                    splits=stats.splits,
                    merges=stats.merges,
                    moves=stats.moves,
                    trivial=stats.trivial,
                    seconds=update_watch.last_seconds,
                )

            if policy is not None and reconstruct is not None:
                if policy.should_reconstruct(maintainer.index_size()):
                    with recon_watch:
                        reconstruct()
                    recon_hist.observe(recon_watch.last_seconds)
                    recon_counter.inc()
                    if obs.enabled:
                        obs.event(
                            "run.reconstruction",
                            update=op_number,
                            index_size=maintainer.index_size(),
                            seconds=recon_watch.last_seconds,
                        )
                    policy.reconstructed(maintainer.index_size())

            if op_number % sample_every == 0:
                result.points.append(
                    SeriesPoint(
                        update=op_number,
                        index_size=maintainer.index_size(),
                        minimum_size=minimum_size_fn(maintainer.graph),
                    )
                )

        result.sync_from_metrics(registry)
        if policy is not None:
            result.reconstruction_intervals = list(policy.intervals)
        result.final_size = maintainer.index_size()
        result.final_minimum = minimum_size_fn(maintainer.graph)
        run_span.set(
            updates=result.updates,
            splits=result.total_splits,
            merges=result.total_merges,
            reconstructions=result.reconstructions,
            final_size=result.final_size,
            final_minimum=result.final_minimum,
        )
    obs.emit_metrics(registry, name=name)
    return result
