"""Figure 11: average running times of the 1-index algorithms.

For each dataset (XMark(1), XMark(0.5), XMark(0.2), XMark(0), IMDB) the
paper reports three bars, averaged over the whole mixed-update run:

* **split/merge** — more costly per update than propagate (it has the
  extra merge phase), but needs (almost) no reconstructions;
* **propagate** — cheapest per update;
* **propagate + reconstruction** — propagate with its amortised
  reconstruction cost folded in, which makes it *much* slower overall.

Two paper observations the reproduction checks: cyclicity barely affects
split/merge (Figure 5 cases are rare), and amortised reconstruction
dominates propagate's apparent advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale
from repro.experiments.mixed_1index import (
    DatasetComparison,
    imdb_factory,
    run_dataset_comparison,
    xmark_factory,
)
from repro.experiments.reporting import format_table


@dataclass
class TimingRow:
    """One dataset's three bars (milliseconds per update), with tails.

    The paper reports means; the reproduction also surfaces p95/max so a
    handful of expensive repairs (e.g. Figure 5 worst cases) are visible
    rather than averaged away.
    """

    dataset: str
    split_merge_ms: float
    propagate_ms: float
    propagate_with_recon_ms: float
    split_merge_reconstructions: int
    propagate_reconstructions: int
    split_merge_p95_ms: float = 0.0
    split_merge_max_ms: float = 0.0
    propagate_p95_ms: float = 0.0
    propagate_max_ms: float = 0.0


def run(scale: ExperimentScale) -> list[TimingRow]:
    """Run the Figure 11 experiment on every dataset."""
    comparisons: list[DatasetComparison] = [
        run_dataset_comparison(
            f"XMark({c:g})", xmark_factory(scale, c), scale
        )
        for c in scale.cyclicities
    ]
    comparisons.append(run_dataset_comparison("IMDB", imdb_factory(scale), scale))
    rows = []
    for comparison in comparisons:
        split_merge = comparison.results["split/merge"]
        propagate = comparison.results["propagate"]
        rows.append(
            TimingRow(
                dataset=comparison.dataset,
                split_merge_ms=split_merge.mean_update_ms,
                propagate_ms=propagate.mean_update_ms,
                propagate_with_recon_ms=propagate.mean_update_with_recon_ms,
                split_merge_reconstructions=split_merge.reconstructions,
                propagate_reconstructions=propagate.reconstructions,
                split_merge_p95_ms=split_merge.p95_update_ms,
                split_merge_max_ms=split_merge.max_update_ms,
                propagate_p95_ms=propagate.p95_update_ms,
                propagate_max_ms=propagate.max_update_ms,
            )
        )
    return rows


def report(rows: list[TimingRow]) -> str:
    """Render the timing table (means plus p95/max tails)."""
    table = format_table(
        [
            "dataset",
            "s/m (ms)",
            "s/m p95",
            "s/m max",
            "prop (ms)",
            "prop p95",
            "prop max",
            "prop+recon (ms)",
            "recon (s/m)",
            "recon (prop)",
        ],
        [
            (
                row.dataset,
                f"{row.split_merge_ms:.2f}",
                f"{row.split_merge_p95_ms:.2f}",
                f"{row.split_merge_max_ms:.2f}",
                f"{row.propagate_ms:.2f}",
                f"{row.propagate_p95_ms:.2f}",
                f"{row.propagate_max_ms:.2f}",
                f"{row.propagate_with_recon_ms:.2f}",
                row.split_merge_reconstructions,
                row.propagate_reconstructions,
            )
            for row in rows
        ],
    )
    return "Figure 11 — running times of 1-index algorithms\n" + table


def main(scale: ExperimentScale) -> str:
    """Run and render (the harness entry point)."""
    return report(run(scale))
