"""Path-expression queries over data graphs and structural indexes."""

from repro.query.automaton import (
    PATH_CACHE_SIZE,
    PathNfa,
    as_nfa,
    clear_path_cache,
    compile_path,
    path_cache_info,
)
from repro.query.evaluator import (
    EvaluationReport,
    ancestors_of,
    evaluate_on_graph,
    evaluate_on_subgraph,
)
from repro.query.index_evaluator import (
    EvalFootprint,
    evaluate_on_ak,
    evaluate_on_family,
    evaluate_on_index,
)
from repro.query.path_expression import WILDCARD, PathExpression, Step, parse_path

__all__ = [
    "PathExpression",
    "Step",
    "WILDCARD",
    "parse_path",
    "PathNfa",
    "compile_path",
    "as_nfa",
    "path_cache_info",
    "clear_path_cache",
    "PATH_CACHE_SIZE",
    "EvaluationReport",
    "EvalFootprint",
    "evaluate_on_graph",
    "evaluate_on_subgraph",
    "evaluate_on_index",
    "evaluate_on_ak",
    "evaluate_on_family",
    "ancestors_of",
]
