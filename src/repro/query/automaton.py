"""Compilation of path expressions to label NFAs.

Evaluating a path expression over a graph (data graph or index graph) is
a product construction: walk the graph and the query automaton together.
This module builds the automaton; :mod:`repro.query.evaluator` runs the
product.

States are ``0 .. n`` where ``n = len(steps)``; state ``i`` means "the
first i steps have matched".  A child step is a single transition; a
descendant step additionally lets the automaton idle in its source state
across any label (``//a`` = "any path, then an ``a`` child").

Compilation is cheap but not free (a parse plus a tuple build), and the
serving layer evaluates the *same* expression strings in a hot loop, so
:func:`as_nfa` — the coercion every evaluator entry point uses — routes
string queries through a bounded LRU keyed by the expression text.
Compiled automata are immutable, so sharing them is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.query.path_expression import WILDCARD, PathExpression

#: Bound on the compiled-expression LRU: large enough for any realistic
#: query mix, small enough that an adversarial stream cannot hoard memory.
PATH_CACHE_SIZE = 512


@dataclass(frozen=True)
class PathNfa:
    """An NFA over node labels recognising a path expression.

    ``advance[i]`` describes leaving state ``i`` when a node with some
    label is consumed: a pair ``(test, i+1)``.  ``loops`` is the set of
    states that may also stay put on any label (descendant-axis sources).
    """

    expression: PathExpression
    advance: tuple[tuple[str, int], ...]
    loops: frozenset[int]

    @property
    def start(self) -> int:
        """Initial state (nothing matched — the ROOT node itself)."""
        return 0

    @property
    def accept(self) -> int:
        """Accepting state (all steps matched)."""
        return len(self.advance)

    def step(self, states: frozenset[int], label: str) -> frozenset[int]:
        """All states reachable by consuming one node with *label*."""
        result: set[int] = set()
        for state in states:
            if state in self.loops:
                result.add(state)
            if state < len(self.advance):
                test, target = self.advance[state]
                if test == WILDCARD or test == label:
                    result.add(target)
        return frozenset(result)

    def accepts_states(self, states: frozenset[int]) -> bool:
        """Whether a state set contains the accepting state."""
        return self.accept in states


def compile_path(expression: PathExpression) -> PathNfa:
    """Compile a parsed path expression into a :class:`PathNfa`."""
    advance = tuple((step.test, i + 1) for i, step in enumerate(expression.steps))
    loops = frozenset(
        i for i, step in enumerate(expression.steps) if step.axis == "descendant"
    )
    return PathNfa(expression, advance, loops)


@lru_cache(maxsize=PATH_CACHE_SIZE)
def _compile_text(text: str) -> PathNfa:
    """Parse + compile one expression string (the LRU-cached slow path)."""
    from repro.query.path_expression import parse_path

    return compile_path(parse_path(text))


def as_nfa(query: "str | PathExpression | PathNfa") -> PathNfa:
    """Coerce any query form to a compiled automaton.

    Strings hit the bounded LRU (`PATH_CACHE_SIZE` entries keyed by the
    exact expression text); already-parsed or already-compiled queries
    pass through untouched, so callers that pre-compile keep full
    control.  A syntactically invalid string raises
    :class:`~repro.exceptions.PathSyntaxError` exactly as
    :func:`~repro.query.path_expression.parse_path` would — failed
    parses are not cached.
    """
    if isinstance(query, PathNfa):
        return query
    if isinstance(query, PathExpression):
        return compile_path(query)
    return _compile_text(query)


def path_cache_info():
    """Hit/miss statistics of the compiled-expression LRU."""
    return _compile_text.cache_info()


def clear_path_cache() -> None:
    """Drop every cached automaton (benchmark A/B runs, tests)."""
    _compile_text.cache_clear()
