"""Compilation of path expressions to label NFAs.

Evaluating a path expression over a graph (data graph or index graph) is
a product construction: walk the graph and the query automaton together.
This module builds the automaton; :mod:`repro.query.evaluator` runs the
product.

States are ``0 .. n`` where ``n = len(steps)``; state ``i`` means "the
first i steps have matched".  A child step is a single transition; a
descendant step additionally lets the automaton idle in its source state
across any label (``//a`` = "any path, then an ``a`` child").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.path_expression import WILDCARD, PathExpression


@dataclass(frozen=True)
class PathNfa:
    """An NFA over node labels recognising a path expression.

    ``advance[i]`` describes leaving state ``i`` when a node with some
    label is consumed: a pair ``(test, i+1)``.  ``loops`` is the set of
    states that may also stay put on any label (descendant-axis sources).
    """

    expression: PathExpression
    advance: tuple[tuple[str, int], ...]
    loops: frozenset[int]

    @property
    def start(self) -> int:
        """Initial state (nothing matched — the ROOT node itself)."""
        return 0

    @property
    def accept(self) -> int:
        """Accepting state (all steps matched)."""
        return len(self.advance)

    def step(self, states: frozenset[int], label: str) -> frozenset[int]:
        """All states reachable by consuming one node with *label*."""
        result: set[int] = set()
        for state in states:
            if state in self.loops:
                result.add(state)
            if state < len(self.advance):
                test, target = self.advance[state]
                if test == WILDCARD or test == label:
                    result.add(target)
        return frozenset(result)

    def accepts_states(self, states: frozenset[int]) -> bool:
        """Whether a state set contains the accepting state."""
        return self.accept in states


def compile_path(expression: PathExpression) -> PathNfa:
    """Compile a parsed path expression into a :class:`PathNfa`."""
    advance = tuple((step.test, i + 1) for i, step in enumerate(expression.steps))
    loops = frozenset(
        i for i, step in enumerate(expression.steps) if step.axis == "descendant"
    )
    return PathNfa(expression, advance, loops)
