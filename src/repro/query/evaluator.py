"""Path-expression evaluation over the data graph (the ground truth).

The data-graph evaluator is the reference semantics: a dnode matches the
expression iff some root-to-node path spells a label sequence the query
automaton accepts.  It is a worklist fixpoint over (node, NFA-state-set)
pairs, linear in ``|E| x |states|`` even on cyclic graphs.

Everything downstream — index evaluation, A(k) validation, the safety
property tests ("index results are never smaller than data results, and
for the 1-index never larger") — is checked against this evaluator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.graph.datagraph import DataGraph
from repro.query.automaton import PathNfa, as_nfa
from repro.query.path_expression import PathExpression


@dataclass
class EvaluationReport:
    """Result of one evaluation, with the effort counters the paper
    argues about (index evaluation touches far fewer nodes)."""

    matches: frozenset[int]
    nodes_visited: int = 0
    edges_followed: int = 0
    validated: bool = False
    candidates_before_validation: int = 0
    extra: dict[str, int] = field(default_factory=dict)


#: String queries are compiled through the bounded LRU in
#: :mod:`repro.query.automaton`, so hot loops re-evaluating the same
#: expression text skip the parse.
_as_nfa = as_nfa


def evaluate_on_graph(graph: DataGraph, query: str | PathExpression | PathNfa) -> EvaluationReport:
    """Evaluate a path expression directly on the data graph.

    Returns the exact match set (no false positives, no misses).
    """
    nfa = _as_nfa(query)
    return _product_fixpoint(graph, nfa, restrict=None)


def evaluate_on_subgraph(
    graph: DataGraph,
    query: str | PathExpression | PathNfa,
    allowed: set[int],
) -> EvaluationReport:
    """Evaluate, walking only nodes in *allowed* (which must include the
    root to find anything).  Used by A(k) validation to confine the walk
    to the ancestor cone of the candidates."""
    nfa = _as_nfa(query)
    return _product_fixpoint(graph, nfa, restrict=allowed)


def _product_fixpoint(
    graph: DataGraph, nfa: PathNfa, restrict: set[int] | None
) -> EvaluationReport:
    report = EvaluationReport(matches=frozenset())
    if not graph.has_root:
        return report
    root = graph.root
    if restrict is not None and root not in restrict:
        return report
    states_of: dict[int, frozenset[int]] = {root: frozenset({nfa.start})}
    queue: deque[int] = deque([root])
    while queue:
        node = queue.popleft()
        report.nodes_visited += 1
        current = states_of[node]
        for child in graph.iter_succ(node):
            if restrict is not None and child not in restrict:
                continue
            report.edges_followed += 1
            advanced = nfa.step(current, graph.label(child))
            if not advanced:
                continue
            known = states_of.get(child, frozenset())
            union = known | advanced
            if union != known:
                states_of[child] = union
                queue.append(child)
    report.matches = frozenset(
        node for node, states in states_of.items() if nfa.accepts_states(states)
    )
    return report


def ancestors_of(graph: DataGraph, targets: set[int]) -> set[int]:
    """All nodes from which some target is reachable (targets included)."""
    seen = set(targets)
    queue = deque(targets)
    while queue:
        node = queue.popleft()
        for parent in graph.iter_pred(node):
            if parent not in seen:
                seen.add(parent)
                queue.append(parent)
    return seen
