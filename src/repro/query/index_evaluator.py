"""Path-expression evaluation over structural indexes.

The whole point of the 1-index and the A(k)-index (Section 3): run the
path expression on the small index graph instead of the data graph, and
return the union of the extents of the matching inodes.

* Any node-partition index built by the standard procedure is **safe** —
  the true result is contained in the index result.
* The 1-index is also **precise** for these expressions (no false
  positives) because its partition respects full backward bisimulation.
* The A(k)-index preserves only incoming paths of length <= k, so
  expressions longer than k (or using ``//``) may return false
  positives; :func:`evaluate_on_ak` runs the **validation** step of
  Section 3 — a data-graph evaluation confined to the ancestor cone of
  the candidate dnodes — to eliminate them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.datagraph import ROOT_LABEL
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.query.automaton import PathNfa, as_nfa
from repro.query.evaluator import (
    EvaluationReport,
    ancestors_of,
    evaluate_on_subgraph,
)
from repro.query.path_expression import PathExpression

#: shared coercion with the LRU-cached string path (see repro.query.automaton)
_as_nfa = as_nfa


@dataclass
class EvalFootprint:
    """Everything one evaluation *read* — the result's dependency set.

    ``inodes`` collects every inode whose label, iedges or extent the
    fixpoint consulted: the seeded roots, every inode that entered the
    worklist, and every child reached through an iedge even when its
    label killed all NFA states (its label was still read, so a later
    relabel/split there can change the answer).  ``dnodes`` collects the
    ancestor cone a validation pass walked.  If none of these entries
    changed between two versions, the evaluation is guaranteed to return
    the same matches on the later version — the invariant the adaptive
    result cache's TouchedSet intersection relies on.
    """

    inodes: set[int] = field(default_factory=set)
    dnodes: set[int] = field(default_factory=set)


def evaluate_on_index(
    index: StructuralIndex,
    query: str | PathExpression | PathNfa,
    footprint: Optional[EvalFootprint] = None,
) -> EvaluationReport:
    """Run the expression on the index graph; return the extent union.

    Safe for every structural index; additionally precise when the index
    is a (valid) 1-index.  The report's effort counters count *inodes*
    visited and iedges followed, which is what makes index evaluation
    cheap — compare against
    :func:`repro.query.evaluator.evaluate_on_graph`.
    """
    nfa = _as_nfa(query)
    report = EvaluationReport(matches=frozenset())
    roots = [
        inode for inode in index.inodes() if index.label_of(inode) == ROOT_LABEL
    ]
    if not roots:
        return report
    read = footprint.inodes if footprint is not None else None
    if read is not None:
        read.update(roots)
    states_of: dict[int, frozenset[int]] = {
        inode: frozenset({nfa.start}) for inode in roots
    }
    queue: deque[int] = deque(roots)
    while queue:
        inode = queue.popleft()
        report.nodes_visited += 1
        current = states_of[inode]
        for child in index.isucc(inode):
            report.edges_followed += 1
            if read is not None:
                read.add(child)
            advanced = nfa.step(current, index.label_of(child))
            if not advanced:
                continue
            known = states_of.get(child, frozenset())
            union = known | advanced
            if union != known:
                states_of[child] = union
                queue.append(child)
    matched: set[int] = set()
    for inode, states in states_of.items():
        if nfa.accepts_states(states):
            matched.update(index.extent(inode))
    report.matches = frozenset(matched)
    return report


def evaluate_on_family(
    family: "AkIndexFamily",
    query: str | PathExpression | PathNfa,
    validate: bool | None = None,
) -> EvaluationReport:
    """Multi-resolution evaluation over an A(k) family.

    Section 6 notes that "optionally, one could also maintain the
    intra-iedges inside the A(i)-indexes for i = 1..k-1, which will speed
    up the evaluation of path expressions of length less than k": a
    child-only expression of j <= k steps is answered *exactly* by the
    (much smaller) A(j)-index.  This helper picks that coarsest exact
    level; longer or descendant-axis expressions fall back to the leaf
    level plus validation.

    The chosen level is materialised on demand (this library does not
    persist per-level iedges); the report's effort counters therefore
    reflect only the evaluation proper.
    """
    nfa = _as_nfa(query)
    expression = nfa.expression
    if expression.answerable_exactly_by_ak(family.k):
        level = len(expression)
    else:
        level = family.k
    index = family.level_index(level)
    return evaluate_on_ak(index, level, nfa, validate=validate)


def evaluate_on_ak(
    index: StructuralIndex,
    k: int,
    query: str | PathExpression | PathNfa,
    validate: bool | None = None,
    footprint: Optional[EvalFootprint] = None,
) -> EvaluationReport:
    """Evaluate on an A(k)-index, validating when the expression needs it.

    *index* is the materialised A(k) level (see
    :meth:`repro.index.AkIndexFamily.level_index`).  With *validate* left
    at ``None`` the validation pass runs exactly when Section 3 requires
    it: the expression is longer than k or uses the descendant axis.
    Validation re-runs the expression on the data graph restricted to the
    ancestor cone of the candidates, so its cost scales with the
    candidate set, not the database.
    """
    nfa = _as_nfa(query)
    report = evaluate_on_index(index, nfa, footprint=footprint)
    needs_validation = not nfa.expression.answerable_exactly_by_ak(k)
    if validate is None:
        validate = needs_validation
    if not validate or not report.matches:
        return report
    candidates = set(report.matches)
    cone = ancestors_of(index.graph, candidates)
    if footprint is not None:
        footprint.dnodes.update(cone)
    exact = evaluate_on_subgraph(index.graph, nfa, cone)
    return EvaluationReport(
        matches=frozenset(exact.matches & candidates),
        nodes_visited=report.nodes_visited + exact.nodes_visited,
        edges_followed=report.edges_followed + exact.edges_followed,
        validated=True,
        candidates_before_validation=len(candidates),
    )
