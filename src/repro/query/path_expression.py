"""Path expressions: the query language structural indexes accelerate.

The paper's motivation (Section 1) is fast evaluation of path
expressions [4] over graph-shaped XML.  We support the XPath-like core
that structural-index papers evaluate with:

* ``/a/b/c``   — child steps from the root;
* ``//a``      — a descendant step (any number of intermediate nodes);
* ``*``        — a wildcard name test;
* steps combine freely: ``/site//person/name``, ``//keyword``.

A parsed expression is a sequence of :class:`Step` objects; its *length*
(number of steps) decides whether an A(k)-index can answer it exactly —
expressions longer than k need the validation pass of Section 3.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import PathSyntaxError

#: Name test that matches any label.
WILDCARD = "*"

_NAME_RE = re.compile(r"[^/\s]+")


@dataclass(frozen=True)
class Step:
    """One location step.

    ``axis`` is ``"child"`` (``/``) or ``"descendant"`` (``//``);
    ``test`` is a label or :data:`WILDCARD`.
    """

    axis: str
    test: str

    def __post_init__(self) -> None:
        if self.axis not in ("child", "descendant"):
            raise PathSyntaxError(self.test, 0, f"unknown axis {self.axis!r}")

    def matches(self, label: str) -> bool:
        """Whether this step's name test accepts *label*."""
        return self.test == WILDCARD or self.test == label


@dataclass(frozen=True)
class PathExpression:
    """A parsed path expression: an anchored sequence of steps."""

    steps: tuple[Step, ...]
    text: str

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return self.text

    @property
    def has_descendant_axis(self) -> bool:
        """Whether any step uses ``//`` (unbounded path length)."""
        return any(step.axis == "descendant" for step in self.steps)

    def answerable_exactly_by_ak(self, k: int) -> bool:
        """Whether an A(k)-index answers this expression without validation.

        The A(k)-index preserves incoming label paths of length up to k
        (Section 3), so child-only expressions of at most k steps are
        answered exactly; anything longer, or with a descendant axis, may
        produce false positives.
        """
        return not self.has_descendant_axis and len(self.steps) <= k


def parse_path(text: str) -> PathExpression:
    """Parse a path expression.

    >>> expr = parse_path('/site//person/name')
    >>> [(s.axis, s.test) for s in expr.steps]
    [('child', 'site'), ('descendant', 'person'), ('child', 'name')]
    """
    stripped = text.strip()
    if not stripped:
        raise PathSyntaxError(text, 0, "empty expression")
    position = 0
    steps: list[Step] = []
    if not stripped.startswith("/"):
        # A bare name is shorthand for a descendant step, XPath's '//name'
        # being the overwhelmingly common query in the index literature.
        stripped = "//" + stripped
    while position < len(stripped):
        if stripped.startswith("//", position):
            axis = "descendant"
            position += 2
        elif stripped.startswith("/", position):
            axis = "child"
            position += 1
        else:
            raise PathSyntaxError(text, position, "expected '/' or '//'")
        match = _NAME_RE.match(stripped, position)
        if not match:
            raise PathSyntaxError(text, position, "expected a name test")
        name = match.group()
        position = match.end()
        steps.append(Step(axis, name))
    return PathExpression(tuple(steps), text.strip())
