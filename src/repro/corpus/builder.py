"""Corpus catalog: per-document manifests, oid allocation, op compilation.

The catalog is the bridge between the document world (local ids, see
:mod:`repro.corpus.documents`) and the graph world (integer oids).  It
owns an oid allocator seeded *above* the host graph's counter, so every
node location is known **at compile time** — document operations are
compiled into the existing :class:`~repro.service.queue.Update` stream
(``add_subgraph`` with ``preserve_oids=True``, ``delete_edge`` /
``delete_subgraph`` sequences, ``insert_edge``, ``set_value``) and the
serving, guard, WAL, delta-publication, and replication layers apply
them unchanged.

Compilation is **eager**: the catalog reflects an operation the moment
it is compiled, before the update stream applies it.  That matches the
service's durability contract — if a batch terminally fails, the
service instance (and with it this catalog) must be treated as lost —
and it is what lets a later compile in the same batch window reference
oids the stream has not materialised yet.

Cross-document references are tracked in three structures: per-source
``outbound_state`` (every cross ref the document declares, resolved or
not), per-target ``inbound_resolved`` (edges that exist) and
``dangling`` (refs whose target document or target id is absent).  A
document's arrival resolves its dangling inbound refs; its removal
demotes inbound edges back to dangling, so a re-arrival re-links them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.corpus.documents import ParsedDocument
from repro.exceptions import (
    CorpusError,
    DocumentNotFoundError,
    DuplicateDocumentError,
)
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.service.queue import Update

#: cross-reference key: (source_local, target_doc, target_local)
CrossKey = tuple[str, str, str]
#: cross-reference entry under a target document: (source_doc, source_local, target_local)
InboundEntry = tuple[str, str, str]


@dataclass
class DocumentManifest:
    """Where one document's nodes live in the shared graph."""

    doc_id: str
    root_oid: int
    oid_of: dict[str, int]
    local_of: dict[int, str]
    document: ParsedDocument
    #: intra-document ``(source_local, target_local)`` pairs that carry
    #: an actual IDREF edge.  A reference whose pair already carries a
    #: TREE edge (an element referencing its own child) or repeats an
    #: earlier reference is *not* materialised — the data model has no
    #: parallel edges — and a diff must never delete an edge that was
    #: never added.
    materialized_intra: set[tuple[str, str]] = field(default_factory=set)

    @property
    def oids(self) -> set[int]:
        """Every graph oid belonging to this document."""
        return set(self.local_of)


class CorpusCatalog:
    """Manifests + cross-reference state + the op compiler."""

    def __init__(self, next_oid: int = 0):
        self.manifests: dict[str, DocumentManifest] = {}
        self._next_oid = next_oid
        self.outbound_state: dict[str, dict[CrossKey, bool]] = {}
        self.inbound_resolved: dict[str, set[InboundEntry]] = {}
        self.dangling: dict[str, set[InboundEntry]] = {}

    # -- bookkeeping ---------------------------------------------------

    def _alloc(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def document_ids(self) -> list[str]:
        """The ids of all present documents, sorted."""
        return sorted(self.manifests)

    def manifest(self, doc_id: str) -> DocumentManifest:
        """The manifest of *doc_id*; raises :class:`DocumentNotFoundError`."""
        try:
            return self.manifests[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def dangling_refs(self) -> list[tuple[str, str, str, str]]:
        """Unresolved cross refs as ``(src_doc, src_local, tgt_doc, tgt_local)``."""
        out = []
        for tgt_doc, entries in self.dangling.items():
            for src_doc, src_local, tgt_local in entries:
                out.append((src_doc, src_local, tgt_doc, tgt_local))
        return sorted(out)

    # -- compile: add --------------------------------------------------

    def compile_add(
        self, document: ParsedDocument, host_root_oid: int
    ) -> list[Update]:
        """Compile a document arrival into one oid-preserving ``add_subgraph``.

        The op's subgraph holds the whole document tree plus its
        materialised intra-document IDREF edges; the cross-edge list
        holds the ROOT splice (first, so the maintainer's batched
        root-merge optimisation fires) plus every cross-document edge
        that is resolvable right now — outbound refs whose target is
        present, and inbound refs other documents left dangling for us.
        """
        doc_id = document.doc_id
        if doc_id in self.manifests:
            raise DuplicateDocumentError(doc_id)
        oid_of = {local: self._alloc() for local in document.order}
        local_of = {oid: local for local, oid in oid_of.items()}

        sub = DataGraph()
        for local in document.order:
            sub.add_node(
                document.labels[local], document.values[local], oid=oid_of[local]
            )
        for parent, child in document.tree_edges:
            sub.add_edge(oid_of[parent], oid_of[child], EdgeKind.TREE)

        materialized_intra: set[tuple[str, str]] = set()
        tree_pairs = set(document.tree_edges)
        outbound: dict[CrossKey, bool] = {}
        cross_edges: list[tuple[int, int, EdgeKind]] = [
            (host_root_oid, oid_of[document.root_local], EdgeKind.TREE)
        ]
        for ref in document.refs:
            if ref.target_doc is None:
                pair = (ref.source_local, ref.target_local)
                if pair in tree_pairs or pair in materialized_intra:
                    continue
                materialized_intra.add(pair)
                sub.add_edge(
                    oid_of[ref.source_local], oid_of[ref.target_local], EdgeKind.IDREF
                )
            else:
                key = (ref.source_local, ref.target_doc, ref.target_local)
                if key in outbound:
                    continue
                target = self.manifests.get(ref.target_doc)
                if (
                    target is not None
                    and ref.target_local in target.document.explicit_ids
                ):
                    outbound[key] = True
                    cross_edges.append((
                        oid_of[ref.source_local],
                        target.oid_of[ref.target_local],
                        EdgeKind.IDREF,
                    ))
                    self.inbound_resolved.setdefault(ref.target_doc, set()).add(
                        (doc_id, ref.source_local, ref.target_local)
                    )
                else:
                    outbound[key] = False
                    self.dangling.setdefault(ref.target_doc, set()).add(
                        (doc_id, ref.source_local, ref.target_local)
                    )

        # inbound refs other documents left dangling for this one
        for entry in sorted(self.dangling.get(doc_id, set())):
            src_doc, src_local, tgt_local = entry
            if tgt_local not in document.explicit_ids:
                continue
            source = self.manifests[src_doc]
            cross_edges.append((
                source.oid_of[src_local], oid_of[tgt_local], EdgeKind.IDREF
            ))
            self.dangling[doc_id].discard(entry)
            self.inbound_resolved.setdefault(doc_id, set()).add(entry)
            self.outbound_state[src_doc][(src_local, doc_id, tgt_local)] = True

        self.outbound_state[doc_id] = outbound
        self.manifests[doc_id] = DocumentManifest(
            doc_id=doc_id,
            root_oid=oid_of[document.root_local],
            oid_of=oid_of,
            local_of=local_of,
            document=document,
            materialized_intra=materialized_intra,
        )
        return [
            Update.add_subgraph(
                sub, oid_of[document.root_local], cross_edges, preserve_oids=True
            )
        ]

    # -- compile: remove -----------------------------------------------

    def compile_remove(self, doc_id: str) -> list[Update]:
        """Compile a document departure into an ordered deletion sequence.

        Cross-document edges are deleted first — explicitly, from the
        manifest-derived catalog state, in both directions — then one
        ``delete_subgraph`` drops the document tree (whose TREE-reachable
        set is exactly the manifest's oid set).  Inbound refs from the
        surviving documents are demoted to dangling so the document's
        re-arrival re-links them.
        """
        manifest = self.manifest(doc_id)
        updates: list[Update] = []

        for key in sorted(self.outbound_state[doc_id]):
            src_local, tgt_doc, tgt_local = key
            if self.outbound_state[doc_id][key]:
                target = self.manifests[tgt_doc]
                updates.append(Update.delete_edge(
                    manifest.oid_of[src_local], target.oid_of[tgt_local]
                ))
                self.inbound_resolved[tgt_doc].discard((doc_id, src_local, tgt_local))
            else:
                self.dangling[tgt_doc].discard((doc_id, src_local, tgt_local))
                if not self.dangling[tgt_doc]:
                    del self.dangling[tgt_doc]

        for entry in sorted(self.inbound_resolved.get(doc_id, set())):
            src_doc, src_local, tgt_local = entry
            source = self.manifests[src_doc]
            updates.append(Update.delete_edge(
                source.oid_of[src_local], manifest.oid_of[tgt_local]
            ))
            self.outbound_state[src_doc][(src_local, doc_id, tgt_local)] = False
            self.dangling.setdefault(doc_id, set()).add(entry)

        self.inbound_resolved.pop(doc_id, None)
        del self.outbound_state[doc_id]
        del self.manifests[doc_id]
        updates.append(Update.delete_subgraph(manifest.root_oid))
        return updates

    # -- compile: replace (the structural diff) ------------------------

    def compile_replace(
        self, document: ParsedDocument, host_root_oid: int
    ) -> list[Update]:
        """Tree-diff the old and new parse; emit only touched nodes/edges.

        Five phases, in op order:

        a. ``delete_edge`` for edges whose endpoints both survive the
           batch in the graph — moved/retired tree edges to surviving
           children, retired intra refs, and every stale cross-document
           edge (explicit, so removal never depends on boundary
           discovery inside the maintainer).
        b. ``delete_subgraph`` per *removal root* (a removed node whose
           old parent survives, or the old document root).  Phase (a)
           detached every surviving child of a removed parent — an edge
           to a surviving child cannot be in the new tree if its parent
           is gone — so each removal root's live TREE-reachable set is
           exactly its removed descendants.
        c. ``add_subgraph`` (oid-preserving) per added *component* — a
           maximal set of added nodes connected by new tree edges.  The
           splice edge from the surviving parent (or host ROOT) leads
           the cross-edge list; edges to survivors and to earlier
           components ride along as further cross edges.
        d. ``insert_edge`` for survivor↔survivor new edges and for every
           cross-document edge that became resolvable (new outbound refs
           with a present target, inbound dangling refs the new version
           satisfies).
        e. ``set_value`` for survivors whose text changed (values are
           index-neutral but must reach the WAL and the replicas).

        A content-identical replacement compiles to zero updates.
        """
        doc_id = document.doc_id
        manifest = self.manifest(doc_id)
        old = manifest.document
        if old.same_content(document):
            return []

        survivors = {
            local
            for local, label in old.labels.items()
            if document.labels.get(local) == label
        }
        removed = set(old.labels) - survivors
        added = set(document.labels) - survivors

        old_tree = set(old.tree_edges)
        new_tree = set(document.tree_edges)
        old_intra = manifest.materialized_intra
        new_intra: set[tuple[str, str]] = set()
        for ref in document.refs:
            if ref.target_doc is None:
                pair = (ref.source_local, ref.target_local)
                if pair not in new_tree and pair not in new_intra:
                    new_intra.add(pair)

        oid_of = dict(manifest.oid_of)  # grows with added, shrinks at the end
        updates: list[Update] = []

        # --- phase a: edge deletions -----------------------------------
        for parent, child in sorted(old_tree):
            if child in survivors and (parent, child) not in new_tree:
                updates.append(
                    Update.delete_edge(oid_of[parent], oid_of[child])
                )
        for source, target in sorted(old_intra):
            if (
                source in survivors
                and target in survivors
                and (source, target) not in new_intra
            ):
                updates.append(
                    Update.delete_edge(oid_of[source], oid_of[target])
                )
        new_cross_keys: set[CrossKey] = {
            (ref.source_local, ref.target_doc, ref.target_local)
            for ref in document.refs
            if ref.target_doc is not None
        }
        outbound = self.outbound_state[doc_id]
        for key in sorted(outbound):
            src_local, tgt_doc, tgt_local = key
            if key in new_cross_keys and src_local in survivors:
                continue  # the ref survives; its state is unchanged
            if outbound.pop(key):
                target = self.manifests[tgt_doc]
                updates.append(Update.delete_edge(
                    oid_of[src_local], target.oid_of[tgt_local]
                ))
                self.inbound_resolved[tgt_doc].discard((doc_id, src_local, tgt_local))
            else:
                self.dangling[tgt_doc].discard((doc_id, src_local, tgt_local))
                if not self.dangling[tgt_doc]:
                    del self.dangling[tgt_doc]
        for entry in sorted(self.inbound_resolved.get(doc_id, set())):
            src_doc, src_local, tgt_local = entry
            if tgt_local in survivors:
                continue
            source = self.manifests[src_doc]
            updates.append(Update.delete_edge(
                source.oid_of[src_local], oid_of[tgt_local]
            ))
            self.inbound_resolved[doc_id].discard(entry)
            self.outbound_state[src_doc][(src_local, doc_id, tgt_local)] = False
            self.dangling.setdefault(doc_id, set()).add(entry)

        # --- phase b: removals -----------------------------------------
        old_parent = old.parent_of()
        removal_roots = sorted(
            local
            for local in removed
            if local == old.root_local or old_parent[local] in survivors
        )
        for local in removal_roots:
            updates.append(Update.delete_subgraph(oid_of[local]))

        # --- phase c: added components ---------------------------------
        for local in document.order:
            if local in added:
                oid_of[local] = self._alloc()
        new_parent = document.parent_of()
        comp_index: dict[str, int] = {}
        comp_nodes: list[list[str]] = []
        comp_splice: list[tuple[int, int, EdgeKind]] = []
        for local in document.order:  # parents precede children
            if local not in added:
                continue
            parent = new_parent.get(local)
            if parent is not None and parent in added:
                index = comp_index[parent]
                comp_nodes[index].append(local)
            else:
                index = len(comp_nodes)
                comp_nodes.append([local])
                parent_oid = host_root_oid if parent is None else oid_of[parent]
                comp_splice.append((parent_oid, oid_of[local], EdgeKind.TREE))
            comp_index[local] = index

        comp_cross: list[list[tuple[int, int, EdgeKind]]] = [
            [splice] for splice in comp_splice
        ]
        survivor_edges: list[tuple[int, int, EdgeKind]] = []

        def place(source: str, target: str, kind: EdgeKind) -> Optional[int]:
            """Assign an intra-document edge: a component (by index) or
            the survivor phase (``None``); interior edges are handled by
            the caller."""
            ci = comp_index.get(source)
            cj = comp_index.get(target)
            if ci is None and cj is None:
                survivor_edges.append((oid_of[source], oid_of[target], kind))
                return None
            index = max(i for i in (ci, cj) if i is not None)
            comp_cross[index].append((oid_of[source], oid_of[target], kind))
            return index

        interior_tree: list[list[tuple[str, str]]] = [[] for _ in comp_nodes]
        for parent, child in sorted(new_tree):
            if child in added and comp_index.get(parent) == comp_index[child]:
                interior_tree[comp_index[child]].append((parent, child))
            elif child in added and parent not in added:
                pass  # the splice edge, already first in comp_cross
            elif (parent, child) not in old_tree:
                place(parent, child, EdgeKind.TREE)
        interior_ref: list[list[tuple[str, str]]] = [[] for _ in comp_nodes]
        for source, target in sorted(new_intra):
            ci, cj = comp_index.get(source), comp_index.get(target)
            if ci is not None and ci == cj:
                interior_ref[ci].append((source, target))
            elif ci is None and cj is None:
                if (source, target) not in old_intra:
                    survivor_edges.append(
                        (oid_of[source], oid_of[target], EdgeKind.IDREF)
                    )
            else:
                place(source, target, EdgeKind.IDREF)

        for index, locals_ in enumerate(comp_nodes):
            sub = DataGraph()
            for local in locals_:
                sub.add_node(
                    document.labels[local], document.values[local], oid=oid_of[local]
                )
            for parent, child in interior_tree[index]:
                sub.add_edge(oid_of[parent], oid_of[child], EdgeKind.TREE)
            for source, target in interior_ref[index]:
                sub.add_edge(oid_of[source], oid_of[target], EdgeKind.IDREF)
            updates.append(Update.add_subgraph(
                sub, oid_of[locals_[0]], comp_cross[index], preserve_oids=True
            ))

        # --- phase d: survivor edges + cross-document resolution -------
        for source_oid, target_oid, kind in survivor_edges:
            updates.append(Update.insert_edge(source_oid, target_oid, kind))
        for key in sorted(new_cross_keys):
            src_local, tgt_doc, tgt_local = key
            if key in outbound:
                continue  # survived phase (a) untouched
            target = self.manifests.get(tgt_doc)
            if target is not None and tgt_local in target.document.explicit_ids:
                outbound[key] = True
                updates.append(Update.insert_edge(
                    oid_of[src_local], target.oid_of[tgt_local], EdgeKind.IDREF
                ))
                self.inbound_resolved.setdefault(tgt_doc, set()).add(
                    (doc_id, src_local, tgt_local)
                )
            else:
                outbound[key] = False
                self.dangling.setdefault(tgt_doc, set()).add(
                    (doc_id, src_local, tgt_local)
                )
        for entry in sorted(self.dangling.get(doc_id, set())):
            src_doc, src_local, tgt_local = entry
            if tgt_local not in document.explicit_ids:
                continue
            source = self.manifests[src_doc]
            updates.append(Update.insert_edge(
                source.oid_of[src_local], oid_of[tgt_local], EdgeKind.IDREF
            ))
            self.dangling[doc_id].discard(entry)
            self.inbound_resolved.setdefault(doc_id, set()).add(entry)
            self.outbound_state[src_doc][(src_local, doc_id, tgt_local)] = True

        # --- phase e: value changes ------------------------------------
        for local in sorted(survivors):
            if old.values[local] != document.values[local]:
                updates.append(Update.set_value(
                    oid_of[local], document.values[local]
                ))

        for local in removed:
            del oid_of[local]
        manifest.oid_of = oid_of
        manifest.local_of = {oid: local for local, oid in oid_of.items()}
        manifest.root_oid = oid_of[document.root_local]
        manifest.document = document
        manifest.materialized_intra = new_intra
        return updates

    # -- invariants ----------------------------------------------------

    def check(self, graph: DataGraph) -> None:
        """Verify the catalog against the graph (test/debug oracle)."""
        claimed: dict[int, str] = {}
        for doc_id, manifest in self.manifests.items():
            for oid, local in manifest.local_of.items():
                if oid in claimed:
                    raise CorpusError(
                        f"oid {oid} claimed by both {claimed[oid]!r} and {doc_id!r}"
                    )
                claimed[oid] = doc_id
                if not graph.has_node(oid):
                    raise CorpusError(
                        f"manifest of {doc_id!r} names missing oid {oid} ({local!r})"
                    )
                if graph.label(oid) != manifest.document.labels[local]:
                    raise CorpusError(
                        f"label drift at {doc_id}/{local}: graph says "
                        f"{graph.label(oid)!r}"
                    )
        root = graph.root
        for oid in graph.nodes():
            if oid != root and oid not in claimed:
                raise CorpusError(f"graph oid {oid} belongs to no document")


# ----------------------------------------------------------------------
# Bulk ingest
# ----------------------------------------------------------------------


class CorpusBuilder:
    """Collect parsed documents, then build one graph + catalog in bulk.

    The bulk path is the fast path: every document's subgraph is spliced
    under ROOT with raw graph surgery (re-using the compiled
    ``add_subgraph`` ops, so bulk and incremental ingest are the same
    code), and the *one* refinement pass happens afterwards when an
    index is built over the finished graph — no per-edge maintenance.
    """

    def __init__(self, attribute_nodes: bool = True):
        self.attribute_nodes = attribute_nodes
        self._documents: list[ParsedDocument] = []
        self._ids: set[str] = set()

    def add(self, doc_id: str, text: str) -> ParsedDocument:
        """Parse and stage one document; raises on duplicate ids."""
        from repro.corpus.documents import parse_document

        if doc_id in self._ids:
            raise DuplicateDocumentError(doc_id)
        document = parse_document(doc_id, text, self.attribute_nodes)
        self._ids.add(doc_id)
        self._documents.append(document)
        return document

    def add_all(self, documents: Iterable[tuple[str, str]]) -> None:
        """Stage ``(doc_id, text)`` pairs."""
        for doc_id, text in documents:
            self.add(doc_id, text)

    def build(self) -> tuple[DataGraph, CorpusCatalog]:
        """Splice every staged document into a fresh graph under ROOT."""
        graph = DataGraph()
        root = graph.add_root()
        catalog = CorpusCatalog(next_oid=graph._next_oid)
        for document in self._documents:
            for update in catalog.compile_add(document, root):
                apply_update_raw(graph, update)
        return graph, catalog


def apply_update_raw(graph: DataGraph, update: Update) -> None:
    """Apply one compiled update with raw graph surgery (no index).

    Only the ops the corpus compiler emits are supported; this is the
    bulk-load path and the A/B baseline, not a general interpreter.
    """
    if update.op == "add_subgraph":
        sub, _root, cross_edges = update.args[:3]
        preserve = len(update.args) > 3 and update.args[3]
        mapping = graph.add_subgraph(sub, preserve)
        for a, b, kind in cross_edges:
            graph.add_edge(mapping.get(a, a), mapping.get(b, b), kind)
    elif update.op == "insert_edge":
        source, target, kind = update.args
        graph.add_edge(source, target, kind)
    elif update.op == "delete_edge":
        graph.remove_edge(update.args[0], update.args[1])
    elif update.op == "delete_subgraph":
        graph.remove_nodes(graph.subgraph_from(update.args[0]).nodes())
    elif update.op == "set_value":
        graph.set_value(update.args[0], update.args[1])
    else:  # pragma: no cover - the compiler never emits other ops
        raise CorpusError(f"raw application does not support {update.op!r}")


# ----------------------------------------------------------------------
# Oid-independent fingerprints
# ----------------------------------------------------------------------


def _scoped_names(graph: DataGraph, catalog: CorpusCatalog) -> dict[int, str]:
    names = {graph.root: "ROOT"}
    for doc_id, manifest in catalog.manifests.items():
        for oid, local in manifest.local_of.items():
            names[oid] = f"{doc_id}/{local}"
    return names


def corpus_graph_fingerprint(graph: DataGraph, catalog: CorpusCatalog) -> str:
    """A canonical oid-independent digest of the corpus graph.

    Nodes are relabeled to their scoped names, so two corpora holding
    the same documents fingerprint identically regardless of arrival
    order or oid history — the yardstick for every differential check.
    A graph node outside every manifest fails loudly (``KeyError``).
    """
    names = _scoped_names(graph, catalog)
    nodes = sorted(
        (names[oid], graph.label(oid), _value_str(graph.value(oid)))
        for oid in graph.nodes()
    )
    edges = sorted(
        (names[source], names[target], graph.edge_kind(source, target).value)
        for source, target in graph.edges()
    )
    payload = json.dumps({"nodes": nodes, "edges": edges}, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def corpus_fingerprint(
    graph: DataGraph,
    catalog: CorpusCatalog,
    extents: Iterable[Iterable[int]],
) -> str:
    """Graph fingerprint + the index partition, both in scoped names."""
    names = _scoped_names(graph, catalog)
    blocks = sorted(sorted(names[oid] for oid in extent) for extent in extents)
    payload = json.dumps(
        {"graph": corpus_graph_fingerprint(graph, catalog), "blocks": blocks},
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _value_str(value: object) -> str:
    return "" if value is None else str(value)
