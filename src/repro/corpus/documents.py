"""Per-document XML parsing with file-scoped, diff-stable local ids.

The corpus engine never merges identifier namespaces: every node of a
document is addressed by a **local id** that is unique *within that
document only*, and the pair ``<doc-id>/<local-id>`` is the corpus-wide
scoped name.  Two kinds of local id exist:

* **explicit** — the value of the element's ``id`` attribute.  Explicit
  ids are the only legal reference targets, and they keep their identity
  across re-parses: an element that moves within the document keeps its
  oid in the graph because its local id is unchanged.
* **synthetic** — derived from the element's position for everything
  else: the document element is ``.<tag>``, a child is
  ``<parent>.<tag>[<n>]`` (``n`` = ordinal among same-tag siblings) and
  an attribute node is ``<parent>.@<name>``.  The chain restarts at
  every explicit id, so the anonymous subtree *under* an identified
  element also survives moves of that element.

Reference attributes (``idref`` / ``idrefs``) hold whitespace-separated
tokens.  A bare token references an explicit id in the *same* document
and must resolve at parse time; a token containing ``/`` is the scoped
form ``<doc-id>/<local-id>`` and may reference a document that has not
arrived yet (the corpus tracks it as *dangling* and resolves it when
the target appears).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import XmlFormatError

#: attribute that defines an element's explicit local id
ID_ATTRIBUTE = "id"

#: attributes whose whitespace-separated tokens are references
REF_ATTRIBUTES = ("idref", "idrefs")


@dataclass(frozen=True)
class ScopedRef:
    """One reference edge, in document-local terms.

    ``target_doc`` is ``None`` for an intra-document reference; the
    scoped form normalises a self-reference (``<own-doc>/x``) back to
    intra, so ``target_doc`` is never the owning document's id.
    """

    source_local: str
    target_doc: Optional[str]
    target_local: str


@dataclass
class ParsedDocument:
    """One parsed document: nodes, tree shape, and references.

    ``order`` lists local ids in document order (root first); builders
    allocate oids in this order so a from-scratch corpus build is
    deterministic.  The structure is oid-free on purpose — diffing two
    parses of the same document is pure local-id set algebra.
    """

    doc_id: str
    root_local: str = ""
    labels: dict[str, str] = field(default_factory=dict)
    values: dict[str, Optional[str]] = field(default_factory=dict)
    #: (parent_local, child_local) containment edges
    tree_edges: list[tuple[str, str]] = field(default_factory=list)
    refs: list[ScopedRef] = field(default_factory=list)
    explicit_ids: set[str] = field(default_factory=set)
    order: list[str] = field(default_factory=list)

    def parent_of(self) -> dict[str, str]:
        """child local -> parent local (the tree is a proper tree)."""
        return {child: parent for parent, child in self.tree_edges}

    def same_content(self, other: "ParsedDocument") -> bool:
        """Whether a replace would be a no-op."""
        return (
            self.labels == other.labels
            and self.values == other.values
            and set(self.tree_edges) == set(other.tree_edges)
            and set(self.refs) == set(other.refs)
        )


def parse_document(
    doc_id: str,
    text: str,
    attribute_nodes: bool = True,
    ref_attributes: Sequence[str] = REF_ATTRIBUTES,
) -> ParsedDocument:
    """Parse one XML document into the corpus' local-id model.

    Raises :class:`XmlFormatError` (carrying ``source=doc_id`` and the
    element path) for malformed XML, duplicate explicit ids, explicit
    ids colliding with a synthetic id, and unresolvable bare references.
    """
    if "/" in doc_id:
        raise XmlFormatError(
            f"document id {doc_id!r} must not contain '/' "
            "(reserved for scoped references)"
        )
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}", source=doc_id) from exc
    document = ParsedDocument(doc_id=doc_id)
    ref_set = set(ref_attributes)
    _walk(document, element, parent_local=None, path="", position=0,
          attribute_nodes=attribute_nodes, ref_set=ref_set)
    document.root_local = document.order[0]

    for ref, path in document._pending_paths:
        if ref.target_doc is None and ref.target_local not in document.explicit_ids:
            raise XmlFormatError(
                f"unresolvable reference {ref.target_local!r} "
                f"referenced from {path}",
                source=doc_id, path=path,
            )
    del document._pending_paths
    return document


def _walk(
    document: ParsedDocument,
    element: ET.Element,
    parent_local: Optional[str],
    path: str,
    position: int,
    attribute_nodes: bool,
    ref_set: set[str],
) -> None:
    element_path = f"{path}/{element.tag}[{position}]"
    explicit = element.attrib.get(ID_ATTRIBUTE)
    if explicit is not None:
        if "/" in explicit:
            raise XmlFormatError(
                f"explicit id {explicit!r} must not contain '/'",
                source=document.doc_id, path=element_path,
            )
        if explicit in document.explicit_ids:
            raise XmlFormatError(
                f"duplicate id {explicit!r} within one document",
                source=document.doc_id, path=element_path,
            )
        if explicit in document.labels:
            raise XmlFormatError(
                f"explicit id {explicit!r} collides with a synthetic id",
                source=document.doc_id, path=element_path,
            )
        local = explicit
        document.explicit_ids.add(explicit)
    elif parent_local is None:
        local = f".{element.tag}"
    else:
        local = f"{parent_local}.{element.tag}[{position}]"
    if local in document.labels:
        raise XmlFormatError(
            f"synthetic id {local!r} collides with an explicit id",
            source=document.doc_id, path=element_path,
        )
    text = element.text.strip() if element.text and element.text.strip() else None
    document.labels[local] = element.tag
    document.values[local] = text
    document.order.append(local)
    if parent_local is not None:
        document.tree_edges.append((parent_local, local))

    if not hasattr(document, "_pending_paths"):
        document._pending_paths = []
    for attr_name, raw in element.attrib.items():
        if attr_name == ID_ATTRIBUTE:
            continue
        if attr_name in ref_set:
            for token in raw.split():
                if "/" in token:
                    target_doc, target_local = token.split("/", 1)
                    if target_doc == document.doc_id:
                        target_doc = None  # self-scoped → intra
                else:
                    target_doc, target_local = None, token
                ref = ScopedRef(local, target_doc, target_local)
                document.refs.append(ref)
                document._pending_paths.append((ref, element_path))
        elif attribute_nodes:
            attr_local = f"{local}.@{attr_name}"
            if attr_local in document.labels:
                raise XmlFormatError(
                    f"synthetic id {attr_local!r} collides with an explicit id",
                    source=document.doc_id, path=element_path,
                )
            document.labels[attr_local] = attr_name
            document.values[attr_local] = raw
            document.order.append(attr_local)
            document.tree_edges.append((local, attr_local))

    tally: dict[str, int] = {}
    for child in element:
        child_position = tally.get(child.tag, 0)
        tally[child.tag] = child_position + 1
        _walk(document, child, parent_local=local, path=element_path,
              position=child_position, attribute_nodes=attribute_nodes,
              ref_set=ref_set)
