"""Corpus churn: seeded document arrival/expiry under live queries.

The churn workload drives a :class:`~repro.corpus.service.CorpusService`
through a randomized but fully seeded schedule of document operations —
arrivals, expiries and in-place replacements (produced by
:func:`mutate_document`) — while a closed loop of path queries keeps
reading the published snapshot.  Staleness is tracked as queue depth:
the number of compiled updates the writer has not applied yet.

The workload ends with the convergence check that anchors the whole
subsystem: after quiescence, the evolved corpus must fingerprint
identically to a from-scratch bulk load over the surviving document
texts.  For acyclic corpora the partition-inclusive fingerprint is
compared; for cyclic data under the 1-index family the maintained
result is minimal only up to split/merge quality, so the graph-only
fingerprint is the sound check (pass ``compare="graph"``).
"""

from __future__ import annotations

import random
import time
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional

from repro.corpus.service import CorpusService
from repro.workload.queries import QueryWorkload


def mutate_document(text: str, rng: random.Random) -> str:
    """Return a structurally perturbed version of *text*.

    Three moves, chosen at random: tweak a leaf's text, graft a fresh
    (id-free) child element somewhere, or delete a subtree that contains
    no ``id`` attribute anywhere — deleting an identified element could
    orphan intra-document references and make the result unparseable,
    which is not the failure mode churn is meant to exercise.
    """
    root = ET.fromstring(text)
    elements = list(root.iter())
    move = rng.randrange(3)

    if move == 0:  # tweak a leaf's text
        leaves = [el for el in elements if len(el) == 0]
        victim = rng.choice(leaves)
        victim.text = f"v{rng.randrange(10_000)}"
    elif move == 1:  # graft a fresh child
        parent = rng.choice(elements)
        child = ET.SubElement(parent, rng.choice(("note", "extra", "aux")))
        child.text = f"v{rng.randrange(10_000)}"
    else:  # delete an id-free subtree (root excluded)
        parent_of = {child: parent for parent in root.iter() for child in parent}
        id_free = [
            el
            for el in elements
            if el is not root
            and not any("id" in d.attrib for d in el.iter())
        ]
        if id_free:
            victim = rng.choice(id_free)
            parent_of[victim].remove(victim)
        else:  # nothing deletable; fall back to a text tweak
            victim = rng.choice(elements)
            victim.text = f"v{rng.randrange(10_000)}"
    return ET.tostring(root, encoding="unicode")


@dataclass
class ChurnReport:
    """What one churn run did and how stale the served index got."""

    steps: int = 0
    adds: int = 0
    removes: int = 0
    replaces: int = 0
    noop_replaces: int = 0
    updates_submitted: int = 0
    queries_served: int = 0
    #: queue depth sampled once per step (staleness proxy)
    depth_samples: list[int] = field(default_factory=list)
    converged: Optional[bool] = None
    final_fingerprint: str = ""
    scratch_fingerprint: str = ""

    @property
    def max_depth(self) -> int:
        """Peak sampled staleness."""
        return max(self.depth_samples, default=0)

    @property
    def mean_depth(self) -> float:
        """Mean sampled staleness."""
        if not self.depth_samples:
            return 0.0
        return sum(self.depth_samples) / len(self.depth_samples)

    def summary(self) -> str:
        """One-line digest for logs and benchmarks."""
        verdict = {True: "converged", False: "DIVERGED", None: "unchecked"}
        return (
            f"churn: {self.steps} steps ({self.adds} add / {self.removes} rm / "
            f"{self.replaces} repl), depth max={self.max_depth} "
            f"mean={self.mean_depth:.2f}, {self.queries_served} queries, "
            f"{verdict[self.converged]}"
        )


@dataclass
class CorpusChurnWorkload:
    """A seeded arrival/expiry/mutation schedule over a document pool.

    The pool is the universe of documents; at any instant a subset is
    resident.  Per step the workload picks one move — arrival of an
    absent document, expiry of a resident one, or replacement of a
    resident one with a mutated text — then serves a few queries and
    samples queue depth.  Expired documents re-arrive with their last
    text, so cross-document references exercise the dangling→resolved
    transition both ways.
    """

    pool: list[tuple[str, str]]
    steps: int = 60
    seed: int = 0
    #: relative weights of (add, remove, replace) among legal moves
    weights: tuple[float, float, float] = (1.0, 1.0, 2.0)
    queries_per_step: int = 2
    query_seed: int = 11
    #: keep at least this many documents resident
    min_resident: int = 1
    #: sleep after each step's queries, before sampling queue depth —
    #: gives a started background writer drain time, so the samples
    #: measure steady-state staleness rather than submit-burst size
    pace_seconds: float = 0.0

    def run(
        self,
        corpus: CorpusService,
        compare: str = "full",
        check_every: int = 0,
    ) -> ChurnReport:
        """Drive *corpus* (already loaded with the pool) through churn.

        ``compare`` selects the convergence fingerprint (``"full"`` =
        graph + partition, ``"graph"`` = graph only); ``check_every`` > 0
        additionally runs the catalog/index invariant oracle every that
        many steps (slow — meant for tests).
        """
        if compare not in ("full", "graph"):
            raise ValueError(f"unknown compare mode {compare!r}")
        rng = random.Random(self.seed)
        texts = dict(self.pool)
        report = ChurnReport()
        queries = QueryWorkload.generate(
            corpus.service.graph, count=24, seed=self.query_seed
        )

        for step in range(self.steps):
            resident = set(corpus.document_ids())
            absent = sorted(set(texts) - resident)
            moves = []
            if absent:
                moves.append(("add", self.weights[0]))
            if len(resident) > self.min_resident:
                moves.append(("remove", self.weights[1]))
            if resident:
                moves.append(("replace", self.weights[2]))
            move = _weighted_choice(rng, moves)

            if move == "add":
                doc_id = rng.choice(absent)
                corpus.add_document(doc_id, texts[doc_id])
                report.adds += 1
                report.updates_submitted += 1
            elif move == "remove":
                doc_id = rng.choice(sorted(resident))
                before = corpus.queue_depth()
                corpus.remove_document(doc_id)
                report.removes += 1
                report.updates_submitted += corpus.queue_depth() - before
            else:
                doc_id = rng.choice(sorted(resident))
                texts[doc_id] = mutate_document(texts[doc_id], rng)
                emitted = corpus.replace_document(doc_id, texts[doc_id])
                report.replaces += 1
                if emitted == 0:
                    report.noop_replaces += 1
                report.updates_submitted += emitted

            for _ in range(self.queries_per_step):
                corpus.query(queries.sample())
                report.queries_served += 1
            if self.pace_seconds:
                time.sleep(self.pace_seconds)
            report.depth_samples.append(corpus.queue_depth())
            report.steps += 1
            if check_every and (step + 1) % check_every == 0:
                corpus.await_quiescent()
                corpus.check()

        corpus.await_quiescent()
        self._check_convergence(corpus, texts, compare, report)
        return report

    def _check_convergence(
        self,
        corpus: CorpusService,
        texts: dict[str, str],
        compare: str,
        report: ChurnReport,
    ) -> None:
        surviving = [(doc_id, texts[doc_id]) for doc_id in corpus.document_ids()]
        scratch = CorpusService.bulk_load(
            surviving,
            config=corpus.service.config,
            attribute_nodes=corpus.attribute_nodes,
        )
        try:
            if compare == "full":
                report.final_fingerprint = corpus.fingerprint()
                report.scratch_fingerprint = scratch.fingerprint()
            else:
                report.final_fingerprint = corpus.graph_fingerprint()
                report.scratch_fingerprint = scratch.graph_fingerprint()
        finally:
            scratch.close()
        report.converged = (
            report.final_fingerprint == report.scratch_fingerprint
        )


def _weighted_choice(rng: random.Random, moves: list[tuple[str, float]]) -> str:
    total = sum(weight for _, weight in moves)
    pick = rng.random() * total
    for move, weight in moves:
        pick -= weight
        if pick <= 0:
            return move
    return moves[-1][0]
