"""Corpus engine: isolated multi-document ingest over one shared index.

See DESIGN.md §11.  The public surface:

* :func:`~repro.corpus.documents.parse_document` /
  :class:`~repro.corpus.documents.ParsedDocument` — file-scoped parsing;
* :class:`~repro.corpus.builder.CorpusBuilder` /
  :class:`~repro.corpus.builder.CorpusCatalog` — bulk ingest and the
  document→update compiler;
* :class:`~repro.corpus.service.CorpusService` — document-granular
  serving over :class:`~repro.service.service.IndexService`;
* :class:`~repro.corpus.churn.CorpusChurnWorkload` — seeded
  arrival/expiry workloads with convergence checking.
"""

from repro.corpus.builder import (
    CorpusBuilder,
    CorpusCatalog,
    DocumentManifest,
    apply_update_raw,
    corpus_fingerprint,
    corpus_graph_fingerprint,
)
from repro.corpus.churn import ChurnReport, CorpusChurnWorkload, mutate_document
from repro.corpus.documents import (
    ID_ATTRIBUTE,
    REF_ATTRIBUTES,
    ParsedDocument,
    ScopedRef,
    parse_document,
)
from repro.corpus.service import CorpusService

__all__ = [
    "ID_ATTRIBUTE",
    "REF_ATTRIBUTES",
    "ParsedDocument",
    "ScopedRef",
    "parse_document",
    "CorpusBuilder",
    "CorpusCatalog",
    "DocumentManifest",
    "apply_update_raw",
    "corpus_fingerprint",
    "corpus_graph_fingerprint",
    "CorpusService",
    "ChurnReport",
    "CorpusChurnWorkload",
    "mutate_document",
]
