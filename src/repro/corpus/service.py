"""Document-granular serving: :class:`CorpusService` over the index service.

The corpus facade owns a :class:`~repro.corpus.builder.CorpusCatalog`
and an :class:`~repro.service.service.IndexService` (or its durable
subclass).  Document operations parse, compile against the catalog, and
submit the resulting updates to the service's queue — nothing below the
facade knows documents exist, so guarded maintenance, coalescing, the
WAL, delta publication and replication all apply unchanged.

Two ingest paths share the compiler:

* :meth:`CorpusService.bulk_load` applies the compiled ops with raw
  graph surgery and *then* builds the index — one refinement pass over
  the finished corpus (the fast path measured by ``bench-corpus``);
* :meth:`add_document` / :meth:`replace_document` /
  :meth:`remove_document` submit the same ops through the service, so
  the index is maintained incrementally while queries keep serving.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.corpus.builder import (
    CorpusBuilder,
    CorpusCatalog,
    corpus_fingerprint,
    corpus_graph_fingerprint,
)
from repro.corpus.documents import ParsedDocument, parse_document
from repro.service.service import IndexService, ServiceConfig


class CorpusService:
    """A document store served by a structural index.

    All document mutators are serialised by one facade lock: compiles
    mutate the catalog eagerly (so a later compile can target oids an
    earlier one introduced), which makes compile→submit a critical
    section.  Queries and flushes go straight to the inner service.
    """

    def __init__(self, service: IndexService, catalog: CorpusCatalog,
                 attribute_nodes: bool = True):
        self.service = service
        self.catalog = catalog
        self.attribute_nodes = attribute_nodes
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        documents: Iterable[tuple[str, str]],
        *,
        config: Optional[ServiceConfig] = None,
        store_dir: Optional[str] = None,
        store_config=None,
        fault_injector=None,
        attribute_nodes: bool = True,
    ) -> "CorpusService":
        """Build a corpus from ``(doc_id, text)`` pairs, splice-then-refine.

        Every document subgraph is spliced under ROOT with raw graph
        surgery; the single refinement pass happens when the service
        constructor builds its index over the finished graph.  With
        *store_dir* the corpus is served durably (WAL + snapshots).
        """
        builder = CorpusBuilder(attribute_nodes)
        builder.add_all(documents)
        graph, catalog = builder.build()
        if store_dir is not None:
            from repro.store.service import DurableIndexService

            service = DurableIndexService(
                graph, store_dir, config=config, store_config=store_config,
                fault_injector=fault_injector,
            )
        else:
            service = IndexService(graph, config=config,
                                   fault_injector=fault_injector)
        return cls(service, catalog, attribute_nodes)

    @classmethod
    def empty(cls, **kwargs) -> "CorpusService":
        """An empty corpus (just ROOT), ready for incremental arrivals."""
        return cls.bulk_load([], **kwargs)

    # -- document operations -------------------------------------------

    def add_document(self, doc_id: str, text: str) -> ParsedDocument:
        """Parse, compile and enqueue one document arrival."""
        with self._lock:
            document = parse_document(doc_id, text, self.attribute_nodes)
            updates = self.catalog.compile_add(document, self.service.graph.root)
            for update in updates:
                self.service.submit(update)
            return document

    def remove_document(self, doc_id: str) -> None:
        """Compile and enqueue one document departure."""
        with self._lock:
            for update in self.catalog.compile_remove(doc_id):
                self.service.submit(update)

    def replace_document(self, doc_id: str, text: str) -> int:
        """Diff the new text against the resident version; enqueue the delta.

        Returns the number of updates emitted (0 for a no-op replace).
        """
        with self._lock:
            document = parse_document(doc_id, text, self.attribute_nodes)
            updates = self.catalog.compile_replace(
                document, self.service.graph.root
            )
            for update in updates:
                self.service.submit(update)
            return len(updates)

    # -- inspection ----------------------------------------------------

    def document_ids(self) -> list[str]:
        """Ids of all resident documents, sorted."""
        return self.catalog.document_ids()

    def has_document(self, doc_id: str) -> bool:
        """Whether *doc_id* is resident."""
        return doc_id in self.catalog.manifests

    def dangling_refs(self) -> list[tuple[str, str, str, str]]:
        """Currently unresolved cross-document references."""
        return self.catalog.dangling_refs()

    def await_quiescent(self) -> None:
        """Flush until the update queue is empty (synchronous catch-up)."""
        while self.service.flush() is not None:
            pass

    def extents(self) -> list[set[int]]:
        """The live partition blocks of the served index."""
        maintainer = self.service.guarded.maintainer
        family = getattr(maintainer, "family", None)
        if family is not None:
            return [set(e) for e in family.levels[-1].extents.values()]
        index = maintainer.index
        return [set(index.extent(inode)) for inode in index.inodes()]

    def graph_fingerprint(self) -> str:
        """Oid-independent digest of the corpus graph (no partition)."""
        return corpus_graph_fingerprint(self.service.graph, self.catalog)

    def fingerprint(self) -> str:
        """Oid-independent digest of graph *and* index partition."""
        return corpus_fingerprint(
            self.service.graph, self.catalog, self.extents()
        )

    def check(self) -> None:
        """Catalog↔graph and index invariants (test/debug oracle)."""
        self.catalog.check(self.service.graph)
        self.service.check()

    # -- service passthroughs ------------------------------------------

    def query(self, expression):
        """Serve a path query from the published snapshot."""
        return self.service.query(expression)

    def queue_depth(self) -> int:
        """Pending updates not yet applied (the staleness proxy)."""
        return self.service.queue_depth()

    def start(self) -> None:
        """Start the background writer."""
        self.service.start()

    def stop(self) -> None:
        """Stop the background writer."""
        self.service.stop()

    def close(self) -> None:
        """Stop and release the inner service."""
        self.service.close()

    def health(self) -> dict:
        """The inner service's health report."""
        return self.service.health()

    def __enter__(self) -> "CorpusService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
