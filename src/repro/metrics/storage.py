"""Storage accounting for Table 3.

Section 6's space argument: maintaining the whole A(0..k) family costs
little more than a stand-alone A(k)-index because extents and the
dnode → inode hash are stored *only at level k*; the coarser levels keep
just the refinement-tree edges and the inter-iedges.  Table 3 reports
both layouts in KB with every "dnode, inode, or pointer" at 4 bytes.

We count the same logical units:

stand-alone A(k)
    inode records + extent entries (one per dnode) + dnode→inode hash
    (key and value per dnode) + intra-iedges at level k (2 pointers each).

A(0..k) family (refinement-tree layout)
    the stand-alone A(k) cost, plus: inode records at levels 0..k-1,
    refinement-tree edges (one pointer per inode at levels 1..k), and
    inter-iedges between consecutive levels (2 pointers each).

These are representation-independent quantities — our in-memory
implementation additionally memoises per-level class maps for clarity
(see :mod:`repro.index.akindex`), which is *not* what Table 3 measures,
so the accounting is computed from the family's structure rather than
from ``sys.getsizeof``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.akindex import AkIndexFamily

#: bytes per dnode / inode / pointer, as in Section 7.2.
UNIT_BYTES = 4


@dataclass
class StorageEstimate:
    """Byte counts for Table 3's two layouts."""

    standalone_bytes: int
    family_bytes: int

    @property
    def standalone_kb(self) -> float:
        """Stand-alone A(k) layout, in KB."""
        return self.standalone_bytes / 1024

    @property
    def family_kb(self) -> float:
        """A(0..k) refinement-tree layout, in KB."""
        return self.family_bytes / 1024

    @property
    def overhead_fraction(self) -> float:
        """Additional storage of the family layout (Table 3's last row)."""
        if self.standalone_bytes == 0:
            return 0.0
        return self.family_bytes / self.standalone_bytes - 1.0


def estimate_storage(family: AkIndexFamily) -> StorageEstimate:
    """Compute Table 3's storage numbers for one A(k) family."""
    k = family.k
    num_dnodes = family.graph.num_nodes
    leaf_inodes = family.num_inodes(k)
    intra_iedges_k = family.count_intra_iedges(k)

    standalone_units = (
        leaf_inodes  # inode records
        + num_dnodes  # extent entries
        + 2 * num_dnodes  # dnode -> inode hash (key + value)
        + 2 * intra_iedges_k  # intra-iedges (source + target pointer)
    )

    upper_inodes = sum(family.num_inodes(i) for i in range(k))
    tree_edges = sum(family.num_inodes(i) for i in range(1, k + 1))
    inter_iedges = family.count_inter_iedges()
    family_units = (
        standalone_units
        + upper_inodes  # inode records at levels 0..k-1
        + tree_edges  # one parent pointer per inode at levels 1..k
        + 2 * inter_iedges  # inter-iedges (source + target pointer)
    )

    return StorageEstimate(
        standalone_bytes=standalone_units * UNIT_BYTES,
        family_bytes=family_units * UNIT_BYTES,
    )
