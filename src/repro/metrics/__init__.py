"""Metrics: index quality (Section 3), storage (Table 3), timing."""

from repro.metrics.quality import (
    ak_family_quality,
    ak_index_quality,
    minimum_1index_size_of,
    minimum_ak_size_of,
    one_index_quality,
    quality_from_sizes,
)
from repro.metrics.storage import UNIT_BYTES, StorageEstimate, estimate_storage
from repro.metrics.timing import Stopwatch, max_ms, mean_ms, p50_ms, p95_ms

__all__ = [
    "quality_from_sizes",
    "one_index_quality",
    "ak_index_quality",
    "ak_family_quality",
    "minimum_1index_size_of",
    "minimum_ak_size_of",
    "StorageEstimate",
    "estimate_storage",
    "UNIT_BYTES",
    "Stopwatch",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "max_ms",
]
