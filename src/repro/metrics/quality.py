"""The index-quality metric of Section 3.

    quality = (#inodes in the index) / (#inodes in the minimum index) - 1

"which we would like to keep as close to zero as possible" — the same
metric [8] uses, which makes the Figure 9/10/12/13 comparisons apples to
apples.  Computing the denominator means building the minimum index from
scratch, so the harness samples quality at intervals rather than after
every update.
"""

from __future__ import annotations

from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, bisimulation_partition


def quality_from_sizes(index_size: int, minimum_size: int) -> float:
    """The quality ratio given the two sizes."""
    if minimum_size <= 0:
        raise ValueError("minimum index size must be positive")
    if index_size < minimum_size:
        raise ValueError(
            f"index size {index_size} below the minimum {minimum_size}: "
            "the 'index' is not a valid index of this graph"
        )
    return index_size / minimum_size - 1.0


def one_index_quality(index: StructuralIndex) -> float:
    """Quality of a 1-index against the freshly computed minimum (O(m·d))."""
    minimum = len(set(bisimulation_partition(index.graph).values()))
    return quality_from_sizes(index.num_inodes, minimum)


def ak_index_quality(index: StructuralIndex, k: int) -> float:
    """Quality of a stand-alone A(k)-index against the fresh minimum."""
    minimum = len(set(ak_class_maps(index.graph, k)[k].values()))
    return quality_from_sizes(index.num_inodes, minimum)


def ak_family_quality(family: AkIndexFamily) -> float:
    """Quality of the leaf level of an A(k) family (0.0 when minimum)."""
    minimum = len(set(ak_class_maps(family.graph, family.k)[family.k].values()))
    return quality_from_sizes(family.num_inodes(family.k), minimum)


def minimum_1index_size_of(graph: DataGraph) -> int:
    """Denominator helper: size of the minimum 1-index."""
    return len(set(bisimulation_partition(graph).values()))


def minimum_ak_size_of(graph: DataGraph, k: int) -> int:
    """Denominator helper: size of the minimum A(k)-index."""
    return len(set(ak_class_maps(graph, k)[k].values()))
