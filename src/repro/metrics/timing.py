"""Small timing helpers for the experiment harness.

The paper reports wall-clock milliseconds (Figure 11, Table 2); the
harness accumulates per-update times with :class:`Stopwatch` and reports
means with :func:`mean_ms` and tails with :func:`p50_ms`/:func:`p95_ms`/
:func:`max_ms`.  ``perf_counter`` is used throughout — monotonic and the
highest resolution the platform offers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.metrics import percentile


@dataclass
class Stopwatch:
    """Accumulates durations of repeated timed sections.

    A lap is recorded only when the timed block exits cleanly: if the
    block raises, the lap is discarded (a failing update must not
    pollute ``total_seconds``/``laps``) and the exception propagates.
    :meth:`discard` does the same for manually abandoned laps.
    """

    total_seconds: float = 0.0
    laps: int = 0
    lap_seconds: list[float] = field(default_factory=list)
    keep_laps: bool = False
    #: duration of the most recent completed lap (None before any lap)
    last_seconds: float | None = None
    _started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._started is not None, "stopwatch was not started"
        if exc_type is not None:
            self.discard()
            return  # propagate the exception
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total_seconds += elapsed
        self.laps += 1
        self.last_seconds = elapsed
        if self.keep_laps:
            self.lap_seconds.append(elapsed)

    def discard(self) -> None:
        """Abandon the running lap without recording anything."""
        self._started = None

    @property
    def mean_seconds(self) -> float:
        """Mean lap duration in seconds (0.0 before any lap)."""
        if self.laps == 0:
            return 0.0
        return self.total_seconds / self.laps

    @property
    def mean_ms(self) -> float:
        """Mean lap duration in milliseconds."""
        return self.mean_seconds * 1000

    @property
    def total_ms(self) -> float:
        """Total accumulated milliseconds."""
        return self.total_seconds * 1000


def mean_ms(seconds: list[float]) -> float:
    """Mean of a list of second-durations, in milliseconds."""
    if not seconds:
        return 0.0
    return sum(seconds) / len(seconds) * 1000


def p50_ms(seconds: list[float]) -> float:
    """Median of a list of second-durations, in milliseconds."""
    return percentile(seconds, 50) * 1000


def p95_ms(seconds: list[float]) -> float:
    """95th percentile of a list of second-durations, in milliseconds."""
    return percentile(seconds, 95) * 1000


def max_ms(seconds: list[float]) -> float:
    """Maximum of a list of second-durations, in milliseconds (0.0 if empty)."""
    if not seconds:
        return 0.0
    return max(seconds) * 1000
