"""Small timing helpers for the experiment harness.

The paper reports wall-clock milliseconds (Figure 11, Table 2); the
harness accumulates per-update times with :class:`Stopwatch` and reports
means with :func:`mean_ms`.  ``perf_counter`` is used throughout —
monotonic and the highest resolution the platform offers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates durations of repeated timed sections."""

    total_seconds: float = 0.0
    laps: int = 0
    lap_seconds: list[float] = field(default_factory=list)
    keep_laps: bool = False
    _started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None, "stopwatch was not started"
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total_seconds += elapsed
        self.laps += 1
        if self.keep_laps:
            self.lap_seconds.append(elapsed)

    @property
    def mean_seconds(self) -> float:
        """Mean lap duration in seconds (0.0 before any lap)."""
        if self.laps == 0:
            return 0.0
        return self.total_seconds / self.laps

    @property
    def mean_ms(self) -> float:
        """Mean lap duration in milliseconds."""
        return self.mean_seconds * 1000

    @property
    def total_ms(self) -> float:
        """Total accumulated milliseconds."""
        return self.total_seconds * 1000


def mean_ms(seconds: list[float]) -> float:
    """Mean of a list of second-durations, in milliseconds."""
    if not seconds:
        return 0.0
    return sum(seconds) / len(seconds) * 1000
