"""JSON-friendly (de)serialisation of data graphs.

Structural indexes are cheap to rebuild but data graphs are not always
re-parseable (they may have been assembled programmatically), so the
library offers a plain-dict wire format::

    {
      "format_version": 2,
      "labels": ["chapter", "section", ...],
      "nodes": [[oid, label-id, value-or-null], ...],
      "edges": [[source, target, "tree"|"idref"], ...],
      "root": oid-or-null
    }

Values must be JSON-serialisable; everything else round-trips exactly
(including oids, which index serialisation relies on).

Since v2 node labels are indexes into a sorted ``labels`` table (XML
element names repeat massively; inlining them dominated v1 payload
size).  The reader also accepts an inline string where a label id is
expected, so hand-edited payloads stay loadable.  v0/v1 payloads (no
``labels`` table, inline labels) load unchanged.

``format_version`` makes persisted payloads (checkpoints, WAL subgraph
operations — see :mod:`repro.store`) evolvable: the reader accepts a
missing version as v0 (the pre-versioned format, identical minus the
field) and raises :class:`SerializationError` on versions newer than it
understands, instead of misparsing a future layout.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.exceptions import GraphError, SerializationError
from repro.graph.datagraph import ROOT_LABEL, DataGraph, EdgeKind

#: current graph wire-format version; bump on structural changes
GRAPH_FORMAT_VERSION = 2


def check_format_version(data: Any, current: int, error: type) -> int:
    """Validate a payload's ``format_version`` against *current*.

    Shared by the graph and index loaders: a missing field reads as v0
    (every pre-versioned payload), anything newer than *current* raises
    *error* — readers must never guess at a future layout.  Returns the
    version so loaders can branch on it once v1+ diverges.
    """
    if not isinstance(data, dict):
        return 0
    version = data.get("format_version", 0)
    if not isinstance(version, int) or isinstance(version, bool) or version < 0:
        raise error(f"malformed format_version {version!r}: expected a non-negative int")
    if version > current:
        raise error(
            f"payload format_version {version} is newer than the supported "
            f"version {current}; upgrade the library to read it"
        )
    return version


def graph_to_dict(graph: DataGraph) -> dict[str, Any]:
    """Convert a graph to the plain-dict wire format."""
    labels = sorted({graph.label(oid) for oid in graph.nodes()})
    label_id = {label: i for i, label in enumerate(labels)}
    return {
        "format_version": GRAPH_FORMAT_VERSION,
        "labels": labels,
        "nodes": [
            [oid, label_id[graph.label(oid)], graph.value(oid)]
            for oid in sorted(graph.nodes())
        ],
        "edges": [
            [source, target, graph.edge_kind(source, target).value]
            for source, target in sorted(graph.edges())
        ],
        "root": graph.root if graph.has_root else None,
    }


def graph_from_dict(data: dict[str, Any]) -> DataGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Malformed payloads — wrong shapes, duplicate oids, dangling edge
    endpoints, unknown edge kinds, a missing root node — raise
    :class:`SerializationError` (or another :class:`ReproError`
    subclass) with a descriptive message, never a bare ``KeyError`` /
    ``TypeError`` / ``ValueError``.
    """
    version = check_format_version(data, GRAPH_FORMAT_VERSION, SerializationError)
    graph = DataGraph()
    try:
        nodes = data["nodes"]
        edges = data["edges"]
        root = data.get("root")
        labels = data.get("labels", []) if version >= 2 else []
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed graph payload: {exc!r}") from exc
    if version >= 2 and (
        not isinstance(labels, list) or any(not isinstance(l, str) for l in labels)
    ):
        raise SerializationError("malformed label table: expected a list of strings")
    for entry in nodes:
        try:
            oid, label, value = entry
        except (ValueError, TypeError) as exc:
            raise SerializationError(
                f"malformed node entry {entry!r}: expected [oid, label, value]"
            ) from exc
        if version >= 2 and not isinstance(label, str):
            # Labels are table indexes since v2; inline strings (above)
            # are still honoured for hand-edited payloads.
            if (
                not isinstance(label, int)
                or isinstance(label, bool)
                or not 0 <= label < len(labels)
            ):
                raise SerializationError(
                    f"malformed node entry {entry!r}: label id {label!r} is not "
                    f"an index into the label table"
                )
            label = labels[label]
        try:
            if root is not None and oid == root:
                if label != ROOT_LABEL:
                    raise GraphError(f"root node {oid} must carry the ROOT label")
                graph.add_root(oid=oid)
            else:
                graph.add_node(label, value, oid=oid)
        except TypeError as exc:
            raise SerializationError(f"malformed node entry {entry!r}: {exc}") from exc
    if root is not None and not graph.has_root:
        raise SerializationError(f"root oid {root!r} is not among the nodes")
    for entry in edges:
        try:
            source, target, kind = entry
            kind = EdgeKind(kind)
        except (ValueError, TypeError) as exc:
            raise SerializationError(
                f"malformed edge entry {entry!r}: expected [source, target, kind]"
            ) from exc
        graph.add_edge(source, target, kind)
    return graph


def dump_graph(graph: DataGraph, fp: TextIO) -> None:
    """Write a graph as JSON to an open text file."""
    json.dump(graph_to_dict(graph), fp)


def load_graph(fp: TextIO) -> DataGraph:
    """Read a graph from JSON written by :func:`dump_graph`."""
    return graph_from_dict(json.load(fp))


def dumps_graph(graph: DataGraph) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph))


def loads_graph(text: str) -> DataGraph:
    """Deserialise a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
