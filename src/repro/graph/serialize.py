"""JSON-friendly (de)serialisation of data graphs.

Structural indexes are cheap to rebuild but data graphs are not always
re-parseable (they may have been assembled programmatically), so the
library offers a plain-dict wire format::

    {
      "nodes": [[oid, label, value-or-null], ...],
      "edges": [[source, target, "tree"|"idref"], ...],
      "root": oid-or-null
    }

Values must be JSON-serialisable; everything else round-trips exactly
(including oids, which index serialisation relies on).
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.exceptions import GraphError, SerializationError
from repro.graph.datagraph import ROOT_LABEL, DataGraph, EdgeKind


def graph_to_dict(graph: DataGraph) -> dict[str, Any]:
    """Convert a graph to the plain-dict wire format."""
    return {
        "nodes": [
            [oid, graph.label(oid), graph.value(oid)] for oid in sorted(graph.nodes())
        ],
        "edges": [
            [source, target, graph.edge_kind(source, target).value]
            for source, target in sorted(graph.edges())
        ],
        "root": graph.root if graph.has_root else None,
    }


def graph_from_dict(data: dict[str, Any]) -> DataGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Malformed payloads — wrong shapes, duplicate oids, dangling edge
    endpoints, unknown edge kinds, a missing root node — raise
    :class:`SerializationError` (or another :class:`ReproError`
    subclass) with a descriptive message, never a bare ``KeyError`` /
    ``TypeError`` / ``ValueError``.
    """
    graph = DataGraph()
    try:
        nodes = data["nodes"]
        edges = data["edges"]
        root = data.get("root")
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed graph payload: {exc!r}") from exc
    for entry in nodes:
        try:
            oid, label, value = entry
        except (ValueError, TypeError) as exc:
            raise SerializationError(
                f"malformed node entry {entry!r}: expected [oid, label, value]"
            ) from exc
        try:
            if root is not None and oid == root:
                if label != ROOT_LABEL:
                    raise GraphError(f"root node {oid} must carry the ROOT label")
                graph.add_root(oid=oid)
            else:
                graph.add_node(label, value, oid=oid)
        except TypeError as exc:
            raise SerializationError(f"malformed node entry {entry!r}: {exc}") from exc
    if root is not None and not graph.has_root:
        raise SerializationError(f"root oid {root!r} is not among the nodes")
    for entry in edges:
        try:
            source, target, kind = entry
            kind = EdgeKind(kind)
        except (ValueError, TypeError) as exc:
            raise SerializationError(
                f"malformed edge entry {entry!r}: expected [source, target, kind]"
            ) from exc
        graph.add_edge(source, target, kind)
    return graph


def dump_graph(graph: DataGraph, fp: TextIO) -> None:
    """Write a graph as JSON to an open text file."""
    json.dump(graph_to_dict(graph), fp)


def load_graph(fp: TextIO) -> DataGraph:
    """Read a graph from JSON written by :func:`dump_graph`."""
    return graph_from_dict(json.load(fp))


def dumps_graph(graph: DataGraph) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph))


def loads_graph(text: str) -> DataGraph:
    """Deserialise a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
