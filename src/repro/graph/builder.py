"""Fluent construction of small data graphs.

The algorithms in this library are easiest to test against hand-drawn
graphs like the running examples of the paper (Figures 2, 4, 5).  The
:class:`GraphBuilder` lets those figures be transcribed almost verbatim::

    g = (GraphBuilder()
         .node(1, "A").node(2, "A")
         .node(3, "B").node(4, "B")
         .edge("root", 1).edge("root", 2)
         .edge(1, 3).edge(2, 4)
         .build())

String node keys are allowed for readability; they are mapped to integer
oids on :meth:`build` (the special key ``"root"`` maps to the ROOT node,
which is always created).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Union

from repro.exceptions import GraphError
from repro.graph.datagraph import DataGraph, EdgeKind

NodeKey = Union[int, str]

#: Reserved builder key that refers to the root node.
ROOT_KEY = "root"


class GraphBuilder:
    """Incrementally describe a data graph, then :meth:`build` it.

    Nodes may be declared explicitly with :meth:`node` or implicitly by
    mentioning a new key in :meth:`edge` (implicit nodes get their key as
    label, so ``.edge("root", "person")`` just works for quick sketches).
    """

    def __init__(self) -> None:
        self._labels: dict[NodeKey, str] = {}
        self._values: dict[NodeKey, Any] = {}
        self._edges: list[tuple[NodeKey, NodeKey, EdgeKind]] = []

    def node(self, key: NodeKey, label: Optional[str] = None, value: Any = None) -> "GraphBuilder":
        """Declare a node.  *label* defaults to ``str(key)``."""
        if key == ROOT_KEY:
            raise GraphError("'root' is reserved for the ROOT node")
        if key in self._labels:
            raise GraphError(f"node key {key!r} declared twice")
        self._labels[key] = label if label is not None else str(key)
        if value is not None:
            self._values[key] = value
        return self

    def nodes(self, *keys: NodeKey, label: Optional[str] = None) -> "GraphBuilder":
        """Declare several nodes sharing one label (or their own keys)."""
        for key in keys:
            self.node(key, label)
        return self

    def edge(
        self,
        source: NodeKey,
        target: NodeKey,
        kind: EdgeKind = EdgeKind.TREE,
    ) -> "GraphBuilder":
        """Declare the dedge ``source -> target``.

        Unknown keys are implicitly declared with their key as label.
        """
        for key in (source, target):
            if key != ROOT_KEY and key not in self._labels:
                self.node(key)
        self._edges.append((source, target, kind))
        return self

    def idref(self, source: NodeKey, target: NodeKey) -> "GraphBuilder":
        """Declare an IDREF dedge (sugar for ``edge(..., EdgeKind.IDREF)``)."""
        return self.edge(source, target, EdgeKind.IDREF)

    def edges(self, *pairs: tuple[NodeKey, NodeKey]) -> "GraphBuilder":
        """Declare several TREE dedges at once."""
        for source, target in pairs:
            self.edge(source, target)
        return self

    def build(self, attach_orphans_to_root: bool = False) -> DataGraph:
        """Materialise the graph.

        Returns a :class:`DataGraph` whose root is the ``"root"`` key.  With
        *attach_orphans_to_root* set, every declared node without incoming
        edges gains a TREE edge from the root, which is convenient for
        sketching partition examples that do not care about reachability.
        """
        graph = DataGraph()
        mapping: dict[NodeKey, int] = {ROOT_KEY: graph.add_root()}
        for key, label in self._labels.items():
            mapping[key] = graph.add_node(label, self._values.get(key))
        for source, target, kind in self._edges:
            graph.add_edge(mapping[source], mapping[target], kind)
        if attach_orphans_to_root:
            for key in self._labels:
                oid = mapping[key]
                if graph.in_degree(oid) == 0:
                    graph.add_edge(graph.root, oid)
        self._mapping = mapping
        return graph

    def oid(self, key: NodeKey) -> int:
        """After :meth:`build`, translate a builder key to its oid."""
        try:
            return self._mapping[key]
        except AttributeError:  # pragma: no cover - misuse guard
            raise GraphError("call build() before oid()") from None
