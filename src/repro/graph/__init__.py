"""Data-graph substrate: the XML data model of Section 3."""

from repro.graph.builder import GraphBuilder
from repro.graph.datagraph import DELETE_LABEL, ROOT_LABEL, DataGraph, EdgeKind
from repro.graph.traversal import (
    bfs_order,
    count_cycle_edges,
    descendants_within,
    dfs_order,
    graph_depth,
    is_acyclic,
    reachable_from,
    strongly_connected_components,
    topological_order,
    unreachable_nodes,
)
from repro.graph.serialize import (
    dump_graph,
    dumps_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads_graph,
)
from repro.graph.xml_io import describe, parse_documents, parse_xml, to_xml

__all__ = [
    "DataGraph",
    "EdgeKind",
    "GraphBuilder",
    "ROOT_LABEL",
    "DELETE_LABEL",
    "bfs_order",
    "dfs_order",
    "descendants_within",
    "reachable_from",
    "is_acyclic",
    "topological_order",
    "strongly_connected_components",
    "count_cycle_edges",
    "graph_depth",
    "unreachable_nodes",
    "parse_xml",
    "parse_documents",
    "to_xml",
    "describe",
    "graph_to_dict",
    "graph_from_dict",
    "dump_graph",
    "load_graph",
    "dumps_graph",
    "loads_graph",
]
