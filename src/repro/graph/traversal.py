"""Traversal and structure utilities over :class:`DataGraph`.

These are the substrate routines the paper's algorithms and experiments
rely on:

* BFS / DFS orders and bounded-depth descendant sets (the "simple"
  A(k) baseline needs descendants of ``v`` up to depth ``k - 1``);
* acyclicity testing and topological order (Theorem 1 separates the
  acyclic and cyclic cases; Lemma 4's proof walks a topological order);
* *cyclicity* measurement in the paper's sense (fraction of cycle-inducing
  reference edges remaining) is handled by the workload layer; here we
  provide the graph-theoretic building blocks.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Iterator

from repro.exceptions import GraphError
from repro.graph.datagraph import DataGraph


def bfs_order(graph: DataGraph, start: int) -> list[int]:
    """Nodes reachable from *start* in breadth-first order."""
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for child in graph.iter_succ(node):
            if child not in seen:
                seen.add(child)
                order.append(child)
                queue.append(child)
    return order


def dfs_order(graph: DataGraph, start: int) -> list[int]:
    """Nodes reachable from *start* in (preorder) depth-first order."""
    seen: set[int] = set()
    order: list[int] = []
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reversed for a stable, child-insertion-friendly preorder.
        stack.extend(sorted(graph.iter_succ(node), reverse=True))
    return order


def reachable_from(graph: DataGraph, start: int) -> set[int]:
    """The set of nodes reachable from *start* (including it)."""
    return set(bfs_order(graph, start))


def descendants_within(graph: DataGraph, start: int, depth: int) -> set[int]:
    """Descendants of *start* within *depth* edges (excluding *start*).

    ``depth <= 0`` yields the empty set.  This is the affected region the
    simple A(k) update algorithm of Section 7.2 searches ("descendants of
    v up to a maximum depth of k-1").
    """
    if depth <= 0:
        return set()
    found: set[int] = set()
    frontier = {start}
    for _ in range(depth):
        next_frontier: set[int] = set()
        for node in frontier:
            for child in graph.iter_succ(node):
                if child != start and child not in found:
                    found.add(child)
                    next_frontier.add(child)
        if not next_frontier:
            break
        frontier = next_frontier
    return found


def is_acyclic(graph: DataGraph) -> bool:
    """Whether the data graph (all nodes, not just reachable) is a DAG."""
    try:
        topological_order(graph)
    except GraphError:
        return False
    return True


def topological_order(graph: DataGraph) -> list[int]:
    """Kahn's algorithm over the whole node set.

    Raises :class:`GraphError` if the graph contains a cycle.
    """
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    queue = deque(node for node, deg in in_deg.items() if deg == 0)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in graph.iter_succ(node):
            in_deg[child] -= 1
            if in_deg[child] == 0:
                queue.append(child)
    if len(order) != graph.num_nodes:
        raise GraphError("graph contains a cycle; no topological order exists")
    return order


def strongly_connected_components(graph: DataGraph) -> list[set[int]]:
    """Tarjan's SCC algorithm (iterative), over the whole node set.

    Used by tests and by the cyclicity diagnostics: a graph is acyclic iff
    every SCC is a singleton without a self-loop.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        work: list[tuple[int, Iterator[int]]] = [(root, graph.iter_succ(root))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, graph.iter_succ(child)))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def count_cycle_edges(graph: DataGraph) -> int:
    """Number of edges inside non-trivial SCCs (a cheap cyclicity proxy)."""
    comp_of: dict[int, int] = {}
    for i, comp in enumerate(strongly_connected_components(graph)):
        for node in comp:
            comp_of[node] = i
    return sum(1 for s, t in graph.edges() if comp_of[s] == comp_of[t])


def unreachable_nodes(graph: DataGraph) -> set[int]:
    """Nodes not reachable from the root (diagnostic for workloads)."""
    if not graph.has_root:
        return set(graph.nodes())
    return set(graph.nodes()) - reachable_from(graph, graph.root)


def graph_depth(graph: DataGraph) -> int:
    """Length of the longest shortest-path from the root (BFS depth)."""
    if not graph.has_root:
        raise GraphError("graph has no root")
    depth = 0
    seen = {graph.root}
    frontier = [graph.root]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            for child in graph.iter_succ(node):
                if child not in seen:
                    seen.add(child)
                    next_frontier.append(child)
        if next_frontier:
            depth += 1
        frontier = next_frontier
    return depth


def for_each_edge_bfs(
    graph: DataGraph, start: int, visit: Callable[[int, int], None]
) -> None:
    """Invoke *visit(parent, child)* for every edge reached in BFS order.

    Every edge whose source is reachable is visited exactly once.
    """
    for node in bfs_order(graph, start):
        for child in graph.iter_succ(node):
            visit(node, child)


def induced_edge_count(graph: DataGraph, nodes: Iterable[int]) -> int:
    """Number of edges with both endpoints in *nodes*."""
    node_set = set(nodes)
    return sum(
        1 for node in node_set for child in graph.iter_succ(node) if child in node_set
    )
