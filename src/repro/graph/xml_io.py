"""XML <-> data graph conversion.

Section 3 of the paper models an XML document as a rooted, labeled digraph
whose solid edges are element containment and whose dashed edges are
IDREF references (Figure 1).  This module realises that mapping on top of
the standard library's :mod:`xml.etree.ElementTree`:

* every element becomes a dnode labeled with its tag;
* every attribute becomes a child dnode labeled with the attribute name
  whose value is the attribute text (attributes that *define* ids or
  *are* references are treated specially, below);
* element text becomes the dnode's value;
* an attribute named ``id`` registers the element under that identifier;
* attributes named ``idref`` / ``idrefs`` (or listed in *ref_attributes*)
  create IDREF dedges from the element to the referenced element(s).

A database of several documents becomes one graph with an artificial ROOT
connecting the individual document roots, exactly as the paper states.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.exceptions import XmlFormatError
from repro.graph.datagraph import ROOT_LABEL, DataGraph, EdgeKind

#: Attribute names that define an element identifier.
DEFAULT_ID_ATTRIBUTES = ("id",)

#: Attribute names whose value references other elements' identifiers.
DEFAULT_REF_ATTRIBUTES = ("idref", "idrefs", "ref", "person", "open_auction")


def parse_xml(
    text: str,
    id_attributes: Sequence[str] = DEFAULT_ID_ATTRIBUTES,
    ref_attributes: Sequence[str] = DEFAULT_REF_ATTRIBUTES,
    attribute_nodes: bool = True,
) -> DataGraph:
    """Parse one XML document into a :class:`DataGraph`.

    The document element becomes a child of the artificial ROOT node.
    Unresolvable references raise :class:`XmlFormatError`.
    """
    return parse_documents([text], id_attributes, ref_attributes, attribute_nodes)


def parse_documents(
    texts: Iterable[str],
    id_attributes: Sequence[str] = DEFAULT_ID_ATTRIBUTES,
    ref_attributes: Sequence[str] = DEFAULT_REF_ATTRIBUTES,
    attribute_nodes: bool = True,
    names: Optional[Sequence[str]] = None,
) -> DataGraph:
    """Parse several XML documents into one data graph with a shared ROOT.

    Identifiers share one registry across documents (that is what makes
    cross-document IDREFs resolvable here); a colliding id — within one
    document or across two — is an error either way, but the message
    names the offending document's ordinal (and its entry in *names*,
    when given) and distinguishes the two cases.  For file-scoped id
    isolation use :mod:`repro.corpus` instead.
    """
    graph = DataGraph()
    root = graph.add_root()
    by_id: dict[str, int] = {}
    pending_refs: list[tuple[int, str, str, int, Optional[str]]] = []
    id_set = set(id_attributes)
    ref_set = set(ref_attributes)

    for ordinal, text in enumerate(texts):
        name = names[ordinal] if names is not None and ordinal < len(names) else None
        try:
            element = ET.fromstring(text)
        except ET.ParseError as exc:
            raise XmlFormatError(
                f"malformed XML: {exc}", source=name, ordinal=ordinal
            ) from exc
        _walk(
            graph, root, element, by_id, pending_refs, id_set, ref_set,
            attribute_nodes, path="", sibling_tally={}, document_ids=set(),
            ordinal=ordinal, name=name,
        )

    for source, ident, path, ordinal, name in pending_refs:
        target = by_id.get(ident)
        if target is None:
            raise XmlFormatError(
                f"unresolvable IDREF {ident!r} referenced from {path}",
                source=name, ordinal=ordinal, path=path,
            )
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, EdgeKind.IDREF)
    return graph


def _walk(
    graph: DataGraph,
    parent: int,
    element: ET.Element,
    by_id: dict[str, int],
    pending_refs: list[tuple[int, str, str, int, Optional[str]]],
    id_set: set[str],
    ref_set: set[str],
    attribute_nodes: bool,
    path: str,
    sibling_tally: dict[str, int],
    document_ids: set[str],
    ordinal: int,
    name: Optional[str],
) -> int:
    position = sibling_tally.get(element.tag, 0)
    sibling_tally[element.tag] = position + 1
    element_path = f"{path}/{element.tag}[{position}]"
    text = element.text.strip() if element.text and element.text.strip() else None
    oid = graph.add_node(element.tag, value=text)
    graph.add_edge(parent, oid)
    for attr_name, raw in element.attrib.items():
        if attr_name in id_set:
            if raw in document_ids:
                raise XmlFormatError(
                    f"duplicate id {raw!r} within one document",
                    source=name, ordinal=ordinal, path=element_path,
                )
            if raw in by_id:
                raise XmlFormatError(
                    f"id {raw!r} already defined by an earlier document "
                    "(repro.corpus keeps ids file-scoped)",
                    source=name, ordinal=ordinal, path=element_path,
                )
            document_ids.add(raw)
            by_id[raw] = oid
        elif attr_name in ref_set:
            for ident in raw.split():
                pending_refs.append((oid, ident, element_path, ordinal, name))
        elif attribute_nodes:
            attr_oid = graph.add_node(attr_name, value=raw)
            graph.add_edge(oid, attr_oid)
    child_tally: dict[str, int] = {}
    for child in element:
        _walk(
            graph, oid, child, by_id, pending_refs, id_set, ref_set,
            attribute_nodes, path=element_path, sibling_tally=child_tally,
            document_ids=document_ids, ordinal=ordinal, name=name,
        )
    return oid


def to_xml(graph: DataGraph, indent: bool = False) -> str:
    """Serialise a *tree-shaped* data graph back to XML text.

    Only TREE edges are followed for nesting; IDREF edges are emitted as
    ``idref`` attributes pointing at generated ``id`` attributes.  Nodes
    reachable via more than one TREE edge, or TREE cycles, are rejected
    because they have no faithful XML nesting.
    """
    root = graph.root
    doc_children = [
        child
        for child in sorted(graph.iter_succ(root))
        if graph.edge_kind(root, child) is EdgeKind.TREE
    ]
    if len(doc_children) != 1:
        raise XmlFormatError(
            f"serialisation needs exactly one document element, found {len(doc_children)}"
        )

    # Give every IDREF target a stable id attribute.
    ids: dict[int, str] = {}
    for source, target in graph.edges_of_kind(EdgeKind.IDREF):
        ids.setdefault(target, f"n{target}")

    visiting: set[int] = set()
    built: set[int] = set()

    def build(oid: int) -> ET.Element:
        if oid in visiting:
            raise XmlFormatError("TREE edges form a cycle; cannot serialise")
        if oid in built:
            raise XmlFormatError("node has multiple TREE parents; cannot serialise")
        visiting.add(oid)
        element = ET.Element(graph.label(oid))
        if graph.value(oid) is not None:
            element.text = str(graph.value(oid))
        if oid in ids:
            element.set("id", ids[oid])
        refs = [
            ids[child]
            for child in sorted(graph.iter_succ(oid))
            if graph.edge_kind(oid, child) is EdgeKind.IDREF
        ]
        if refs:
            element.set("idrefs" if len(refs) > 1 else "idref", " ".join(refs))
        for child in sorted(graph.iter_succ(oid)):
            if graph.edge_kind(oid, child) is EdgeKind.TREE:
                element.append(build(child))
        visiting.discard(oid)
        built.add(oid)
        return element

    tree = ET.ElementTree(build(doc_children[0]))
    if indent:
        ET.indent(tree)
    buffer = io.BytesIO()
    tree.write(buffer, encoding="utf-8", xml_declaration=False)
    return buffer.getvalue().decode("utf-8")


def roundtrip(graph: DataGraph) -> DataGraph:
    """Serialise then re-parse a graph (testing helper)."""
    return parse_xml(
        to_xml(graph),
        id_attributes=("id",),
        ref_attributes=("idref", "idrefs"),
        attribute_nodes=False,
    )


def describe(graph: DataGraph) -> str:
    """A short human-readable summary, in the style of the paper's Section 7.

    >>> from repro.graph.builder import GraphBuilder
    >>> g = GraphBuilder().edge("root", "a").build()
    >>> print(describe(g))
    2 dnodes, 1 dedges (0 IDREF), 2 labels
    """
    idref = sum(1 for _ in graph.edges_of_kind(EdgeKind.IDREF))
    return (
        f"{graph.num_nodes} dnodes, {graph.num_edges} dedges "
        f"({idref} IDREF), {len(graph.labels())} labels"
    )


def root_label() -> str:
    """The distinguished root label (re-exported for API symmetry)."""
    return ROOT_LABEL
