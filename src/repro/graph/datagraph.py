"""The data-graph model of Section 3 of the paper.

XML (and other semistructured data) is modelled as a directed, labeled
graph ``G = (V, E, root, Sigma, label, oid, value)``:

* each node ("dnode") carries a string *label*, a unique integer *oid*,
  and an optional *value*;
* each edge ("dedge") represents either an object–subobject (tree) or an
  IDREF (reference) relationship;
* a single distinguished root node is labeled ``ROOT`` and has no incoming
  edges.

The class below is a plain adjacency-set digraph tuned for the access
patterns of the index algorithms: O(1) membership tests, O(1) edge
insert/delete, and cheap iteration over successors (``succ``) and
predecessors (``pred``).  Predecessor sets are first-class because the
1-index stability condition is expressed in terms of parents.

Edges carry a *kind* flag (:data:`EdgeKind.TREE` or :data:`EdgeKind.IDREF`)
so workloads can manipulate only reference edges, exactly as the paper's
experiments do ("we first remove 20% of all the IDREF edges").  The index
algorithms themselves are kind-agnostic: a dedge is a dedge.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterable, Iterator
from typing import Any, Optional

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    RootError,
)

#: Distinguished label of the single root node (Section 3 of the paper).
ROOT_LABEL = "ROOT"

#: Distinguished label used to mark subgraphs scheduled for deletion
#: (Section 5.2: "Have a special node with a distinguished label DELETE").
DELETE_LABEL = "DELETE"


class EdgeKind(enum.Enum):
    """Provenance of a dedge in the XML data model."""

    #: Object–subobject (containment) edge: the XML element tree.
    TREE = "tree"
    #: IDREF/reference edge: cross-references between elements.
    IDREF = "idref"


class DataGraph:
    """A directed, labeled data graph with a single distinguished root.

    Nodes are identified by integer oids.  The graph stores, per node, the
    label, the optional value, and adjacency as successor/predecessor sets.
    Edge kinds are kept in a side dictionary keyed by ``(source, target)``.

    The class enforces the data-model invariants lazily where cheap
    (duplicate nodes/edges, missing endpoints) and provides
    :meth:`check_invariants` for the expensive ones (single root, root has
    no in-edges, reachability is *not* required by the model and is not
    enforced).

    Examples
    --------
    >>> g = DataGraph()
    >>> r = g.add_root()
    >>> a = g.add_node("A")
    >>> g.add_edge(r, a)
    >>> g.label(a)
    'A'
    >>> sorted(g.succ(r))
    [1]
    """

    __slots__ = (
        "_labels",
        "_values",
        "_succ",
        "_pred",
        "_edge_kinds",
        "_root",
        "_next_oid",
        "_num_edges",
        "_journal",
        "_generation",
        "_succ_view",
        "_pred_view",
        "_view_generation",
    )

    def __init__(self) -> None:
        self._labels: dict[int, str] = {}
        self._values: dict[int, Any] = {}
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        self._edge_kinds: dict[tuple[int, int], EdgeKind] = {}
        self._root: Optional[int] = None
        self._next_oid: int = 0
        self._num_edges: int = 0
        #: undo-log hook: a :class:`repro.resilience.MutationJournal` while
        #: a transaction is open, ``None`` (a no-op) otherwise.
        self._journal = None
        #: mutation counter: every mutator bumps it, invalidating the
        #: memoized frozen views below (see :meth:`succ`/:meth:`pred`)
        self._generation: int = 0
        self._succ_view: dict[int, frozenset[int]] = {}
        self._pred_view: dict[int, frozenset[int]] = {}
        self._view_generation: int = 0

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    def add_node(self, label: str, value: Any = None, oid: Optional[int] = None) -> int:
        """Add a node and return its oid.

        If *oid* is omitted a fresh oid is allocated.  Adding an explicit
        oid that already exists raises :class:`DuplicateNodeError`.
        """
        if oid is None:
            oid = self._next_oid
            while oid in self._labels:  # skip oids taken explicitly
                oid += 1
        elif oid in self._labels:
            raise DuplicateNodeError(oid)
        if not isinstance(label, str):
            raise TypeError(f"label must be a string, got {type(label).__name__}")
        prev_next_oid = self._next_oid
        self._labels[oid] = label
        if value is not None:
            self._values[oid] = value
        self._succ[oid] = set()
        self._pred[oid] = set()
        self._next_oid = max(self._next_oid, oid + 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_added", (oid, prev_next_oid))
        return oid

    def add_root(self, oid: Optional[int] = None) -> int:
        """Add the distinguished ``ROOT`` node.

        Raises :class:`RootError` if a root already exists.
        """
        if self._root is not None:
            raise RootError("data graph already has a root node")
        root = self.add_node(ROOT_LABEL, oid=oid)
        self._root = root
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "root_set", (root,))
        return root

    def remove_node(self, oid: int) -> None:
        """Remove a node and all its incident edges."""
        self._require_node(oid)
        for target in list(self._succ[oid]):
            self.remove_edge(oid, target)
        for source in list(self._pred[oid]):
            self.remove_edge(source, oid)
        label = self._labels[oid]
        value = self._values.get(oid)
        was_root = self._root == oid
        del self._labels[oid]
        self._values.pop(oid, None)
        del self._succ[oid]
        del self._pred[oid]
        if was_root:
            self._root = None
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_removed", (oid, label, value, was_root))

    def has_node(self, oid: int) -> bool:
        """Return whether *oid* names a node of the graph."""
        return oid in self._labels

    def label(self, oid: int) -> str:
        """Return the label of node *oid*."""
        self._require_node(oid)
        return self._labels[oid]

    def value(self, oid: int) -> Any:
        """Return the optional value of node *oid* (``None`` if unset)."""
        self._require_node(oid)
        return self._values.get(oid)

    def set_value(self, oid: int, value: Any) -> None:
        """Set (or clear, with ``None``) the value of node *oid*."""
        self._require_node(oid)
        old = self._values.get(oid)
        if value is None:
            self._values.pop(oid, None)
        else:
            self._values[oid] = value
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "value_set", (oid, old))

    def relabel_node(self, oid: int, label: str) -> None:
        """Change the label of node *oid*.

        Relabeling invalidates any structural index built over the graph;
        maintenance of relabelings is out of the paper's scope (they can be
        modelled as node deletion + insertion).
        """
        self._require_node(oid)
        if oid == self._root and label != ROOT_LABEL:
            raise RootError("the root node must keep the ROOT label")
        old = self._labels[oid]
        self._labels[oid] = label
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "relabeled", (oid, old))

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE) -> None:
        """Add the dedge ``source -> target``.

        Raises :class:`DuplicateEdgeError` for parallel edges and
        :class:`RootError` for edges into the root (the model forbids them).
        """
        self._require_node(source)
        self._require_node(target)
        if target in self._succ[source]:
            raise DuplicateEdgeError(source, target)
        if target == self._root:
            raise RootError("the root node cannot have incoming edges")
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._edge_kinds[(source, target)] = kind
        self._num_edges += 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_added", (source, target))

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the dedge ``source -> target``."""
        self._require_node(source)
        self._require_node(target)
        if target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        kind = self._edge_kinds[(source, target)]
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        del self._edge_kinds[(source, target)]
        self._num_edges -= 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_removed", (source, target, kind))

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the dedge ``source -> target`` exists."""
        return source in self._succ and target in self._succ[source]

    def edge_kind(self, source: int, target: int) -> EdgeKind:
        """Return the :class:`EdgeKind` of an existing edge."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._edge_kinds[(source, target)]

    # ------------------------------------------------------------------
    # Views and queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        """The oid of the root node.

        Raises :class:`RootError` when the graph has no root yet.
        """
        if self._root is None:
            raise RootError("data graph has no root node")
        return self._root

    @property
    def has_root(self) -> bool:
        """Whether the root node has been created."""
        return self._root is not None

    @property
    def generation(self) -> int:
        """Mutation counter; bumped by every mutator.

        Lets callers (and the memoized views below) detect staleness with
        one integer comparison instead of re-reading adjacency.
        """
        return self._generation

    def succ(self, oid: int) -> frozenset[int]:
        """The successors (children) of node *oid* as a frozen set.

        Memoized per generation: repeated calls between mutations return
        the same frozen object instead of allocating a copy each time.
        """
        self._require_node(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._succ_view.get(oid)
        if view is None:
            view = self._succ_view[oid] = frozenset(self._succ[oid])
        return view

    def pred(self, oid: int) -> frozenset[int]:
        """The predecessors (parents) of node *oid* as a frozen set.

        Memoized per generation, like :meth:`succ`.
        """
        self._require_node(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._pred_view.get(oid)
        if view is None:
            view = self._pred_view[oid] = frozenset(self._pred[oid])
        return view

    def iter_succ(self, oid: int) -> Iterator[int]:
        """Iterate over the successors of *oid* without copying.

        The graph must not be mutated during iteration.
        """
        self._require_node(oid)
        return iter(self._succ[oid])

    def iter_pred(self, oid: int) -> Iterator[int]:
        """Iterate over the predecessors of *oid* without copying.

        The graph must not be mutated during iteration.
        """
        self._require_node(oid)
        return iter(self._pred[oid])

    def out_degree(self, oid: int) -> int:
        """Number of outgoing edges of *oid*."""
        self._require_node(oid)
        return len(self._succ[oid])

    def in_degree(self, oid: int) -> int:
        """Number of incoming edges of *oid*."""
        self._require_node(oid)
        return len(self._pred[oid])

    def nodes(self) -> Iterator[int]:
        """Iterate over all node oids."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all dedges as ``(source, target)`` pairs."""
        return iter(self._edge_kinds)

    def edges_of_kind(self, kind: EdgeKind) -> Iterator[tuple[int, int]]:
        """Iterate over all dedges of the given kind."""
        return (edge for edge, k in self._edge_kinds.items() if k is kind)

    def labels(self) -> set[str]:
        """The label alphabet Sigma actually used in the graph."""
        return set(self._labels.values())

    def nodes_with_label(self, label: str) -> list[int]:
        """All oids carrying *label* (linear scan; used by tests/tools)."""
        return [oid for oid, lab in self._labels.items() if lab == label]

    @property
    def num_nodes(self) -> int:
        """Number of dnodes ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of dedges ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, Hashable) and oid in self._labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataGraph nodes={self.num_nodes} edges={self.num_edges} "
            f"labels={len(self.labels())}>"
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def copy(self) -> "DataGraph":
        """Return an independent deep copy of the graph."""
        clone = DataGraph()
        clone._labels = dict(self._labels)
        clone._values = dict(self._values)
        clone._succ = {oid: set(s) for oid, s in self._succ.items()}
        clone._pred = {oid: set(p) for oid, p in self._pred.items()}
        clone._edge_kinds = dict(self._edge_kinds)
        clone._root = self._root
        clone._next_oid = self._next_oid
        clone._num_edges = self._num_edges
        return clone

    def add_subgraph(self, other: "DataGraph", preserve_oids: bool = False) -> dict[int, int]:
        """Disjoint-union *other* into this graph.

        Every node of *other* (including its root, which loses its special
        status and keeps only its label) is added with a fresh oid; every
        edge is copied.  Returns the oid translation map
        ``old oid in other -> new oid in self``.

        With ``preserve_oids=True`` nodes keep their oids from *other*
        (the mapping is the identity); a collision with an existing node
        raises :class:`DuplicateNodeError`.  This lets callers that
        allocate oids up front — the corpus layer compiles document
        diffs against known oids before the op is applied — ship a
        subgraph through an asynchronous update stream and still know
        where every node landed.

        This is the raw graph-surgery part of subgraph addition
        (Section 5.2); index maintenance is layered on top by
        :meth:`repro.maintenance.split_merge.SplitMergeMaintainer.add_subgraph`.
        """
        mapping: dict[int, int] = {}
        for oid in other.nodes():
            if preserve_oids:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid), oid=oid)
            else:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid))
        for source, target in other.edges():
            self.add_edge(mapping[source], mapping[target], other.edge_kind(source, target))
        return mapping

    def subgraph_from(self, start: int, follow_idref: bool = False) -> "DataGraph":
        """Extract the subgraph of all nodes reachable from *start*.

        By default only TREE edges are traversed, matching the paper's
        subgraph-extraction protocol ("We do not traverse IDREF edges").
        Edges *between* extracted nodes are all copied regardless of kind.
        The extracted graph keeps the original oids and has no ROOT node
        unless *start* is the root.
        """
        reachable = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in self._succ[node]:
                if child in reachable:
                    continue
                if not follow_idref and self._edge_kinds[(node, child)] is EdgeKind.IDREF:
                    continue
                reachable.add(child)
                stack.append(child)
        sub = DataGraph()
        for oid in reachable:
            sub.add_node(self._labels[oid], self._values.get(oid), oid=oid)
            if oid == self._root:
                sub._root = oid
        for oid in reachable:
            for child in self._succ[oid]:
                if child in reachable:
                    sub.add_edge(oid, child, self._edge_kinds[(oid, child)])
        return sub

    def remove_nodes(self, oids: Iterable[int]) -> None:
        """Remove a collection of nodes (and all incident edges)."""
        for oid in list(oids):
            if self.has_node(oid):
                self.remove_node(oid)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raise :class:`AssertionError` on bugs.

        Beyond the partition bookkeeping this also verifies edge-kind
        consistency: every adjacency pair has exactly one
        :class:`EdgeKind` (and vice versa — no orphaned kind entries),
        ``pred``/``succ`` mirror each other in *both* directions, and no
        IDREF edge targets the root.  Intended for tests and guarded
        maintenance post-checks, not hot paths: O(n + m).
        """
        assert set(self._succ) == set(self._labels), "succ keys out of sync"
        assert set(self._pred) == set(self._labels), "pred keys out of sync"
        edge_count = 0
        for source, targets in self._succ.items():
            for target in targets:
                assert source in self._pred[target], f"pred missing for {source}->{target}"
                assert (source, target) in self._edge_kinds, f"kind missing {source}->{target}"
                edge_count += 1
        for target, sources in self._pred.items():
            for source in sources:
                assert target in self._succ[source], f"succ missing for {source}->{target}"
        assert edge_count == self._num_edges, "edge counter out of sync"
        assert edge_count == len(self._edge_kinds), "edge kinds out of sync"
        for (source, target), kind in self._edge_kinds.items():
            assert isinstance(kind, EdgeKind), f"non-EdgeKind kind for {source}->{target}"
            assert target in self._succ.get(source, ()), (
                f"kind entry for non-edge {source}->{target}"
            )
            if kind is EdgeKind.IDREF:
                assert target != self._root, f"IDREF edge {source}->{target} targets root"
        if self._root is not None:
            assert self._labels[self._root] == ROOT_LABEL, "root label corrupted"
            assert not self._pred[self._root], "root must have no incoming edges"

    # ------------------------------------------------------------------
    # Journal undo (repro.resilience)
    # ------------------------------------------------------------------

    def _undo_journal(self, op: str, payload: tuple) -> None:
        """Apply the inverse of one journaled mutation.

        Called by :meth:`repro.resilience.MutationJournal.rollback` with
        records in reverse order; must never be called directly.  The
        undo paths write the internal dicts directly (never the public
        mutators) so a rollback is itself journal-free.
        """
        self._generation += 1
        if op == "edge_added":
            source, target = payload
            self._succ[source].discard(target)
            self._pred[target].discard(source)
            del self._edge_kinds[(source, target)]
            self._num_edges -= 1
        elif op == "edge_removed":
            source, target, kind = payload
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._edge_kinds[(source, target)] = kind
            self._num_edges += 1
        elif op == "node_added":
            oid, prev_next_oid = payload
            del self._labels[oid]
            self._values.pop(oid, None)
            del self._succ[oid]
            del self._pred[oid]
            self._next_oid = prev_next_oid
        elif op == "node_removed":
            oid, label, value, was_root = payload
            self._labels[oid] = label
            if value is not None:
                self._values[oid] = value
            self._succ[oid] = set()
            self._pred[oid] = set()
            if was_root:
                self._root = oid
        elif op == "root_set":
            self._root = None
        elif op == "relabeled":
            oid, old = payload
            self._labels[oid] = old
        elif op == "value_set":
            oid, old = payload
            if old is None:
                self._values.pop(oid, None)
            else:
                self._values[oid] = old
        else:  # pragma: no cover - guards against journal format drift
            raise ValueError(f"unknown graph journal op {op!r}")

    def _require_node(self, oid: int) -> None:
        if oid not in self._labels:
            raise NodeNotFoundError(oid)
