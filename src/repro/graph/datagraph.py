"""The data-graph model of Section 3 of the paper.

XML (and other semistructured data) is modelled as a directed, labeled
graph ``G = (V, E, root, Sigma, label, oid, value)``:

* each node ("dnode") carries a string *label*, a unique integer *oid*,
  and an optional *value*;
* each edge ("dedge") represents either an object–subobject (tree) or an
  IDREF (reference) relationship;
* a single distinguished root node is labeled ``ROOT`` and has no incoming
  edges.

Storage layout (the array-backed core)
--------------------------------------
The public API is the classic adjacency digraph — O(1) membership, O(1)
edge insert/delete, cheap ``succ``/``pred`` iteration — but the storage
is slab-backed rather than dict-of-sets (the historical representation
is retained as :class:`repro.core.refimpl.DictGraph`):

* oids map to dense *slots* through a
  :class:`~repro.core.intmap.PagedIntMap`; a freed slot returns to a
  freelist and is recycled by the next node;
* per-slot labels are interned ints in an ``array('i')`` and adjacency
  lives in two :class:`~repro.core.slab.SlotSlabs` (one ``array('q')``
  data slab each for successors and predecessors);
* edge kinds need no side table: TREE is the default and the minority
  IDREF edges live in one set of packed ``(source << 48) | target``
  ints — which is why oids must satisfy ``0 <= oid < 2**48``.

Per node this costs ~60 bytes instead of ~600; see DESIGN.md §13 for the
layout, growth and compaction policies, and the dense-id ↔ oid contract.

Edges carry a *kind* flag (:data:`EdgeKind.TREE` or :data:`EdgeKind.IDREF`)
so workloads can manipulate only reference edges, exactly as the paper's
experiments do ("we first remove 20% of all the IDREF edges").  The index
algorithms themselves are kind-agnostic: a dedge is a dedge.
"""

from __future__ import annotations

import enum
import sys
from array import array
from collections.abc import Iterable, Iterator, Sequence
from typing import Any, Optional

from repro.core.intmap import PagedIntMap
from repro.core.labels import LabelInterner
from repro.core.sizing import deep_sizeof
from repro.core.slab import SlotSlabs
from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    RootError,
)

#: Distinguished label of the single root node (Section 3 of the paper).
ROOT_LABEL = "ROOT"

#: Distinguished label used to mark subgraphs scheduled for deletion
#: (Section 5.2: "Have a special node with a distinguished label DELETE").
DELETE_LABEL = "DELETE"

#: Exclusive upper bound on oids: two oids must pack into one 96-bit int
#: (IDREF edge set) and index into paged arrays, so oids are confined to
#: ``[0, 2**48)`` — far beyond any real corpus.
OID_LIMIT = 1 << 48

_OID_SHIFT = 48


class EdgeKind(enum.Enum):
    """Provenance of a dedge in the XML data model."""

    #: Object–subobject (containment) edge: the XML element tree.
    TREE = "tree"
    #: IDREF/reference edge: cross-references between elements.
    IDREF = "idref"


class DataGraph:
    """A directed, labeled data graph with a single distinguished root.

    Nodes are identified by integer oids.  The graph stores, per node, the
    label, the optional value, and adjacency as successor/predecessor
    slots in shared array slabs.

    The class enforces the data-model invariants lazily where cheap
    (duplicate nodes/edges, missing endpoints) and provides
    :meth:`check_invariants` for the expensive ones (single root, root has
    no in-edges, reachability is *not* required by the model and is not
    enforced).

    Examples
    --------
    >>> g = DataGraph()
    >>> r = g.add_root()
    >>> a = g.add_node("A")
    >>> g.add_edge(r, a)
    >>> g.label(a)
    'A'
    >>> sorted(g.succ(r))
    [1]
    """

    __slots__ = (
        "_slot_of",
        "_oid_at",
        "_label_at",
        "_free_slots",
        "_interner",
        "_values",
        "_succ_slabs",
        "_pred_slabs",
        "_idref",
        "_root",
        "_next_oid",
        "_num_edges",
        "_journal",
        "_generation",
        "_succ_view",
        "_pred_view",
        "_view_generation",
    )

    def __init__(self) -> None:
        #: oid -> dense slot (the remap table; see DESIGN.md §13)
        self._slot_of = PagedIntMap()
        #: slot -> oid (-1 for freed slots)
        self._oid_at = array("q")
        #: slot -> interned label id
        self._label_at = array("i")
        self._free_slots: list[int] = []
        self._interner = LabelInterner()
        self._values: dict[int, Any] = {}
        self._succ_slabs = SlotSlabs()
        self._pred_slabs = SlotSlabs()
        #: packed ``(source << 48) | target`` of the IDREF edges only
        self._idref: set[int] = set()
        self._root: Optional[int] = None
        self._next_oid: int = 0
        self._num_edges: int = 0
        #: undo-log hook: a :class:`repro.resilience.MutationJournal` while
        #: a transaction is open, ``None`` (a no-op) otherwise.
        self._journal = None
        #: mutation counter: every mutator bumps it, invalidating the
        #: memoized frozen views below (see :meth:`succ`/:meth:`pred`)
        self._generation: int = 0
        self._succ_view: dict[int, frozenset[int]] = {}
        self._pred_view: dict[int, frozenset[int]] = {}
        self._view_generation: int = 0

    # ------------------------------------------------------------------
    # Slot management (dense-id layer)
    # ------------------------------------------------------------------

    def _alloc_slot(self, oid: int, label_id: int) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._oid_at[slot] = oid
            self._label_at[slot] = label_id
        else:
            slot = len(self._oid_at)
            self._oid_at.append(oid)
            self._label_at.append(label_id)
            self._succ_slabs.new_slot()
            self._pred_slabs.new_slot()
        self._slot_of[oid] = slot
        return slot

    def _release_slot(self, oid: int, slot: int) -> None:
        self._succ_slabs.clear_slot(slot)
        self._pred_slabs.clear_slot(slot)
        self._oid_at[slot] = -1
        self._label_at[slot] = -1
        del self._slot_of[oid]
        self._free_slots.append(slot)

    def _slot(self, oid: int) -> int:
        slot = self._slot_of.get(oid)
        if slot is None:
            raise NodeNotFoundError(oid)
        return slot

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    def add_node(self, label: str, value: Any = None, oid: Optional[int] = None) -> int:
        """Add a node and return its oid.

        If *oid* is omitted a fresh oid is allocated.  Adding an explicit
        oid that already exists raises :class:`DuplicateNodeError`; oids
        must be ints in ``[0, OID_LIMIT)`` (:class:`TypeError` otherwise).
        """
        slot_of = self._slot_of
        if oid is None:
            oid = self._next_oid
            while slot_of.get(oid) is not None:  # skip oids taken explicitly
                oid += 1
        else:
            if not isinstance(oid, int) or isinstance(oid, bool):
                raise TypeError(f"oid must be an int, got {type(oid).__name__}")
            if oid < 0 or oid >= OID_LIMIT:
                raise TypeError(f"oid {oid} out of range [0, 2**48)")
            if slot_of.get(oid) is not None:
                raise DuplicateNodeError(oid)
        if not isinstance(label, str):
            raise TypeError(f"label must be a string, got {type(label).__name__}")
        prev_next_oid = self._next_oid
        self._alloc_slot(oid, self._interner.intern(label))
        if value is not None:
            self._values[oid] = value
        self._next_oid = max(self._next_oid, oid + 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_added", (oid, prev_next_oid))
        return oid

    def add_root(self, oid: Optional[int] = None) -> int:
        """Add the distinguished ``ROOT`` node.

        Raises :class:`RootError` if a root already exists.
        """
        if self._root is not None:
            raise RootError("data graph already has a root node")
        root = self.add_node(ROOT_LABEL, oid=oid)
        self._root = root
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "root_set", (root,))
        return root

    def remove_node(self, oid: int) -> None:
        """Remove a node and all its incident edges."""
        slot = self._slot(oid)
        for target in self._succ_slabs.to_list(slot):
            self.remove_edge(oid, target)
        for source in self._pred_slabs.to_list(slot):
            self.remove_edge(source, oid)
        label = self._interner.name_of(self._label_at[slot])
        value = self._values.get(oid)
        was_root = self._root == oid
        self._values.pop(oid, None)
        self._release_slot(oid, slot)
        if was_root:
            self._root = None
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "node_removed", (oid, label, value, was_root))

    def has_node(self, oid: int) -> bool:
        """Return whether *oid* names a node of the graph."""
        return self._slot_of.get(oid) is not None

    def label(self, oid: int) -> str:
        """Return the label of node *oid*."""
        return self._interner.name_of(self._label_at[self._slot(oid)])

    def value(self, oid: int) -> Any:
        """Return the optional value of node *oid* (``None`` if unset)."""
        self._slot(oid)
        return self._values.get(oid)

    def set_value(self, oid: int, value: Any) -> None:
        """Set (or clear, with ``None``) the value of node *oid*."""
        self._slot(oid)
        old = self._values.get(oid)
        if value is None:
            self._values.pop(oid, None)
        else:
            self._values[oid] = value
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "value_set", (oid, old))

    def relabel_node(self, oid: int, label: str) -> None:
        """Change the label of node *oid*.

        Relabeling invalidates any structural index built over the graph;
        maintenance of relabelings is out of the paper's scope (they can be
        modelled as node deletion + insertion).
        """
        slot = self._slot(oid)
        if oid == self._root and label != ROOT_LABEL:
            raise RootError("the root node must keep the ROOT label")
        old = self._interner.name_of(self._label_at[slot])
        self._label_at[slot] = self._interner.intern(label)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "relabeled", (oid, old))

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int, kind: EdgeKind = EdgeKind.TREE) -> None:
        """Add the dedge ``source -> target``.

        Raises :class:`DuplicateEdgeError` for parallel edges and
        :class:`RootError` for edges into the root (the model forbids them).
        """
        source_slot = self._slot(source)
        target_slot = self._slot(target)
        if self._succ_slabs.contains(source_slot, target):
            raise DuplicateEdgeError(source, target)
        if target == self._root:
            raise RootError("the root node cannot have incoming edges")
        self._succ_slabs.append(source_slot, target)
        self._pred_slabs.append(target_slot, source)
        if kind is EdgeKind.IDREF:
            self._idref.add((source << _OID_SHIFT) | target)
        self._num_edges += 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_added", (source, target))

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the dedge ``source -> target``."""
        source_slot = self._slot(source)
        target_slot = self._slot(target)
        if not self._succ_slabs.contains(source_slot, target):
            raise EdgeNotFoundError(source, target)
        packed = (source << _OID_SHIFT) | target
        if packed in self._idref:
            kind = EdgeKind.IDREF
            self._idref.discard(packed)
        else:
            kind = EdgeKind.TREE
        self._succ_slabs.remove(source_slot, target)
        self._pred_slabs.remove(target_slot, source)
        self._num_edges -= 1
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "edge_removed", (source, target, kind))

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the dedge ``source -> target`` exists."""
        slot = self._slot_of.get(source)
        return slot is not None and self._succ_slabs.contains(slot, target)

    def edge_kind(self, source: int, target: int) -> EdgeKind:
        """Return the :class:`EdgeKind` of an existing edge."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        if ((source << _OID_SHIFT) | target) in self._idref:
            return EdgeKind.IDREF
        return EdgeKind.TREE

    # ------------------------------------------------------------------
    # Views and queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        """The oid of the root node.

        Raises :class:`RootError` when the graph has no root yet.
        """
        if self._root is None:
            raise RootError("data graph has no root node")
        return self._root

    @property
    def has_root(self) -> bool:
        """Whether the root node has been created."""
        return self._root is not None

    @property
    def generation(self) -> int:
        """Mutation counter; bumped by every mutator.

        Lets callers (and the memoized views below) detect staleness with
        one integer comparison instead of re-reading adjacency.
        """
        return self._generation

    def succ(self, oid: int) -> frozenset[int]:
        """The successors (children) of node *oid* as a frozen set.

        Memoized per generation: repeated calls between mutations return
        the same frozen object instead of allocating a copy each time.
        """
        slot = self._slot(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._succ_view.get(oid)
        if view is None:
            view = self._succ_view[oid] = frozenset(self._succ_slabs.segment(slot))
        return view

    def pred(self, oid: int) -> frozenset[int]:
        """The predecessors (parents) of node *oid* as a frozen set.

        Memoized per generation, like :meth:`succ`.
        """
        slot = self._slot(oid)
        if self._view_generation != self._generation:
            self._succ_view.clear()
            self._pred_view.clear()
            self._view_generation = self._generation
        view = self._pred_view.get(oid)
        if view is None:
            view = self._pred_view[oid] = frozenset(self._pred_slabs.segment(slot))
        return view

    def iter_succ(self, oid: int) -> Iterator[int]:
        """Iterate over the successors of *oid*.

        The graph must not be mutated during iteration.
        """
        return self._succ_slabs.iter_slot(self._slot(oid))

    def iter_pred(self, oid: int) -> Iterator[int]:
        """Iterate over the predecessors of *oid*.

        The graph must not be mutated during iteration.
        """
        return self._pred_slabs.iter_slot(self._slot(oid))

    def out_degree(self, oid: int) -> int:
        """Number of outgoing edges of *oid*."""
        return self._succ_slabs.length(self._slot(oid))

    def in_degree(self, oid: int) -> int:
        """Number of incoming edges of *oid*."""
        return self._pred_slabs.length(self._slot(oid))

    def nodes(self) -> Iterator[int]:
        """Iterate over all node oids (ascending)."""
        return iter(self._slot_of)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all dedges as ``(source, target)`` pairs."""
        oid_at = self._oid_at
        succ_slabs = self._succ_slabs
        for slot in range(len(oid_at)):
            source = oid_at[slot]
            if source < 0:
                continue
            for target in succ_slabs.iter_slot(slot):
                yield (source, target)

    def edges_of_kind(self, kind: EdgeKind) -> Iterator[tuple[int, int]]:
        """Iterate over all dedges of the given kind."""
        if kind is EdgeKind.IDREF:
            mask = OID_LIMIT - 1
            return ((packed >> _OID_SHIFT, packed & mask) for packed in self._idref)
        idref = self._idref
        return (
            (s, t)
            for s, t in self.edges()
            if ((s << _OID_SHIFT) | t) not in idref
        )

    def labels(self) -> set[str]:
        """The label alphabet Sigma actually used in the graph."""
        name_of = self._interner.name_of
        return {name_of(label_id) for label_id in set(self._label_at) if label_id >= 0}

    def nodes_with_label(self, label: str) -> list[int]:
        """All oids carrying *label* (linear scan; used by tests/tools)."""
        if label not in self._interner:
            return []
        label_id = self._interner.id_of(label)
        oid_at = self._oid_at
        label_at = self._label_at
        return sorted(
            oid_at[slot]
            for slot in range(len(oid_at))
            if oid_at[slot] >= 0 and label_at[slot] == label_id
        )

    @property
    def num_nodes(self) -> int:
        """Number of dnodes ``|V|``."""
        return len(self._slot_of)

    @property
    def num_edges(self) -> int:
        """Number of dedges ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, oid: object) -> bool:
        return self._slot_of.get(oid) is not None  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataGraph nodes={self.num_nodes} edges={self.num_edges} "
            f"labels={len(self.labels())}>"
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def copy(self) -> "DataGraph":
        """Return an independent deep copy of the graph."""
        clone = DataGraph()
        clone._slot_of = self._slot_of.copy()
        clone._oid_at = array("q", self._oid_at)
        clone._label_at = array("i", self._label_at)
        clone._free_slots = list(self._free_slots)
        clone._interner = self._interner.copy()
        clone._values = dict(self._values)
        clone._succ_slabs = self._succ_slabs.copy()
        clone._pred_slabs = self._pred_slabs.copy()
        clone._idref = set(self._idref)
        clone._root = self._root
        clone._next_oid = self._next_oid
        clone._num_edges = self._num_edges
        return clone

    def add_subgraph(self, other: "DataGraph", preserve_oids: bool = False) -> dict[int, int]:
        """Disjoint-union *other* into this graph.

        Every node of *other* (including its root, which loses its special
        status and keeps only its label) is added with a fresh oid; every
        edge is copied.  Returns the oid translation map
        ``old oid in other -> new oid in self``.

        With ``preserve_oids=True`` nodes keep their oids from *other*
        (the mapping is the identity); a collision with an existing node
        raises :class:`DuplicateNodeError`.  This lets callers that
        allocate oids up front — the corpus layer compiles document
        diffs against known oids before the op is applied — ship a
        subgraph through an asynchronous update stream and still know
        where every node landed.

        This is the raw graph-surgery part of subgraph addition
        (Section 5.2); index maintenance is layered on top by
        :meth:`repro.maintenance.split_merge.SplitMergeMaintainer.add_subgraph`.
        """
        mapping: dict[int, int] = {}
        for oid in other.nodes():
            if preserve_oids:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid), oid=oid)
            else:
                mapping[oid] = self.add_node(other.label(oid), other.value(oid))
        for source, target in other.edges():
            self.add_edge(mapping[source], mapping[target], other.edge_kind(source, target))
        return mapping

    def subgraph_from(self, start: int, follow_idref: bool = False) -> "DataGraph":
        """Extract the subgraph of all nodes reachable from *start*.

        By default only TREE edges are traversed, matching the paper's
        subgraph-extraction protocol ("We do not traverse IDREF edges").
        Edges *between* extracted nodes are all copied regardless of kind.
        The extracted graph keeps the original oids and has no ROOT node
        unless *start* is the root.
        """
        self._slot(start)
        idref = self._idref
        reachable = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            node_slot = self._slot_of[node]
            for child in self._succ_slabs.iter_slot(node_slot):
                if child in reachable:
                    continue
                if not follow_idref and ((node << _OID_SHIFT) | child) in idref:
                    continue
                reachable.add(child)
                stack.append(child)
        sub = DataGraph()
        for oid in reachable:
            sub.add_node(self.label(oid), self._values.get(oid), oid=oid)
            if oid == self._root:
                sub._root = oid
        for oid in reachable:
            for child in self._succ_slabs.iter_slot(self._slot_of[oid]):
                if child in reachable:
                    sub.add_edge(oid, child, self.edge_kind(oid, child))
        return sub

    def remove_nodes(self, oids: Iterable[int]) -> None:
        """Remove a collection of nodes (and all incident edges)."""
        for oid in list(oids):
            if self.has_node(oid):
                self.remove_node(oid)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def approx_bytes(self, deep_values: bool = False) -> int:
        """Approximate resident bytes of the graph's storage.

        Cheap by construction — O(#pages + #overlays + #labels), not
        O(nodes) — so the serving layer can publish it as a gauge on
        every commit.  ``deep_values=True`` additionally walks the node
        values dict exactly (O(values); used by the memory benches),
        otherwise values are estimated at a flat 48 bytes per entry.
        """
        total = (
            self._slot_of.approx_bytes()
            + sys.getsizeof(self._oid_at)
            + sys.getsizeof(self._label_at)
            + sys.getsizeof(self._free_slots)
            + self._interner.approx_bytes()
            + self._succ_slabs.approx_bytes()
            + self._pred_slabs.approx_bytes()
            + sys.getsizeof(self._idref)
            + 32 * len(self._idref)
        )
        if deep_values:
            total += deep_sizeof(self._values)
        else:
            total += sys.getsizeof(self._values) + 48 * len(self._values)
        return total

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raise :class:`AssertionError` on bugs.

        Beyond the node bookkeeping this also verifies edge-kind
        consistency: every IDREF entry corresponds to a live edge,
        ``pred``/``succ`` mirror each other in *both* directions, the
        slot maps are bijective, and no IDREF edge targets the root.
        Intended for tests and guarded maintenance post-checks, not hot
        paths: O(n + m).
        """
        live_slots = 0
        for oid, slot in self._slot_of.items():
            assert self._oid_at[slot] == oid, f"slot map broken for oid {oid}"
            assert self._label_at[slot] >= 0, f"label missing for oid {oid}"
            live_slots += 1
        assert live_slots == len(self._slot_of), "slot count out of sync"
        edge_count = 0
        for source, slot in self._slot_of.items():
            targets = self._succ_slabs.to_list(slot)
            assert len(set(targets)) == len(targets), f"duplicate succ at {source}"
            for target in targets:
                target_slot = self._slot_of.get(target)
                assert target_slot is not None, f"dangling edge {source}->{target}"
                assert self._pred_slabs.contains(target_slot, source), (
                    f"pred missing for {source}->{target}"
                )
                edge_count += 1
            sources = self._pred_slabs.to_list(slot)
            assert len(set(sources)) == len(sources), f"duplicate pred at {source}"
            for origin in sources:
                origin_slot = self._slot_of.get(origin)
                assert origin_slot is not None, f"dangling pred {origin}->{source}"
                assert self._succ_slabs.contains(origin_slot, source), (
                    f"succ missing for {origin}->{source}"
                )
        assert edge_count == self._num_edges, "edge counter out of sync"
        mask = OID_LIMIT - 1
        for packed in self._idref:
            source, target = packed >> _OID_SHIFT, packed & mask
            source_slot = self._slot_of.get(source)
            assert source_slot is not None and self._succ_slabs.contains(
                source_slot, target
            ), f"IDREF entry for non-edge {source}->{target}"
            assert target != self._root, f"IDREF edge {source}->{target} targets root"
        if self._root is not None:
            root_slot = self._slot_of[self._root]
            assert (
                self._interner.name_of(self._label_at[root_slot]) == ROOT_LABEL
            ), "root label corrupted"
            assert self._pred_slabs.length(root_slot) == 0, (
                "root must have no incoming edges"
            )

    # ------------------------------------------------------------------
    # Journal undo (repro.resilience)
    # ------------------------------------------------------------------

    def _undo_journal(self, op: str, payload: tuple) -> None:
        """Apply the inverse of one journaled mutation.

        Called by :meth:`repro.resilience.MutationJournal.rollback` with
        records in reverse order; must never be called directly.  The
        undo paths write the internal structures directly (never the
        public mutators) so a rollback is itself journal-free.
        """
        self._generation += 1
        if op == "edge_added":
            source, target = payload
            self._succ_slabs.remove(self._slot_of[source], target, missing_ok=True)
            self._pred_slabs.remove(self._slot_of[target], source, missing_ok=True)
            self._idref.discard((source << _OID_SHIFT) | target)
            self._num_edges -= 1
        elif op == "edge_removed":
            source, target, kind = payload
            self._succ_slabs.append(self._slot_of[source], target)
            self._pred_slabs.append(self._slot_of[target], source)
            if kind is EdgeKind.IDREF:
                self._idref.add((source << _OID_SHIFT) | target)
            self._num_edges += 1
        elif op == "node_added":
            oid, prev_next_oid = payload
            self._values.pop(oid, None)
            self._release_slot(oid, self._slot_of[oid])
            self._next_oid = prev_next_oid
        elif op == "node_removed":
            oid, label, value, was_root = payload
            self._alloc_slot(oid, self._interner.intern(label))
            if value is not None:
                self._values[oid] = value
            if was_root:
                self._root = oid
        elif op == "root_set":
            self._root = None
        elif op == "relabeled":
            oid, old = payload
            self._label_at[self._slot_of[oid]] = self._interner.intern(old)
        elif op == "value_set":
            oid, old = payload
            if old is None:
                self._values.pop(oid, None)
            else:
                self._values[oid] = old
        else:  # pragma: no cover - guards against journal format drift
            raise ValueError(f"unknown graph journal op {op!r}")

    # ------------------------------------------------------------------
    # Internal fast paths (construction / index layers)
    # ------------------------------------------------------------------

    def _pred_lists(self) -> Iterator[tuple[int, Sequence[int]]]:
        """Yield ``(oid, parent oids)`` over live slots in slot order.

        Slot order equals oid order for graphs built without deletions,
        which is what keeps signature interning deterministic across the
        slab and dict cores.  Used by the construction fast path; the
        parents come back as ``array('q')`` slices (C-speed copies), so
        consumers must only read them.
        """
        oid_at = self._oid_at
        pred_slabs = self._pred_slabs
        for slot in range(len(oid_at)):
            oid = oid_at[slot]
            if oid >= 0:
                yield oid, pred_slabs.segment(slot)

    def _succ_list(self, oid: int) -> list[int]:
        """The successors of *oid* as a list (no existence check)."""
        return self._succ_slabs.to_list(self._slot_of[oid])

    def _require_node(self, oid: int) -> None:
        if self._slot_of.get(oid) is None:
            raise NodeNotFoundError(oid)
