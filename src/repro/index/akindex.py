"""The A(k)-index family (Kaushik et al. [9]), Definition 4 of the paper.

Section 6 of the paper maintains the whole family A(0), A(1), ..., A(k)
together, because updating the A(i)-index needs the A(i-1)-index as a
reference.  :class:`AkIndexFamily` stores exactly that: one partition per
level, linked level-to-level by the **refinement tree** (Figure 8): every
level-i inode knows its parent inode at level i-1 and its children at
level i+1 (a level-(i+1) inode's extent is always contained in its
parent's — each A(i+1) is a refinement of A(i), Lemma 2).

Representation note.  The paper's space-optimised layout stores dnode
extents only at level k and recovers coarser extents through the tree.
This implementation additionally memoises ``class_of`` maps and extents
per level, trading O(k·n) memory for simpler and clearly-correct
maintenance code; the paper's storage layout is accounted *analytically*
by :mod:`repro.metrics.storage` (Table 3 counts tree edges, inter-iedges
and level-k extents, which are representation-independent quantities).
The algorithmic claims — locality of updates, minimum index maintained —
do not depend on the physical layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import InvalidIndexError, StructuralIndexError
from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.index.construction import ak_class_maps, blocks_of


@dataclass
class AkLevel:
    """One level of the family: a partition plus refinement-tree links."""

    #: dnode -> inode token at this level
    class_of: dict[int, int] = field(default_factory=dict)
    #: inode token -> extent (set of dnodes)
    extents: dict[int, set[int]] = field(default_factory=dict)
    #: inode token -> parent token at the previous level (empty at level 0)
    parent: dict[int, int] = field(default_factory=dict)
    #: inode token -> child tokens at the next level (empty at level k)
    children: dict[int, set[int]] = field(default_factory=dict)
    #: next fresh token
    next_token: int = 0

    def fresh_token(self) -> int:
        token = self.next_token
        self.next_token += 1
        return token


class AkIndexFamily:
    """The minimum A(0)..A(k) indexes of a data graph, maintained together.

    Build with :meth:`build`; mutate only through a maintainer from
    :mod:`repro.maintenance`.  The level-k partition is "the" A(k)-index;
    :meth:`level_index` materialises any level as a standalone
    :class:`StructuralIndex` (with iedges) for query evaluation.
    """

    def __init__(self, graph: DataGraph, k: int):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.graph = graph
        self.k = k
        self.levels: list[AkLevel] = [AkLevel() for _ in range(k + 1)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph: DataGraph, k: int) -> "AkIndexFamily":
        """Construct the minimum family via k signature-refinement rounds."""
        family = cls(graph, k)
        maps = ak_class_maps(graph, k)
        for i, class_map in enumerate(maps):
            level = family.levels[i]
            for dnode, token in class_map.items():
                level.class_of[dnode] = token
                level.extents.setdefault(token, set()).add(dnode)
            level.next_token = max(level.extents, default=-1) + 1
        for i in range(1, k + 1):
            level = family.levels[i]
            coarser = family.levels[i - 1]
            for token, extent in level.extents.items():
                representative = next(iter(extent))
                parent = coarser.class_of[representative]
                level.parent[token] = parent
                coarser.children.setdefault(parent, set()).add(token)
        # Ensure every token has a (possibly empty) children entry.
        for i in range(k):
            level = family.levels[i]
            for token in level.extents:
                level.children.setdefault(token, set())
        return family

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def class_at(self, level: int, dnode: int) -> int:
        """The A(*level*) inode token containing *dnode*."""
        self._require_level(level)
        try:
            return self.levels[level].class_of[dnode]
        except KeyError:
            raise StructuralIndexError(
                f"dnode {dnode} is not covered at level {level}"
            ) from None

    def extent_at(self, level: int, token: int) -> set[int]:
        """The extent of inode *token* at *level* (live set; do not mutate)."""
        self._require_level(level)
        try:
            return self.levels[level].extents[token]
        except KeyError:
            raise StructuralIndexError(f"no inode {token} at level {level}") from None

    def num_inodes(self, level: int) -> int:
        """Number of inodes of the A(*level*)-index."""
        self._require_level(level)
        return len(self.levels[level].extents)

    def sizes(self) -> list[int]:
        """``[|A(0)|, |A(1)|, ..., |A(k)|]``."""
        return [self.num_inodes(i) for i in range(self.k + 1)]

    def approx_bytes(self) -> int:
        """Approximate resident bytes of the family's storage.

        O(#classes) per level — dict entries are estimated at a flat
        56/64 bytes rather than walked, so this is cheap enough for the
        per-publish ``repro_index_bytes`` gauge.
        """
        import sys

        total = 0
        for level in self.levels:
            total += sys.getsizeof(level.class_of) + 56 * len(level.class_of)
            total += sys.getsizeof(level.extents)
            for extent in level.extents.values():
                total += sys.getsizeof(extent) + 64
            total += sys.getsizeof(level.parent) + 56 * len(level.parent)
            total += sys.getsizeof(level.children)
            for kids in level.children.values():
                total += sys.getsizeof(kids) + 64
        return total

    def tokens_at(self, level: int) -> Iterator[int]:
        """Iterate over the inode tokens of one level."""
        self._require_level(level)
        return iter(self.levels[level].extents)

    def parent_of(self, level: int, token: int) -> int:
        """Refinement-tree parent (level-1 token) of a level-``level`` inode."""
        if level == 0:
            raise StructuralIndexError("level-0 inodes have no tree parent")
        self._require_level(level)
        return self.levels[level].parent[token]

    def children_of(self, level: int, token: int) -> frozenset[int]:
        """Refinement-tree children (level+1 tokens) of an inode."""
        if level == self.k:
            raise StructuralIndexError(f"level-{level} is the leaf level")
        self._require_level(level)
        return frozenset(self.levels[level].children.get(token, ()))

    def label_of(self, level: int, token: int) -> str:
        """The label shared by an inode's extent."""
        extent = self.extent_at(level, token)
        return self.graph.label(next(iter(extent)))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def level_index(self, level: Optional[int] = None) -> StructuralIndex:
        """Materialise one level (default: k) as a :class:`StructuralIndex`.

        The result carries extents *and* iedges and is what query
        evaluation consumes.  It is a snapshot — further maintenance of the
        family does not update it.
        """
        if level is None:
            level = self.k
        self._require_level(level)
        blocks = [list(extent) for extent in self.levels[level].extents.values()]
        return StructuralIndex.from_partition(self.graph, blocks)

    def count_inter_iedges(self) -> int:
        """Number of inter-iedges: iedges from level-i to level-(i+1) inodes.

        Section 6 stores, for each A(i)-index inode, iedges to its inode
        successors *in the A(i+1)-index*; this counts them for the storage
        model of Table 3 (O(k·m) scan).
        """
        total = 0
        for i in range(self.k):
            pairs: set[tuple[int, int]] = set()
            coarse = self.levels[i].class_of
            fine = self.levels[i + 1].class_of
            for source, target in self.graph.edges():
                pairs.add((coarse[source], fine[target]))
            total += len(pairs)
        return total

    def count_intra_iedges(self, level: int) -> int:
        """Number of iedges inside the A(*level*)-index graph."""
        self._require_level(level)
        class_of = self.levels[level].class_of
        return len({(class_of[s], class_of[t]) for s, t in self.graph.edges()})

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural consistency of all levels and tree links."""
        nodes = set(self.graph.nodes())
        for i, level in enumerate(self.levels):
            assert set(level.class_of) == nodes, f"level {i} does not cover the graph"
            for token, extent in level.extents.items():
                assert extent, f"empty inode {token} at level {i}"
                for dnode in extent:
                    assert level.class_of[dnode] == token, (
                        f"class map broken at level {i} for dnode {dnode}"
                    )
                labels = {self.graph.label(w) for w in extent}
                assert len(labels) == 1, f"inode {token}@{i} mixes labels {labels}"
            covered = sum(len(e) for e in level.extents.values())
            assert covered == len(nodes), f"extents at level {i} overlap or leak"
        for i in range(1, self.k + 1):
            level = self.levels[i]
            coarser = self.levels[i - 1]
            for token, extent in level.extents.items():
                parents = {coarser.class_of[w] for w in extent}
                assert len(parents) == 1, f"inode {token}@{i} spans parents {parents}"
                parent = parents.pop()
                assert level.parent.get(token) == parent, (
                    f"tree parent wrong for {token}@{i}"
                )
                assert token in coarser.children.get(parent, set()), (
                    f"children link missing for {token}@{i}"
                )
            for token in self.levels[i - 1].extents:
                for child in self.levels[i - 1].children.get(token, set()):
                    assert child in level.extents, (
                        f"stale child {child} under {token}@{i - 1}"
                    )
            assert set(level.parent) == set(level.extents), f"parent keys drift @{i}"

    def is_minimum(self) -> bool:
        """Whether every level equals the freshly-constructed minimum.

        Theorem 2 says the split/merge maintainer preserves this; the
        tests lean on it as the master oracle.
        """
        fresh = ak_class_maps(self.graph, self.k)
        for i in range(self.k + 1):
            want = {frozenset(b) for b in blocks_of(fresh[i])}
            have = {frozenset(e) for e in self.levels[i].extents.values()}
            if want != have:
                return False
        return True

    def copy(self) -> "AkIndexFamily":
        """An independent copy (shares the graph object)."""
        clone = AkIndexFamily(self.graph, self.k)
        for i, level in enumerate(self.levels):
            target = clone.levels[i]
            target.class_of = dict(level.class_of)
            target.extents = {t: set(e) for t, e in level.extents.items()}
            target.parent = dict(level.parent)
            target.children = {t: set(c) for t, c in level.children.items()}
            target.next_token = level.next_token
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AkIndexFamily k={self.k} sizes={self.sizes()}>"

    def _require_level(self, level: int) -> None:
        if not 0 <= level <= self.k:
            raise InvalidIndexError(f"level {level} out of range 0..{self.k}")
