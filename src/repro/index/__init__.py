"""Structural indexes: representation, construction, validity oracles."""

from repro.index.akindex import AkIndexFamily, AkLevel
from repro.index.base import INodeView, StructuralIndex
from repro.index.construction import (
    SplitStats,
    ak_class_maps,
    bisimulation_partition,
    blocks_of,
    label_partition,
    partition_index,
    refine_by_signature,
    stabilize,
    stabilize_from_labels,
)
from repro.index.dataguide import DataGuide, build_dataguide
from repro.index.oneindex import OneIndex
from repro.index.serialize import (
    dump_index,
    family_from_dict,
    family_to_dict,
    index_from_dict,
    index_to_dict,
    load_index,
)
from repro.index.stability import (
    is_minimal_1index,
    is_minimum_1index,
    is_minimum_ak,
    is_refinement,
    is_self_stable,
    is_stable_wrt,
    is_valid_1index,
    mergeable_pairs,
    minimum_1index_size,
    minimum_ak_size,
    unstable_pairs,
)

__all__ = [
    "StructuralIndex",
    "INodeView",
    "OneIndex",
    "AkIndexFamily",
    "AkLevel",
    "DataGuide",
    "build_dataguide",
    "SplitStats",
    "label_partition",
    "refine_by_signature",
    "bisimulation_partition",
    "ak_class_maps",
    "blocks_of",
    "partition_index",
    "stabilize",
    "stabilize_from_labels",
    "is_stable_wrt",
    "is_self_stable",
    "is_valid_1index",
    "is_minimal_1index",
    "is_minimum_1index",
    "is_minimum_ak",
    "is_refinement",
    "mergeable_pairs",
    "unstable_pairs",
    "minimum_1index_size",
    "minimum_ak_size",
    "index_to_dict",
    "index_from_dict",
    "family_to_dict",
    "family_from_dict",
    "dump_index",
    "load_index",
]
