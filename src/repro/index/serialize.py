"""JSON-friendly (de)serialisation of structural indexes.

An index is serialised *relative to its graph* as the partition (lists of
dnode oids per inode, with the inode ids preserved); iedge supports are
recomputed on load — they are derived state.  The A(k) family format adds
the per-level partitions and the refinement-tree parent links.

Since wire v2 every extent is stored **delta-encoded**: the sorted member
oids become ``[first, gap, gap, ...]`` (see :mod:`repro.core.codec`),
which collapses the dominant payload cost — dense oid runs — to one or
two JSON characters per member.  v0/v1 payloads (absolute oids) load
unchanged.

Typical use: persist the graph (:mod:`repro.graph.serialize`) and its
maintained index together, reload both, resume maintenance::

    payload = {"graph": graph_to_dict(g), "index": index_to_dict(idx)}
    ...
    g = graph_from_dict(payload["graph"])
    idx = index_from_dict(g, payload["index"], cls=OneIndex)
"""

from __future__ import annotations

import json
from array import array
from typing import Any, TextIO, Type, TypeVar

from repro.core.codec import delta_decode, delta_encode
from repro.exceptions import InvalidIndexError
from repro.graph.datagraph import DataGraph
from repro.graph.serialize import check_format_version
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex

IndexT = TypeVar("IndexT", bound=StructuralIndex)

#: current index/family wire-format version; bump on structural changes.
#: Readers accept a missing version as v0 (the identical pre-versioned
#: layout) and reject newer versions with :class:`InvalidIndexError` —
#: checkpoints must stay evolvable (see :mod:`repro.store.checkpoint`).
#: v2 delta-encodes extents; v0/v1 stored absolute sorted oids.
INDEX_FORMAT_VERSION = 2


def _decode_extent(raw: Any, version: int, inode_id: Any) -> list:
    """Materialise one wire extent: delta-decoded since v2, absolute before."""
    if version < 2:
        return raw
    try:
        return delta_decode(raw)
    except TypeError as exc:
        raise InvalidIndexError(
            f"malformed extent of inode {inode_id}: expected a delta-encoded "
            f"int list, got {raw!r}"
        ) from exc


def index_to_dict(index: StructuralIndex) -> dict[str, Any]:
    """Serialise an index partition (inode ids preserved)."""
    return {
        "format_version": INDEX_FORMAT_VERSION,
        "inodes": [
            [inode, delta_encode(sorted(index.extent(inode)))]
            for inode in sorted(index.inodes())
        ],
        "next_id": index._next_id,
    }


def index_from_dict(
    graph: DataGraph,
    data: dict[str, Any],
    cls: Type[IndexT] = StructuralIndex,  # type: ignore[assignment]
) -> IndexT:
    """Rebuild an index over *graph* from :func:`index_to_dict` output."""
    version = check_format_version(data, INDEX_FORMAT_VERSION, InvalidIndexError)
    try:
        inodes = data["inodes"]
        next_id = data["next_id"]
    except (KeyError, TypeError) as exc:
        raise InvalidIndexError(f"malformed index payload: {exc!r}") from exc
    index = cls(graph)
    inode_of = index._inode_of
    for entry in inodes:
        try:
            inode_id, extent = entry
        except (ValueError, TypeError) as exc:
            raise InvalidIndexError(
                f"malformed inode entry {entry!r}: expected [id, extent]"
            ) from exc
        extent = _decode_extent(extent, version, inode_id)
        if not extent:
            raise InvalidIndexError(f"inode {inode_id} has an empty extent")
        # Inode ids feed the PagedIntMap partition table, whose values
        # must be non-negative ints (hashability alone no longer cuts it).
        if not isinstance(inode_id, int) or isinstance(inode_id, bool) or inode_id < 0:
            raise InvalidIndexError(
                f"inode id {inode_id!r} is not a non-negative int"
            )
        if inode_id in index._extent_arr:
            raise InvalidIndexError(f"inode id {inode_id} appears twice")
        for dnode in extent:
            if not graph.has_node(dnode):
                raise InvalidIndexError(
                    f"inode {inode_id} references dnode {dnode!r} not in the graph"
                )
        label = graph.label(extent[0])
        index._extent_arr[inode_id] = arr = array("q")
        index._label[inode_id] = label
        index._succ_support[inode_id] = {}
        index._pred_support[inode_id] = {}
        pos_of = index._pos_of
        for dnode in extent:
            if graph.label(dnode) != label:
                raise InvalidIndexError(f"inode {inode_id} mixes labels")
            if inode_of.get(dnode) is not None:
                raise InvalidIndexError(f"dnode {dnode} in two inodes")
            inode_of[dnode] = inode_id
            pos_of[dnode] = len(arr)
            arr.append(dnode)
    missing = set(graph.nodes()) - set(inode_of)
    if missing:
        raise InvalidIndexError(
            f"extents do not partition the graph: missing dnodes {sorted(missing)[:5]}"
        )
    try:
        index._next_id = max(next_id, max(index._extent_arr, default=-1) + 1)
    except TypeError as exc:
        raise InvalidIndexError(f"malformed next_id {next_id!r}") from exc
    index.rebuild_iedges()
    return index


def family_to_dict(family: AkIndexFamily) -> dict[str, Any]:
    """Serialise an A(k) family: per-level partitions + tree parents."""
    levels = []
    for level_no, level in enumerate(family.levels):
        levels.append(
            {
                "extents": [
                    [token, delta_encode(sorted(extent))]
                    for token, extent in sorted(level.extents.items())
                ],
                "parent": sorted(level.parent.items()) if level_no > 0 else [],
                "next_token": level.next_token,
            }
        )
    return {"format_version": INDEX_FORMAT_VERSION, "k": family.k, "levels": levels}


def family_from_dict(graph: DataGraph, data: dict[str, Any]) -> AkIndexFamily:
    """Rebuild an A(k) family over *graph*; validates the invariants."""
    version = check_format_version(data, INDEX_FORMAT_VERSION, InvalidIndexError)
    try:
        k = data["k"]
        levels = data["levels"]
        if not isinstance(k, int) or k < 0:
            raise InvalidIndexError(f"malformed k {k!r}: expected a non-negative int")
        if len(levels) != k + 1:
            raise InvalidIndexError(f"expected {k + 1} levels, got {len(levels)}")
        family = AkIndexFamily(graph, k)
        for level_no, payload in enumerate(levels):
            level = family.levels[level_no]
            for token, extent in payload["extents"]:
                if token in level.extents:
                    raise InvalidIndexError(
                        f"token {token} appears twice at level {level_no}"
                    )
                extent = _decode_extent(extent, version, token)
                level.extents[token] = set(extent)
                for dnode in extent:
                    level.class_of[dnode] = token
            level.parent = dict((int(a), int(b)) for a, b in payload["parent"])
            level.next_token = payload["next_token"]
    except InvalidIndexError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidIndexError(f"malformed family payload: {exc!r}") from exc
    for level_no in range(1, k + 1):
        level = family.levels[level_no]
        coarser = family.levels[level_no - 1]
        for token in level.extents:
            parent = level.parent.get(token)
            if parent is None:
                raise InvalidIndexError(f"missing tree parent for {token}@{level_no}")
            coarser.children.setdefault(parent, set()).add(token)
    for level_no in range(k):
        level = family.levels[level_no]
        for token in level.extents:
            level.children.setdefault(token, set())
    try:
        family.check_invariants()
    except AssertionError as exc:
        raise InvalidIndexError(f"family payload violates invariants: {exc}") from exc
    return family


def dump_index(index: StructuralIndex, fp: TextIO) -> None:
    """Write an index as JSON to an open text file."""
    json.dump(index_to_dict(index), fp)


def load_index(
    graph: DataGraph, fp: TextIO, cls: Type[IndexT] = StructuralIndex  # type: ignore[assignment]
) -> IndexT:
    """Read an index from JSON written by :func:`dump_index`."""
    return index_from_dict(graph, json.load(fp), cls)
