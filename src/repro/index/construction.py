"""Index construction and the partition-stabilization engine.

Two construction styles are provided:

* **Signature iteration** — the textbook fixpoint computation of (backward)
  bisimulation: start from the label partition and repeatedly refine every
  class by the *signature* ``(class(w), {class(p) | p parent of w})`` until
  the partition stops changing.  Round ``i`` of this iteration yields
  exactly the minimum A(i)-index (Definition 4), and the fixpoint is the
  minimum 1-index (Lemma 1).  Cost is O(m) per round; the number of rounds
  is the bisimulation depth of the graph (≈ document depth for XML-like
  data), which makes this the fast path for building indexes from scratch
  in Python.

* **Worklist stabilization** (:func:`stabilize`) — the compound-block
  splitting loop of Paige and Tarjan [12] exactly as transcribed in the
  paper's Figure 3 split phase, including the ``|I| <= 1/2 sum|J|``
  small-splitter rule and the three-way split by ``Succ(I)`` and
  ``Succ(I_rest)``.  The maintenance algorithms seed this engine with the
  compound blocks created by an update; the engine is also usable for full
  construction (seed with the label partition under one compound block)
  which the tests exploit to cross-check the two styles.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.obs import current as current_obs

ClassMap = dict[int, int]


# ----------------------------------------------------------------------
# Signature iteration
# ----------------------------------------------------------------------


def label_partition(graph: DataGraph) -> ClassMap:
    """Partition the dnodes by label: the A(0)-index (Definition 4).

    Class ids are dense ints in first-encounter order over ascending
    oids.  The slab fast path interns by the graph's int label ids
    straight off the slot arrays; first-encounter order of label ids
    equals that of label strings (both follow node order), so the two
    paths produce identical class maps — the cross-core fingerprint
    contract of the A/B benches.
    """
    class_of: ClassMap = {}
    oid_at = getattr(graph, "_oid_at", None)
    if oid_at is not None:
        label_ids: dict[int, int] = {}
        label_at = graph._label_at
        for slot in range(len(oid_at)):
            oid = oid_at[slot]
            if oid < 0:
                continue
            cls = label_ids.get(label_at[slot])
            if cls is None:
                cls = label_ids[label_at[slot]] = len(label_ids)
            class_of[oid] = cls
        return class_of
    ids: dict[str, int] = {}
    for node in graph.nodes():
        label = graph.label(node)
        if label not in ids:
            ids[label] = len(ids)
        class_of[node] = ids[label]
    return class_of


def refine_by_signature(
    graph: DataGraph,
    class_of: ClassMap,
    items: Optional[list[tuple[int, Sequence[int]]]] = None,
) -> ClassMap:
    """One refinement round: split classes by parents' classes.

    Returns a new class map where two dnodes share a class iff they shared
    one before *and* the sets of their parents' old classes coincide.
    Fresh class ids are dense integers starting at 0.

    Signatures are interned to those dense ints through a canonical key
    that avoids frozenset construction for the overwhelmingly common
    cases (XML-like data is tree-dominated): no parents is ``-1``, a
    single effective parent class is that bare int, and only a genuinely
    mixed parent-class set pays for a frozenset.  A singleton class set
    is collapsed to the bare int so the two spellings of "one parent
    class" can never intern to different ids.  Class ids are dense
    non-negative ints, so ``-1`` and bare-int keys cannot collide with
    anything else.

    On the slab core the predecessor slab is read **in place** through
    its offset/length headers — no per-node materialisation at all, and
    the 0/1-parent nodes that dominate document data never touch the
    slab beyond one array read.  Dict-backed graphs (the differential
    reference) walk their ``_pred`` table; callers iterating to a
    fixpoint can pass those materialised *items* once instead of paying
    the dict walk every round (:func:`bisimulation_partition`).
    """
    ids: dict[tuple[int, object], int] = {}
    refined: ClassMap = {}
    pred_slabs = getattr(graph, "_pred_slabs", None)
    if items is None and pred_slabs is not None:
        oid_at = graph._oid_at
        offsets = pred_slabs._off
        lengths = pred_slabs._len
        data = pred_slabs._data
        for slot in range(len(oid_at)):
            node = oid_at[slot]
            if node < 0:
                continue
            count = lengths[slot]
            if count == 0:
                pkey: object = -1
            elif count == 1:
                pkey = class_of[data[offsets[slot]]]
            else:
                start = offsets[slot]
                classes = {class_of[p] for p in data[start : start + count]}
                pkey = classes.pop() if len(classes) == 1 else frozenset(classes)
            signature = (class_of[node], pkey)
            cls = ids.get(signature)
            if cls is None:
                cls = ids[signature] = len(ids)
            refined[node] = cls
        return refined
    if items is None:
        pred = graph._pred
        items = ((node, pred[node]) for node in graph.nodes())
    for node, parents in items:
        if not parents:
            pkey = -1
        elif len(parents) == 1:
            (parent,) = parents
            pkey = class_of[parent]
        else:
            classes = {class_of[p] for p in parents}
            pkey = classes.pop() if len(classes) == 1 else frozenset(classes)
        signature = (class_of[node], pkey)
        cls = ids.get(signature)
        if cls is None:
            cls = ids[signature] = len(ids)
        refined[node] = cls
    return refined


def bisimulation_partition(graph: DataGraph, max_rounds: Optional[int] = None) -> ClassMap:
    """The coarsest label-respecting stable partition: the minimum 1-index.

    Iterates :func:`refine_by_signature` to the fixpoint.  Because every
    round produces a refinement of the previous partition, the fixpoint is
    reached exactly when the number of classes stops growing.
    """
    obs = current_obs()
    with obs.span("construct.bisim_partition", nodes=graph.num_nodes) as span:
        class_of = label_partition(graph)
        count = len(set(class_of.values()))
        rounds = 0
        # the slab core's refine path reads the pred slab in place each
        # round; for dict-backed graphs, materialise the (node, parents)
        # pairs once — the adjacency does not change between rounds
        items = None
        if not hasattr(graph, "_pred_slabs"):
            pred = graph._pred
            items = [(node, pred[node]) for node in graph.nodes()]
        while True:
            refined = refine_by_signature(graph, class_of, items)
            new_count = len(set(refined.values()))
            rounds += 1
            if new_count == count:
                span.set(rounds=rounds, classes=new_count)
                obs.add("construct.bisim_rounds", rounds)
                return refined
            class_of = refined
            count = new_count
            if max_rounds is not None and rounds >= max_rounds:
                span.set(rounds=rounds, classes=count, truncated=True)
                obs.add("construct.bisim_rounds", rounds)
                return class_of


def ak_class_maps(graph: DataGraph, k: int) -> list[ClassMap]:
    """Class maps of the minimum A(0), A(1), ..., A(k)-indexes.

    ``result[i][w]`` is the A(i) class of dnode *w*; ids are dense per
    level.  Each level is the signature refinement of the previous one —
    this is the construction algorithm of [9] (time O(km)).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    maps = [label_partition(graph)]
    for _ in range(k):
        maps.append(refine_by_signature(graph, maps[-1]))
    return maps


def blocks_of(class_of: ClassMap) -> list[list[int]]:
    """Group a class map into explicit blocks (lists of dnodes)."""
    blocks: dict[int, list[int]] = {}
    for node, cls in class_of.items():
        blocks.setdefault(cls, []).append(node)
    return list(blocks.values())


def partition_index(graph: DataGraph, class_of: ClassMap) -> StructuralIndex:
    """Materialise a class map as a :class:`StructuralIndex`."""
    return StructuralIndex.from_partition(graph, blocks_of(class_of))


# ----------------------------------------------------------------------
# Worklist stabilization (Figure 3 split-phase engine)
# ----------------------------------------------------------------------


@dataclass
class SplitStats:
    """Bookkeeping about one run of the stabilization engine."""

    #: number of split operations performed (new inodes created)
    splits: int = 0
    #: largest number of inodes the index reached during the run
    peak_inodes: int = 0
    #: ids of inodes created by splitting (still-live ids only at the end)
    new_inodes: set[int] = field(default_factory=set)

    def note(self, index: StructuralIndex) -> None:
        self.peak_inodes = max(self.peak_inodes, index.num_inodes)


def stabilize(
    index: StructuralIndex,
    compound_blocks: list[list[int]],
    splitter_choice: str = "small",
) -> SplitStats:
    """Split inodes until the partition is stable with respect to itself.

    *compound_blocks* seeds the worklist: each entry is a set of inodes
    that together replace one block of a previously-stable partition (for
    edge maintenance this is ``[{v}, I[v] - {v}]``).  The engine repeatedly
    takes a compound block ``CB``, extracts a small member ``I``
    (``|I| <= 1/2 * |union CB|``), re-queues the remainder when it still
    has >= 2 members, and makes every inode stable with respect to
    ``Succ(I)`` and ``Succ(CB - {I})`` via the three-way split of [12].

    On return the partition is stable w.r.t. itself **provided** it was
    stable w.r.t. the coarser partition implied by the seeds, which is the
    precondition every caller in this library establishes.

    ``Succ`` sets are snapshot as frozen dnode sets before any splitting,
    which makes the engine insensitive to self-iedges (an inode in its own
    successor set is split like any other — the "messy details" the paper
    waves at in Section 5.1 reduce to this snapshot).

    *splitter_choice* selects which member of a compound block becomes the
    splitter: ``"small"`` (the default, the paper's
    ``|I| <= 1/2 sum|J|`` rule — the smallest member always qualifies) or
    ``"first"`` (an arbitrary member, ignoring the rule).  The latter
    exists only for the ablation benchmark that quantifies what the
    small-splitter rule buys.
    """
    if splitter_choice not in ("small", "first"):
        raise ValueError(f"unknown splitter_choice {splitter_choice!r}")
    obs = current_obs()
    track = obs.enabled
    queue_peak = 0
    stats = SplitStats()
    stats.note(index)
    queue: deque[list[int]] = deque()
    member_of: dict[int, list[int]] = {}

    def enqueue(block_ids: list[int]) -> None:
        live = [i for i in block_ids if index.has_inode(i)]
        if len(live) < 2:
            return
        queue.append(live)
        for inode in live:
            member_of[inode] = live

    for block in compound_blocks:
        enqueue(list(block))

    with obs.span("construct.stabilize", seeds=len(compound_blocks)) as span:
        while queue:
            if track and len(queue) > queue_peak:
                queue_peak = len(queue)
            compound = queue.popleft()
            compound[:] = [i for i in compound if index.has_inode(i)]
            if len(compound) < 2:
                for inode in compound:
                    member_of.pop(inode, None)
                continue
            if splitter_choice == "small":
                # The smallest member always satisfies |I| <= 1/2 * total.
                splitter = min(compound, key=index.extent_size)
            else:
                splitter = compound[0]
            rest = [i for i in compound if i != splitter]
            member_of.pop(splitter, None)
            if len(rest) >= 2:
                queue.append(rest)
                for inode in rest:
                    member_of[inode] = rest
            else:
                for inode in rest:
                    member_of.pop(inode, None)

            succ_splitter = frozenset(index.succ_extent(splitter))
            succ_rest = frozenset(index.succ_extent_of(rest))

            # Group Succ(I) by containing inode: K -> K ∩ Succ(I).
            touched: dict[int, set[int]] = {}
            for w in succ_splitter:
                touched.setdefault(index.inode_of(w), set()).add(w)

            for k_inode, k1 in touched.items():
                k11 = {w for w in k1 if w in succ_rest}
                k12 = k1 - k11
                pieces = _three_way_split(index, k_inode, k1, k11, k12, stats)
                if len(pieces) < 2:
                    continue
                holder = member_of.get(k_inode)
                if holder is not None:
                    holder.remove(k_inode)
                    member_of.pop(k_inode, None)
                    holder.extend(pieces)
                    for inode in pieces:
                        member_of[inode] = holder
                else:
                    enqueue(pieces)
            stats.note(index)
        span.set(
            splits=stats.splits, peak_inodes=stats.peak_inodes, queue_peak=queue_peak
        )
    if track:
        obs.add("construct.splits", stats.splits)
        obs.observe("construct.queue_peak", queue_peak)
    return stats


def _three_way_split(
    index: StructuralIndex,
    k_inode: int,
    k1: set[int],
    k11: set[int],
    k12: set[int],
    stats: SplitStats,
) -> list[int]:
    """Split ``K`` into the non-empty pieces of ``{K11, K12, K2}``.

    ``K2 = K - K1`` keeps the original inode id (it is never moved);
    returns the ids of all resulting pieces (1 to 3 of them).
    """
    k2_nonempty = len(k1) < index.extent_size(k_inode)
    pieces = [k_inode]
    if k2_nonempty:
        if k11:
            new = index.split_off(k_inode, k11)
            pieces.append(new)
            stats.splits += 1
            stats.new_inodes.add(new)
        if k12:
            new = index.split_off(k_inode, k12)
            pieces.append(new)
            stats.splits += 1
            stats.new_inodes.add(new)
    elif k11 and k12:
        # K == K1: a two-way split; move the smaller side.
        mover = k12 if len(k12) <= len(k11) else k11
        new = index.split_off(k_inode, mover)
        pieces.append(new)
        stats.splits += 1
        stats.new_inodes.add(new)
    stats.note(index)
    return pieces


def stabilize_from_labels(graph: DataGraph) -> StructuralIndex:
    """Full 1-index construction through the worklist engine.

    Used by the tests to cross-check :func:`bisimulation_partition`:
    materialise the label partition, make it stable w.r.t. the whole node
    set (split every block into "has a parent" / "has none"), then run
    :func:`stabilize` with all blocks in one compound block.
    """
    index = partition_index(graph, label_partition(graph))
    with_parents: dict[int, set[int]] = {}
    for node in graph.nodes():
        if graph.in_degree(node) > 0:
            with_parents.setdefault(index.inode_of(node), set()).add(node)
    for inode, members in list(with_parents.items()):
        if len(members) < index.extent_size(inode):
            index.split_off(inode, members)
    stabilize(index, [list(index.inodes())])
    return index
