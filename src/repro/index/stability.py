"""Stability, validity, minimality and minimum-ness oracles.

These functions are the executable versions of Definitions 1, 2, 5 and 6
and are used both by the maintenance layer (cheap minimality predicates)
and by the test-suite as ground truth (expensive whole-index checks,
O(n + m) or worse — never called on hot paths).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.index.construction import (
    ClassMap,
    ak_class_maps,
    bisimulation_partition,
)


def is_stable_wrt(index: StructuralIndex, target: int, splitter: int) -> bool:
    """Definition 1: is inode *target* stable w.r.t. inode *splitter*?

    ``I`` is stable w.r.t. ``J`` iff ``I ⊆ Succ(J)`` or ``I ∩ Succ(J) = ∅``.
    """
    succ = index.succ_extent(splitter)
    extent = index.extent(target)
    hit = sum(1 for w in extent if w in succ)
    return hit == 0 or hit == len(extent)


def unstable_pairs(index: StructuralIndex) -> list[tuple[int, int]]:
    """All ``(target, splitter)`` inode pairs violating stability.

    Only pairs connected by an iedge can be unstable (if no dedge runs from
    ``J`` to ``I`` the intersection is empty), so the scan is limited to
    iedges.
    """
    violations: list[tuple[int, int]] = []
    for splitter in index.inodes():
        succ = index.succ_extent(splitter)
        for target in index.isucc(splitter):
            extent = index.extent(target)
            hit = sum(1 for w in extent if w in succ)
            if 0 < hit < len(extent):
                violations.append((target, splitter))
    return violations


def is_self_stable(index: StructuralIndex) -> bool:
    """Whether the index is stable with respect to itself."""
    return not unstable_pairs(index)


def is_valid_1index(index: StructuralIndex) -> bool:
    """Definition 2: label-homogeneous partition + self-stability.

    Label homogeneity and partition-ness are enforced structurally by
    :class:`StructuralIndex`, so only self-stability needs checking; the
    structural invariants are still re-asserted for oracle strength.
    """
    index.check_invariants()
    return is_self_stable(index)


def mergeable_pairs(index: StructuralIndex) -> list[tuple[int, int]]:
    """Inode pairs with the same label and the same index-parent set.

    By the remark under Definition 5, a 1-index is minimal iff this list
    is empty.  Runs in O(#inodes) expected time via signature grouping.
    """
    groups: dict[tuple[str, frozenset[int]], list[int]] = {}
    for inode in index.inodes():
        signature = (index.label_of(inode), index.ipred_set(inode))
        groups.setdefault(signature, []).append(inode)
    pairs: list[tuple[int, int]] = []
    for members in groups.values():
        if len(members) > 1:
            anchor = members[0]
            pairs.extend((anchor, other) for other in members[1:])
    return pairs


def is_minimal_1index(index: StructuralIndex) -> bool:
    """Definition 5 via the same-label/same-parents characterisation."""
    return is_valid_1index(index) and not mergeable_pairs(index)


def minimum_1index_size(graph: DataGraph) -> int:
    """Number of inodes in the (unique, Lemma 1) minimum 1-index."""
    return len(set(bisimulation_partition(graph).values()))


def is_minimum_1index(index: StructuralIndex) -> bool:
    """Whether *index* is exactly the minimum 1-index of its graph."""
    minimum = bisimulation_partition(index.graph)
    return _same_partition(index, minimum)


def minimum_ak_size(graph: DataGraph, k: int) -> int:
    """Number of inodes in the (unique, Lemma 2) minimum A(k)-index."""
    return len(set(ak_class_maps(graph, k)[k].values()))


def is_minimum_ak(index: StructuralIndex, k: int) -> bool:
    """Whether *index* is exactly the minimum A(k)-index of its graph."""
    minimum = ak_class_maps(index.graph, k)[k]
    return _same_partition(index, minimum)


def is_refinement(finer: Iterable[frozenset[int]], coarser: ClassMap) -> bool:
    """Definition 3: every block of *finer* fits inside one *coarser* class."""
    for block in finer:
        classes = {coarser[w] for w in block}
        if len(classes) > 1:
            return False
    return True


def _same_partition(index: StructuralIndex, class_of: ClassMap) -> bool:
    """Compare an index partition with a class map, ignoring id names."""
    blocks: dict[int, set[int]] = {}
    for node, cls in class_of.items():
        blocks.setdefault(cls, set()).add(node)
    want = {frozenset(b) for b in blocks.values()}
    return index.as_blocks() == want
