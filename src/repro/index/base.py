"""Core structural-index representation (Section 3 of the paper).

A structural index is determined by a *partition* of the dnodes into
inodes; the index edges (iedges) are derived: there is an iedge
``I -> J`` iff some dedge runs from the extent of ``I`` to the extent of
``J``.  This module owns that representation:

* ``dnode -> inode`` mapping and inode extents (the partition);
* iedges with **support counts** — ``support(I, J)`` is the number of
  dedges between the two extents — so that splits, merges and dedge
  insertions/deletions can maintain the iedge set incrementally in time
  proportional to the work already being done on the extents;
* primitive partition surgery (:meth:`split_off`, :meth:`merge_inodes`,
  :meth:`move_dnode`) on which the maintenance algorithms are built.

Storage layout (the array-backed core)
--------------------------------------
Extents are compact unsorted ``array('q')`` runs, one per inode, paired
with two :class:`~repro.core.intmap.PagedIntMap` side tables: ``oid →
inode id`` (the partition map) and ``oid → position inside its extent
array``.  Membership is answered by the partition map, removal is an
O(1) swap-with-last through the position map, and :meth:`extent`
returns a generation-memoized frozen view (like the ``ipred_set``
cache).  Support tables remain plain dict-of-dicts — there are few
inodes and the tests introspect them.  The historical dict-of-sets
implementation is retained as :class:`repro.core.refimpl.DictIndex`
(the differential-testing oracle).  Wire dumps delta-encode the sorted
extents; see :mod:`repro.index.serialize` and DESIGN.md §13.

The invariant linking partition and iedges can always be re-derived from
scratch with :meth:`rebuild_iedges`; :meth:`check_invariants` compares the
incremental state against that oracle and is used heavily by the tests.
"""

from __future__ import annotations

import sys
from array import array
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.core.intmap import PAGE_BITS, PAGE_MASK, PagedIntMap
from repro.exceptions import InvalidIndexError, StructuralIndexError
from repro.graph.datagraph import DataGraph


class INodeView:
    """A read-only handle on one inode of a :class:`StructuralIndex`.

    Views are cheap throwaway objects; all state lives in the index.
    """

    __slots__ = ("_index", "_id")

    def __init__(self, index: "StructuralIndex", inode_id: int):
        self._index = index
        self._id = inode_id

    @property
    def id(self) -> int:
        """The inode identifier."""
        return self._id

    @property
    def label(self) -> str:
        """The shared label of every dnode in the extent."""
        return self._index.label_of(self._id)

    @property
    def extent(self) -> frozenset[int]:
        """The dnodes of this inode."""
        return frozenset(self._index.extent(self._id))

    @property
    def isucc(self) -> frozenset[int]:
        """Ids of index successors."""
        return frozenset(self._index.isucc(self._id))

    @property
    def ipred(self) -> frozenset[int]:
        """Ids of index predecessors."""
        return frozenset(self._index.ipred(self._id))

    def __len__(self) -> int:
        return self._index.extent_size(self._id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extent = sorted(self._index.extent(self._id))
        return f"<INode {self._id} label={self.label!r} extent={extent}>"


class StructuralIndex:
    """A node-partition structural index over a :class:`DataGraph`.

    The class is policy-free: it enforces only that the partition covers
    the graph and that labels inside an inode agree.  *Which* partition
    constitutes a 1-index or an A(k)-index is the business of the
    construction and maintenance layers.
    """

    def __init__(self, graph: DataGraph):
        self.graph = graph
        #: dnode oid -> inode id (the partition map)
        self._inode_of = PagedIntMap()
        #: dnode oid -> its position inside its inode's extent array
        self._pos_of = PagedIntMap()
        #: inode id -> compact unsorted extent array
        self._extent_arr: dict[int, array] = {}
        self._label: dict[int, str] = {}
        # support counts: _succ_support[I][J] = #dedges from extent(I) to extent(J)
        self._succ_support: dict[int, dict[int, int]] = {}
        self._pred_support: dict[int, dict[int, int]] = {}
        self._next_id = 0
        #: undo-log hook: a :class:`repro.resilience.MutationJournal` while
        #: a transaction is open, ``None`` (a no-op) otherwise.
        self._journal = None
        #: mutation counter: every mutator bumps it, invalidating the
        #: memoized frozen views (see :meth:`ipred_set`/:meth:`extent`)
        self._generation: int = 0
        self._ipred_view: dict[int, frozenset[int]] = {}
        self._isucc_view: dict[int, frozenset[int]] = {}
        self._extent_view: dict[int, frozenset[int]] = {}
        self._view_generation: int = 0

    # ------------------------------------------------------------------
    # Extent bookkeeping (internal)
    # ------------------------------------------------------------------

    def _extent_append(self, inode: int, dnode: int) -> None:
        arr = self._extent_arr[inode]
        self._pos_of[dnode] = len(arr)
        arr.append(dnode)

    def _extent_swap_remove(self, inode: int, dnode: int) -> None:
        arr = self._extent_arr[inode]
        pos = self._pos_of.pop(dnode)
        last = arr.pop()
        if last != dnode:
            arr[pos] = last
            self._pos_of[last] = pos

    def _fresh_views(self) -> None:
        if self._view_generation != self._generation:
            self._ipred_view.clear()
            self._isucc_view.clear()
            self._extent_view.clear()
            self._view_generation = self._generation

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------

    @classmethod
    def from_partition(
        cls, graph: DataGraph, blocks: Iterable[Iterable[int]]
    ) -> "StructuralIndex":
        """Build an index from an explicit partition of the dnodes.

        Raises :class:`InvalidIndexError` if *blocks* is not a partition of
        the graph's nodes or if some block mixes labels.
        """
        index = cls(graph)
        inode_of = index._inode_of
        for block in blocks:
            members = list(block)
            if not members:
                continue
            labels = {graph.label(w) for w in members}
            if len(labels) != 1:
                raise InvalidIndexError(f"block {sorted(members)} mixes labels {labels}")
            inode = index.new_inode(labels.pop())
            for w in members:
                if inode_of.get(w) is not None:
                    raise InvalidIndexError(f"dnode {w} appears in two blocks")
                inode_of[w] = inode
                index._extent_append(inode, w)
        missing = set(graph.nodes()) - set(inode_of)
        if missing:
            raise InvalidIndexError(f"partition misses dnodes {sorted(missing)[:5]}...")
        index.rebuild_iedges()
        return index

    @classmethod
    def _from_partition_trusted(
        cls, graph: DataGraph, blocks: Iterable[Iterable[int]]
    ) -> "StructuralIndex":
        """:meth:`from_partition` minus validation, for construction output.

        The from-scratch builders hand over partitions that are correct
        by construction (label-homogeneous, covering, disjoint — the
        refinement loop only ever splits the label partition), so the
        per-dnode label and duplicate checks of the public entry point
        are pure overhead on the hot rebuild path.  Blocks are loaded
        with bulk fills: one C-level ``array('q')`` per extent plus the
        paged-map block writes of :meth:`PagedIntMap.set_all`.
        """
        index = cls(graph)
        inode_of = index._inode_of
        pos_of = index._pos_of
        label = graph.label
        for block in blocks:
            members = block if type(block) is list else list(block)
            if not members:
                continue
            inode = index.new_inode(label(members[0]))
            index._extent_arr[inode] = array("q", members)
            inode_of.set_all(members, inode)
            pos_of.set_enumerated(members)
        index.rebuild_iedges()
        return index

    def new_inode(self, label: str) -> int:
        """Create an empty inode with the given label and return its id."""
        inode = self._next_id
        self._next_id += 1
        self._extent_arr[inode] = array("q")
        self._label[inode] = label
        self._succ_support[inode] = {}
        self._pred_support[inode] = {}
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "inode_created", (inode,))
        return inode

    def _adopt_from(self, fresh: "StructuralIndex") -> None:
        """Swap this index's state wholesale for *fresh*'s.

        The reconstruction paths build a from-scratch index and adopt it
        in place (the caller object must keep its identity — services
        and maintainers hold references).  Bumps the generation since
        the swap bypasses the mutators.
        """
        self._inode_of = fresh._inode_of
        self._pos_of = fresh._pos_of
        self._extent_arr = fresh._extent_arr
        self._label = fresh._label
        self._succ_support = fresh._succ_support
        self._pred_support = fresh._pred_support
        self._next_id = fresh._next_id
        self._generation += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def inode_of(self, dnode: int) -> int:
        """The id of the inode whose extent contains *dnode* (``I[v]``)."""
        inode = self._inode_of.get(dnode)
        if inode is None:
            raise StructuralIndexError(f"dnode {dnode} is not covered by the index")
        return inode

    def covers(self, dnode: int) -> bool:
        """Whether *dnode* is assigned to some inode."""
        return dnode in self._inode_of

    def extent(self, inode: int) -> frozenset[int]:
        """The extent of *inode* as a frozen set.

        Memoized per generation, like :meth:`ipred_set`: repeated reads
        between mutations share one frozen object.
        """
        self._require(inode)
        self._fresh_views()
        view = self._extent_view.get(inode)
        if view is None:
            view = self._extent_view[inode] = frozenset(self._extent_arr[inode])
        return view

    def extent_size(self, inode: int) -> int:
        """``|extent(inode)|``."""
        self._require(inode)
        return len(self._extent_arr[inode])

    def label_of(self, inode: int) -> str:
        """The label shared by the extent of *inode*."""
        self._require(inode)
        return self._label[inode]

    def has_inode(self, inode: int) -> bool:
        """Whether *inode* is a live inode id."""
        return inode in self._extent_arr

    def inodes(self) -> Iterator[int]:
        """Iterate over all live inode ids."""
        return iter(self._extent_arr)

    def view(self, inode: int) -> INodeView:
        """A read-only :class:`INodeView` for *inode*."""
        self._require(inode)
        return INodeView(self, inode)

    def views(self) -> Iterator[INodeView]:
        """Iterate over read-only views of all inodes."""
        return (INodeView(self, inode) for inode in list(self._extent_arr))

    @property
    def num_inodes(self) -> int:
        """Number of inodes in the index."""
        return len(self._extent_arr)

    @property
    def num_iedges(self) -> int:
        """Number of distinct iedges."""
        return sum(len(targets) for targets in self._succ_support.values())

    def __len__(self) -> int:
        return len(self._extent_arr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StructuralIndex inodes={self.num_inodes} iedges={self.num_iedges}>"

    # ------------------------------------------------------------------
    # Index-graph navigation
    # ------------------------------------------------------------------

    def isucc(self, inode: int) -> Iterator[int]:
        """Index successors ``ISucc(I)`` (iterator over inode ids)."""
        self._require(inode)
        return iter(self._succ_support[inode])

    def ipred(self, inode: int) -> Iterator[int]:
        """Index predecessors (iterator over inode ids)."""
        self._require(inode)
        return iter(self._pred_support[inode])

    @property
    def generation(self) -> int:
        """Mutation counter; bumped by every mutator.

        One integer comparison tells callers (and the memoized views
        below) whether anything changed since they last looked.
        """
        return self._generation

    def ipred_set(self, inode: int) -> frozenset[int]:
        """Index predecessors as a frozen set (hashable merge signature).

        Memoized per generation: the split/merge engine probes the same
        inodes' predecessor signatures repeatedly inside nested loops, so
        repeated calls between mutations return the same frozen object
        instead of allocating a copy each time.
        """
        self._require(inode)
        self._fresh_views()
        view = self._ipred_view.get(inode)
        if view is None:
            view = self._ipred_view[inode] = frozenset(self._pred_support[inode])
        return view

    def isucc_set(self, inode: int) -> frozenset[int]:
        """Index successors as a frozen set.

        Memoized per generation, like :meth:`ipred_set`.
        """
        self._require(inode)
        self._fresh_views()
        view = self._isucc_view.get(inode)
        if view is None:
            view = self._isucc_view[inode] = frozenset(self._succ_support[inode])
        return view

    def has_iedge(self, source: int, target: int) -> bool:
        """Whether the iedge ``source -> target`` exists."""
        self._require(source)
        self._require(target)
        return target in self._succ_support[source]

    def support(self, source: int, target: int) -> int:
        """Number of dedges witnessing the iedge ``source -> target``."""
        self._require(source)
        self._require(target)
        return self._succ_support[source].get(target, 0)

    def succ_extent(self, inode: int) -> set[int]:
        """``Succ(I)``: dnode successors of the extent of *inode*."""
        self._require(inode)
        result: set[int] = set()
        graph = self.graph
        slot_of = getattr(graph, "_slot_of", None)
        if slot_of is not None:  # slab fast path: bulk set.update per segment
            succ_slabs = graph._succ_slabs
            for w in self._extent_arr[inode]:
                result.update(succ_slabs.segment(slot_of[w]))
        else:
            for w in self._extent_arr[inode]:
                result.update(graph.iter_succ(w))
        return result

    def succ_extent_of(self, inodes: Iterable[int]) -> set[int]:
        """``Succ(I1 u I2 u ...)`` for a collection of inode ids."""
        result: set[int] = set()
        for inode in inodes:
            result.update(self.succ_extent(inode))
        return result

    def dnode_iparents(self, dnode: int) -> frozenset[int]:
        """Index parents of a *dnode*: ``{I[w'] | dnode in Succ(w')}``.

        In a valid 1-index this equals the index parents of ``I[dnode]``
        (see the proof of Lemma 3); on an intermediate partition the two
        may differ, and the dnode-level notion is the meaningful one.
        """
        inode_of = self._inode_of
        return frozenset(inode_of[p] for p in self.graph.iter_pred(dnode))

    # ------------------------------------------------------------------
    # Partition surgery
    # ------------------------------------------------------------------

    def move_dnode(self, dnode: int, to_inode: int) -> None:
        """Move one dnode into another (existing) inode, updating iedges.

        Cost O(degree of *dnode*).  The source inode is *not* removed if
        it becomes empty; callers decide (see :meth:`remove_if_empty`).
        """
        self._require(to_inode)
        source = self.inode_of(dnode)
        if source == to_inode:
            return
        if self._label[to_inode] != self.graph.label(dnode):
            raise InvalidIndexError(
                f"cannot move dnode {dnode} ({self.graph.label(dnode)!r}) "
                f"into inode labeled {self._label[to_inode]!r}"
            )
        self._detach(dnode)
        self._extent_swap_remove(source, dnode)
        self._inode_of[dnode] = to_inode
        self._extent_append(to_inode, dnode)
        self._attach(dnode)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_moved", (dnode, source))

    def split_off(self, inode: int, members: Iterable[int]) -> int:
        """Split *members* out of *inode* into a fresh inode; return its id.

        *members* must be a non-empty proper subset of the extent.
        """
        member_list = list(members)
        extent = self.extent(inode)
        if not member_list:
            raise StructuralIndexError("cannot split off an empty set")
        for w in member_list:
            if w not in extent:
                raise StructuralIndexError(f"dnode {w} not in inode {inode}")
        if len(member_list) == len(extent):
            raise StructuralIndexError("cannot split off the whole extent")
        new_inode = self.new_inode(self._label[inode])
        for w in member_list:
            self.move_dnode(w, new_inode)
        return new_inode

    def merge_inodes(self, inodes: Iterable[int]) -> int:
        """Merge several inodes into one; return the surviving id.

        The largest extent survives (so the cost is proportional to the
        *smaller* extents).  Labels must agree.  Support counters are
        folded directly — no dnode adjacency is touched — so merging is
        O(members moved + iedges folded).
        """
        ids = list(dict.fromkeys(inodes))
        if len(ids) < 2:
            raise StructuralIndexError("merge needs at least two distinct inodes")
        labels = {self.label_of(i) for i in ids}
        if len(labels) != 1:
            raise InvalidIndexError(f"cannot merge inodes with labels {labels}")
        survivor = max(ids, key=lambda i: len(self._extent_arr[i]))
        for other in ids:
            if other != survivor:
                self._fold_into(survivor, other)
        return survivor

    def _fold_into(self, survivor: int, other: int) -> None:
        """Absorb *other* into *survivor* (extent, mapping, supports)."""
        before = None
        if self._journal is not None:
            # Before-image for rollback: other's whole entry plus the
            # survivor's support tables (third-party rows are derivable
            # from other's tables — see _undo_journal's "merge_folded").
            before = (
                survivor,
                other,
                self._label[other],
                frozenset(self._extent_arr[other]),
                dict(self._succ_support[other]),
                dict(self._pred_support[other]),
                dict(self._succ_support[survivor]),
                dict(self._pred_support[survivor]),
            )
        inode_of = self._inode_of
        pos_of = self._pos_of
        surv_arr = self._extent_arr[survivor]
        base = len(surv_arr)
        other_arr = self._extent_arr[other]
        for offset, w in enumerate(other_arr):
            inode_of[w] = survivor
            pos_of[w] = base + offset
        surv_arr.extend(other_arr)

        surv_succ = self._succ_support[survivor]
        surv_pred = self._pred_support[survivor]

        # survivor -> other edges become a survivor self-iedge.  Their pred
        # side lives in other's table, which is dropped wholesale below.
        count = surv_succ.pop(other, 0)
        if count:
            self._bump(surv_succ, survivor, count)
            self._bump(surv_pred, survivor, count)
        # other -> survivor edges, symmetrically.
        count = surv_pred.pop(other, 0)
        if count:
            self._bump(surv_succ, survivor, count)
            self._bump(surv_pred, survivor, count)

        # other's remaining outgoing edges (third parties and self-iedge).
        for target, count in self._succ_support[other].items():
            if target == survivor:
                continue  # already folded above
            if target == other:
                self._bump(surv_succ, survivor, count)
                self._bump(surv_pred, survivor, count)
                continue
            self._bump(surv_succ, target, count)
            target_pred = self._pred_support[target]
            target_pred.pop(other)
            self._bump(target_pred, survivor, count)
        # other's remaining incoming edges from third parties.
        for origin, count in self._pred_support[other].items():
            if origin in (survivor, other):
                continue  # already folded above
            self._bump(surv_pred, origin, count)
            origin_succ = self._succ_support[origin]
            origin_succ.pop(other)
            self._bump(origin_succ, survivor, count)

        del self._extent_arr[other]
        del self._label[other]
        del self._succ_support[other]
        del self._pred_support[other]
        self._generation += 1
        if before is not None:
            self._journal.record(self, "merge_folded", before)

    def remove_if_empty(self, inode: int) -> bool:
        """Delete *inode* if its extent is empty.  Returns whether deleted."""
        if inode not in self._extent_arr or len(self._extent_arr[inode]):
            return False
        if self._succ_support[inode] or self._pred_support[inode]:
            raise StructuralIndexError(
                f"empty inode {inode} still has iedges; supports corrupted"
            )
        label = self._label[inode]
        del self._extent_arr[inode]
        del self._label[inode]
        del self._succ_support[inode]
        del self._pred_support[inode]
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "inode_destroyed", (inode, label))
        return True

    def add_dnode(self, dnode: int, inode: Optional[int] = None) -> int:
        """Cover a newly created dnode.

        With *inode* given, join that inode (labels must match); otherwise a
        fresh singleton inode is created.  The dnode's edges, if any already
        exist, are accounted for.  Returns the inode id.
        """
        if self._inode_of.get(dnode) is not None:
            raise StructuralIndexError(f"dnode {dnode} is already covered")
        label = self.graph.label(dnode)
        if inode is None:
            inode = self.new_inode(label)
        elif self._label[inode] != label:
            raise InvalidIndexError(
                f"dnode {dnode} ({label!r}) cannot join inode labeled "
                f"{self._label[inode]!r}"
            )
        self._extent_append(inode, dnode)
        self._inode_of[dnode] = inode
        self._attach(dnode)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_covered", (dnode, inode))
        return inode

    def absorb_blocks(self, blocks: Iterable[Iterable[int]]) -> list[int]:
        """Cover a batch of new dnodes with a given partition of them.

        Used by subgraph addition (Section 5.2): the subgraph's own index
        blocks are adopted wholesale.  Every dnode in *blocks* must exist
        in the graph and be uncovered; all dedges among covered nodes that
        involve a new node are accounted.  Returns the new inode ids, one
        per block, in order.
        """
        new_ids: list[int] = []
        new_nodes: set[int] = set()
        inode_of = self._inode_of
        for block in blocks:
            members = list(block)
            if not members:
                continue
            inode = self.new_inode(self.graph.label(members[0]))
            new_ids.append(inode)
            for w in members:
                if inode_of.get(w) is not None:
                    raise StructuralIndexError(f"dnode {w} is already covered")
                if self.graph.label(w) != self._label[inode]:
                    raise InvalidIndexError(f"block mixes labels at dnode {w}")
                inode_of[w] = inode
                self._extent_append(inode, w)
                new_nodes.add(w)
        self._account_new_nodes(new_nodes, 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "blocks_absorbed", (frozenset(new_nodes),))
        return new_ids

    def _account_new_nodes(self, new_nodes: set[int], sign: int) -> None:
        """(Un)count the dedges incident to a batch of newly covered dnodes.

        Shared by :meth:`absorb_blocks` (``sign=1``) and its journal undo
        (``sign=-1``); both run against identical graph adjacency, so the
        traversal — including the internal-edge dedup — cancels exactly.
        """
        inode_of = self._inode_of
        for w in new_nodes:
            wi = inode_of[w]
            for c in self.graph.iter_succ(w):
                ci = inode_of.get(c)
                if ci is not None:
                    self._bump(self._succ_support[wi], ci, sign)
                    self._bump(self._pred_support[ci], wi, sign)
            for p in self.graph.iter_pred(w):
                if p in new_nodes or p == w:
                    continue  # internal edges were counted from the succ side
                pi = inode_of.get(p)
                if pi is not None:
                    self._bump(self._succ_support[pi], wi, sign)
                    self._bump(self._pred_support[wi], pi, sign)

    def drop_dnode(self, dnode: int) -> None:
        """Stop covering *dnode* (used when deleting nodes from the graph).

        The dnode's incident dedges must already be gone from the graph,
        or the support counters would drift.
        """
        inode = self.inode_of(dnode)
        self._detach(dnode)
        self._extent_swap_remove(inode, dnode)
        del self._inode_of[dnode]
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "dnode_dropped", (dnode, inode))
        self.remove_if_empty(inode)

    # ------------------------------------------------------------------
    # Dedge notifications
    # ------------------------------------------------------------------

    def note_edge_added(self, source: int, target: int) -> None:
        """Account for a dedge that was just added to the data graph."""
        si = self.inode_of(source)
        ti = self.inode_of(target)
        self._bump(self._succ_support[si], ti, 1)
        self._bump(self._pred_support[ti], si, 1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "support_bumped", (si, ti, 1))

    def note_edge_removed(self, source: int, target: int) -> None:
        """Account for a dedge that was just removed from the data graph."""
        si = self.inode_of(source)
        ti = self.inode_of(target)
        self._bump(self._succ_support[si], ti, -1)
        self._bump(self._pred_support[ti], si, -1)
        self._generation += 1
        if self._journal is not None:
            self._journal.record(self, "support_bumped", (si, ti, -1))

    # ------------------------------------------------------------------
    # Oracles / invariants
    # ------------------------------------------------------------------

    def rebuild_iedges(self) -> None:
        """Recompute all support counters from the partition (O(n + m))."""
        for inode in self._extent_arr:
            self._succ_support[inode] = {}
            self._pred_support[inode] = {}
        inode_of = self._inode_of
        succ_support = self._succ_support
        pred_support = self._pred_support
        graph = self.graph
        oid_at = getattr(graph, "_oid_at", None)
        if oid_at is not None:
            # slab fast path: walk the successor slabs in slot order and
            # read the paged map's pages directly — every oid seen here
            # is live, so the absence checks of ``get`` can't fire
            pages = inode_of._pages
            succ_slabs = graph._succ_slabs
            for slot in range(len(oid_at)):
                source = oid_at[slot]
                if source < 0:
                    continue
                targets = succ_slabs.segment(slot)
                if not targets:
                    continue
                si = pages[source >> PAGE_BITS][source & PAGE_MASK]
                ssup = succ_support[si]
                for target in targets:
                    ti = pages[target >> PAGE_BITS][target & PAGE_MASK]
                    ssup[ti] = ssup.get(ti, 0) + 1
                    psup = pred_support[ti]
                    psup[si] = psup.get(si, 0) + 1
        else:
            for source, target in graph.edges():
                si = inode_of[source]
                ti = inode_of[target]
                self._bump(succ_support[si], ti, 1)
                self._bump(pred_support[ti], si, 1)
        self._generation += 1

    def partition(self) -> list[frozenset[int]]:
        """The partition as a list of frozen extents (testing helper)."""
        return [frozenset(arr) for arr in self._extent_arr.values()]

    def as_blocks(self) -> set[frozenset[int]]:
        """The partition as a set of frozen extents (order-insensitive)."""
        return {frozenset(arr) for arr in self._extent_arr.values()}

    def copy(self) -> "StructuralIndex":
        """An independent copy sharing the same graph object."""
        clone = StructuralIndex(self.graph)
        clone._inode_of = self._inode_of.copy()
        clone._pos_of = self._pos_of.copy()
        clone._extent_arr = {i: array("q", a) for i, a in self._extent_arr.items()}
        clone._label = dict(self._label)
        clone._succ_support = {i: dict(s) for i, s in self._succ_support.items()}
        clone._pred_support = {i: dict(p) for i, p in self._pred_support.items()}
        clone._next_id = self._next_id
        return clone

    def approx_bytes(self) -> int:
        """Approximate resident bytes of the index's storage.

        O(#inodes + #pages), cheap enough to publish as a gauge on every
        commit.  Support-table entries are estimated at a flat 56 bytes
        (dict slot + boxed key and count).
        """
        total = self._inode_of.approx_bytes() + self._pos_of.approx_bytes()
        total += sys.getsizeof(self._extent_arr) + sys.getsizeof(self._label)
        total += 64 * len(self._label)
        for arr in self._extent_arr.values():
            total += sys.getsizeof(arr) + 64
        for table in (self._succ_support, self._pred_support):
            total += sys.getsizeof(table)
            for inner in table.values():
                total += sys.getsizeof(inner) + 56 * len(inner) + 64
        return total

    def check_invariants(self) -> None:
        """Assert partition/iedge consistency against the from-scratch oracle."""
        covered: set[int] = set()
        for inode, arr in self._extent_arr.items():
            assert len(arr), f"inode {inode} has an empty extent"
            extent = set(arr)
            assert len(extent) == len(arr), f"extent of inode {inode} has duplicates"
            for pos, w in enumerate(arr):
                assert self._inode_of.get(w) == inode, f"mapping broken for dnode {w}"
                assert self._pos_of.get(w) == pos, f"position broken for dnode {w}"
                assert self.graph.label(w) == self._label[inode], (
                    f"label mismatch in inode {inode}"
                )
            assert not (covered & extent), "extents overlap"
            covered |= extent
        assert covered == set(self.graph.nodes()), "partition does not cover the graph"

        oracle: dict[int, dict[int, int]] = {i: {} for i in self._extent_arr}
        for source, target in self.graph.edges():
            self._bump(oracle[self._inode_of[source]], self._inode_of[target], 1)
        for inode in self._extent_arr:
            assert self._succ_support[inode] == oracle[inode], (
                f"succ supports of inode {inode} drifted: "
                f"{self._succ_support[inode]} != {oracle[inode]}"
            )
        pred_oracle: dict[int, dict[int, int]] = {i: {} for i in self._extent_arr}
        for source, targets in oracle.items():
            for target, count in targets.items():
                self._bump(pred_oracle[target], source, count)
        for inode in self._extent_arr:
            assert self._pred_support[inode] == pred_oracle[inode], (
                f"pred supports of inode {inode} drifted"
            )

    # ------------------------------------------------------------------
    # Journal undo (repro.resilience)
    # ------------------------------------------------------------------

    def _undo_journal(self, op: str, payload: tuple) -> None:
        """Apply the inverse of one journaled mutation.

        Called by :meth:`repro.resilience.MutationJournal.rollback` with
        records in reverse order.  Undo paths may read graph adjacency
        (via ``_detach``/``_attach``): the journal interleaves graph and
        index records in one log, so by the time an index record is
        undone every later graph mutation has already been reverted and
        the adjacency matches what this record saw when it was written.
        """
        self._generation += 1
        if op == "support_bumped":
            si, ti, delta = payload
            self._bump(self._succ_support[si], ti, -delta)
            self._bump(self._pred_support[ti], si, -delta)
        elif op == "dnode_moved":
            dnode, from_inode = payload
            to_inode = self._inode_of[dnode]
            self._detach(dnode)
            self._extent_swap_remove(to_inode, dnode)
            self._inode_of[dnode] = from_inode
            self._extent_append(from_inode, dnode)
            self._attach(dnode)
        elif op == "dnode_covered":
            dnode, inode = payload
            self._detach(dnode)
            self._extent_swap_remove(inode, dnode)
            del self._inode_of[dnode]
        elif op == "dnode_dropped":
            dnode, inode = payload
            self._extent_append(inode, dnode)
            self._inode_of[dnode] = inode
            self._attach(dnode)
        elif op == "inode_created":
            (inode,) = payload
            del self._extent_arr[inode]
            del self._label[inode]
            del self._succ_support[inode]
            del self._pred_support[inode]
            self._next_id = inode
        elif op == "inode_destroyed":
            inode, label = payload
            self._extent_arr[inode] = array("q")
            self._label[inode] = label
            self._succ_support[inode] = {}
            self._pred_support[inode] = {}
        elif op == "merge_folded":
            (
                survivor,
                other,
                other_label,
                other_extent,
                other_succ,
                other_pred,
                surv_succ,
                surv_pred,
            ) = payload
            # Resurrect other wholesale and give survivor its old tables.
            # The extent arrays are rebuilt (positions may have shifted
            # since the record was written; set-membership is the
            # observable state, array order is not).
            other_members = set(other_extent)
            surv_arr = self._extent_arr[survivor]
            new_surv = array("q", (w for w in surv_arr if w not in other_members))
            self._extent_arr[survivor] = new_surv
            pos_of = self._pos_of
            inode_of = self._inode_of
            for pos, w in enumerate(new_surv):
                pos_of[w] = pos
            other_arr = array("q", sorted(other_members))
            self._extent_arr[other] = other_arr
            for pos, w in enumerate(other_arr):
                pos_of[w] = pos
                inode_of[w] = other
            self._label[other] = other_label
            self._succ_support[other] = dict(other_succ)
            self._pred_support[other] = dict(other_pred)
            self._succ_support[survivor] = dict(surv_succ)
            self._pred_support[survivor] = dict(surv_pred)
            # Third parties saw `other` popped and `survivor` bumped;
            # reverse both using other's old tables as the ledger.
            for target, count in other_succ.items():
                if target in (survivor, other):
                    continue
                target_pred = self._pred_support[target]
                self._bump(target_pred, survivor, -count)
                self._bump(target_pred, other, count)
            for origin, count in other_pred.items():
                if origin in (survivor, other):
                    continue
                origin_succ = self._succ_support[origin]
                self._bump(origin_succ, survivor, -count)
                self._bump(origin_succ, other, count)
        elif op == "blocks_absorbed":
            (new_nodes,) = payload
            members = set(new_nodes)
            self._account_new_nodes(members, -1)
            for w in members:
                self._extent_swap_remove(self._inode_of[w], w)
                del self._inode_of[w]
        else:  # pragma: no cover - guards against journal format drift
            raise ValueError(f"unknown index journal op {op!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _detach(self, dnode: int) -> None:
        """Remove all of *dnode*'s dedges from the support counters."""
        inode_of = self._inode_of
        inode = inode_of[dnode]
        for p in self.graph.iter_pred(dnode):
            pi = inode_of[p]
            self._bump(self._succ_support[pi], inode, -1)
            self._bump(self._pred_support[inode], pi, -1)
        for c in self.graph.iter_succ(dnode):
            if c == dnode:
                continue  # the self-loop was handled in the pred pass
            ci = inode_of[c]
            self._bump(self._succ_support[inode], ci, -1)
            self._bump(self._pred_support[ci], inode, -1)

    def _attach(self, dnode: int) -> None:
        """Add all of *dnode*'s dedges to the support counters."""
        inode_of = self._inode_of
        inode = inode_of[dnode]
        for p in self.graph.iter_pred(dnode):
            pi = inode_of[p]
            self._bump(self._succ_support[pi], inode, 1)
            self._bump(self._pred_support[inode], pi, 1)
        for c in self.graph.iter_succ(dnode):
            if c == dnode:
                continue
            ci = inode_of[c]
            self._bump(self._succ_support[inode], ci, 1)
            self._bump(self._pred_support[ci], inode, 1)

    @staticmethod
    def _bump(counter: dict[int, int], key: int, delta: int) -> None:
        """Adjust a support counter, deleting the entry when it hits zero."""
        new = counter.get(key, 0) + delta
        if new < 0:
            raise StructuralIndexError("support counter went negative; state corrupted")
        if new == 0:
            counter.pop(key, None)
        else:
            counter[key] = new

    def _require(self, inode: int) -> None:
        if inode not in self._extent_arr:
            raise StructuralIndexError(f"inode {inode} does not exist")
