"""The 1-index (Milo & Suciu [11]), Definition 2 of the paper.

A 1-index is a label-homogeneous partition of the dnodes that is stable
with respect to itself.  :class:`OneIndex` is a thin veneer over
:class:`~repro.index.base.StructuralIndex` adding the two construction
entry points:

* ``OneIndex.build(graph)`` — the minimum 1-index via signature iteration
  (fast path, Lemma 1 guarantees uniqueness);
* ``OneIndex.build(graph, method="worklist")`` — the same partition via
  the Paige–Tarjan worklist engine (used to cross-check the fast path).

Any valid (not necessarily minimum) 1-index can also be wrapped from an
explicit partition with :meth:`OneIndex.from_partition`.
"""

from __future__ import annotations

from repro.exceptions import InvalidIndexError
from repro.graph.datagraph import DataGraph
from repro.index.base import StructuralIndex
from repro.index.construction import (
    bisimulation_partition,
    blocks_of,
    stabilize_from_labels,
)


class OneIndex(StructuralIndex):
    """A 1-index over a data graph.

    The class does not *enforce* self-stability on every mutation (the
    maintenance algorithms go through intentionally-unstable intermediate
    states); :func:`repro.index.stability.is_valid_1index` is the oracle.
    """

    @classmethod
    def build(cls, graph: DataGraph, method: str = "signature") -> "OneIndex":
        """Construct the minimum 1-index of *graph*.

        *method* selects the construction engine: ``"signature"`` (default,
        O(m · depth)) or ``"worklist"`` (Paige–Tarjan compound blocks).
        """
        if method == "signature":
            # the refinement loop's output is a partition by construction,
            # so the validating public entry point is skipped
            return cls._from_partition_trusted(
                graph, blocks_of(bisimulation_partition(graph))
            )
        if method == "worklist":
            plain = stabilize_from_labels(graph)
            return cls._adopt(plain)
        raise ValueError(f"unknown construction method {method!r}")

    @classmethod
    def _adopt(cls, index: StructuralIndex) -> "OneIndex":
        """Rebrand a plain :class:`StructuralIndex` as a :class:`OneIndex`."""
        adopted = cls(index.graph)
        adopted._adopt_from(index)
        return adopted

    def copy(self) -> "OneIndex":
        """An independent copy (shares the graph object)."""
        return OneIndex._adopt(super().copy())

    def compression_ratio(self) -> float:
        """``#inodes / #dnodes`` — how much smaller the index graph is."""
        if self.graph.num_nodes == 0:
            raise InvalidIndexError("empty graph has no compression ratio")
        return self.num_inodes / self.graph.num_nodes
