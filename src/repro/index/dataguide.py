"""Strong DataGuides (Goldman & Widom [6]) — related-work extension.

The DataGuide is the earliest structural summary the paper surveys
(Section 2).  A *strong* DataGuide has one node per distinct *target set*:
the set of dnodes reachable from the root by some label path.  It is built
by the subset construction (determinising the data graph viewed as an
NFA over labels), so on cyclic or heavily-shared data it can be
exponentially larger than the data graph — which is exactly why
bisimulation-based indexes (1-index, A(k)) superseded it.  We include it
for size comparisons in the examples and the ablation benchmarks.

Unlike the 1-index, a DataGuide's target sets may overlap, so it is *not*
a node partition and does not fit :class:`StructuralIndex`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import StructuralIndexError
from repro.graph.datagraph import DataGraph

#: Safety valve: subset construction stops after this many guide nodes.
DEFAULT_NODE_LIMIT = 1_000_000


@dataclass
class DataGuide:
    """A strong DataGuide: a deterministic summary graph over label paths."""

    #: guide node id -> target set (dnodes reached by the node's paths)
    target_sets: dict[int, frozenset[int]] = field(default_factory=dict)
    #: guide node id -> {label -> guide node id}
    transitions: dict[int, dict[str, int]] = field(default_factory=dict)
    #: the guide node for the empty path (target set = {root})
    start: int = 0

    @property
    def num_nodes(self) -> int:
        """Number of guide nodes."""
        return len(self.target_sets)

    @property
    def num_edges(self) -> int:
        """Number of guide transitions."""
        return sum(len(t) for t in self.transitions.values())

    def lookup(self, labels: list[str]) -> frozenset[int]:
        """Target set of a label path from the root; empty if absent."""
        node = self.start
        for label in labels:
            nxt = self.transitions[node].get(label)
            if nxt is None:
                return frozenset()
            node = nxt
        return self.target_sets[node]


def build_dataguide(graph: DataGraph, node_limit: int = DEFAULT_NODE_LIMIT) -> DataGuide:
    """Build the strong DataGuide of *graph* by subset construction.

    Raises :class:`StructuralIndexError` when the guide exceeds
    *node_limit* nodes (possible on cyclic data).
    """
    guide = DataGuide()
    start_set = frozenset({graph.root})
    ids: dict[frozenset[int], int] = {start_set: 0}
    guide.target_sets[0] = start_set
    guide.transitions[0] = {}
    queue: deque[frozenset[int]] = deque([start_set])

    while queue:
        current = queue.popleft()
        current_id = ids[current]
        by_label: dict[str, set[int]] = {}
        for dnode in current:
            for child in graph.iter_succ(dnode):
                by_label.setdefault(graph.label(child), set()).add(child)
        for label, targets in by_label.items():
            target_set = frozenset(targets)
            if target_set not in ids:
                if len(ids) >= node_limit:
                    raise StructuralIndexError(
                        f"DataGuide exceeded {node_limit} nodes; "
                        "the data is too cyclic for subset construction"
                    )
                ids[target_set] = len(ids)
                guide.target_sets[ids[target_set]] = target_set
                guide.transitions[ids[target_set]] = {}
                queue.append(target_set)
            guide.transitions[current_id][label] = ids[target_set]
    return guide
