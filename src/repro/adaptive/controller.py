"""The adaptive controller: the loop that closes serving back onto itself.

Runs at two cadences against one :class:`AdaptiveIndexService`:

* **per commit** — :meth:`AdaptiveController.on_commit` is invoked by
  the service's flush hook after the writer lock is released.  It folds
  the latest serving signals (commit/query p95, cache hit rate, ladder
  sizes) into the :class:`~repro.adaptive.cost_model.CostModel`, asks
  the reconstruction policy whether the observed bloat is worth a
  rebuild, and performs the rebuild through
  :meth:`AdaptiveIndexService.reconstruct_now` when it is.  Every
  ``retune_every`` commits it also snapshots the router's demand window
  and applies the model's ladder advice (add a rung under-served demand
  keeps landing far coarser than it needs, drop a rung nobody uses).
* **on alert** — :meth:`AdaptiveController.on_alert` plugs into
  :class:`repro.obs.slo.SloWatchdog` ``on_alert``: a CRITICAL
  transition on a latency rule marks the model pressured, so the very
  next commit may fire a reconstruction the relaxed policy would still
  have deferred.

The controller never takes the writer lock itself — all mutation goes
through the service's own entry points — so it can be driven from the
writer thread, a flush() caller or a watchdog tick interchangeably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.adaptive.cost_model import CostBasedPolicy, CostInputs, CostModel
from repro.maintenance.reconstruction import ReconstructionPolicyProtocol
from repro.obs import current as current_obs
from repro.obs.slo import CRITICAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adaptive.service import AdaptiveIndexService
    from repro.obs.slo import SloStatus
    from repro.service.service import BatchResult

#: how many trailing samples the p95 estimates look at
_WINDOW = 64


def _p95(samples: list[float]) -> Optional[float]:
    """p95 of the trailing window of *samples* (None when empty)."""
    tail = samples[-_WINDOW:]
    if not tail:
        return None
    ordered = sorted(tail)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


@dataclass
class AdaptiveController:
    """Cost-based reconstruction + ladder retuning for one service."""

    service: "AdaptiveIndexService"
    policy: ReconstructionPolicyProtocol = field(default_factory=CostBasedPolicy)
    model: CostModel = field(default_factory=CostModel)
    #: apply ladder advice every this many commits (0 = never retune)
    retune_every: int = 32
    commits_seen: int = 0
    retunes: int = 0
    #: alert names that most recently went CRITICAL (cleared on recovery)
    critical: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self.policy.start(self.service.snapshot.num_inodes)

    # ------------------------------------------------------------------

    def on_commit(self, result: "BatchResult") -> None:
        """One committed batch: feed the model, maybe reconstruct/retune."""
        self.commits_seen += 1
        service = self.service
        inputs = CostInputs(
            commit_p95_seconds=_p95(service.stats.commit_seconds),
            query_p95_seconds=_p95(service.stats.query_seconds),
            cache_hit_rate=service.cache.stats.hit_rate,
            sizes=dict(service.ladder_sizes()),
            slo_critical=bool(self.critical),
        )
        if isinstance(self.policy, CostBasedPolicy):
            self.model.update(inputs, self.policy)
        if self.policy.should_reconstruct(service.snapshot.num_inodes):
            started = time.perf_counter()
            service.reconstruct_now(reason="cost-policy")
            elapsed = time.perf_counter() - started
            self.policy.reconstructed(service.snapshot.num_inodes)
            if isinstance(self.policy, CostBasedPolicy):
                self.policy.note_reconstruction_seconds(elapsed)
            current_obs().observe("adaptive.reconstruction_seconds", elapsed)
        if self.retune_every and self.commits_seen % self.retune_every == 0:
            self.retune()

    def retune(self) -> bool:
        """Apply the model's ladder advice from the current router window.

        Returns whether the ladder changed.  Safe to call at any cadence;
        the router window resets on every call, so frequent calls only
        make the advice more conservative (it needs ``min_window``
        decisions to say anything).
        """
        service = self.service
        window = service.router.window()
        advice = self.model.ladder_advice(window)
        if not advice:
            return False
        current = set(window["levels"])
        wanted = (current - set(advice.drop)) | set(advice.add)
        if wanted == current:
            return False
        self.retunes += 1
        obs = current_obs()
        obs.add("adaptive.retunes")
        obs.event(
            "adaptive.ladder_retuned",
            add=sorted(advice.add),
            drop=sorted(advice.drop),
            levels=sorted(wanted),
        )
        service.set_ladder_levels(tuple(sorted(wanted)))
        return True

    # ------------------------------------------------------------------

    def on_alert(self, status: "SloStatus") -> None:
        """SLO watchdog hook: track CRITICAL transitions as pressure."""
        name = status.rule.name
        if status.status == CRITICAL:
            self.critical.add(name)
        else:
            self.critical.discard(name)
        if isinstance(self.policy, CostBasedPolicy):
            self.policy.note_pressure(bool(self.critical))
