"""Adaptive serving: ladder routing, footprint caching, cost control.

The subsystem between queries and :class:`repro.service.IndexService`
(DESIGN.md §12).  Four cooperating pieces:

* :mod:`repro.adaptive.ladder` — derive coarser A(j) evaluation
  surfaces from the published leaf snapshot per commit;
* :mod:`repro.adaptive.router` — classify each path expression and
  dispatch it to the smallest level that answers exactly;
* :mod:`repro.adaptive.result_cache` — versioned result cache
  invalidated by TouchedSet/footprint intersection, not by flushing;
* :mod:`repro.adaptive.cost_model` / :mod:`repro.adaptive.controller` —
  the closed loop replacing the paper's flat 5 % reconstruction
  trigger with a yield- and pressure-aware policy plus ladder retuning.

Entry point: :class:`repro.adaptive.AdaptiveIndexService`.
"""

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.cost_model import (
    CostBasedPolicy,
    CostConfig,
    CostInputs,
    CostModel,
    LadderAdvice,
)
from repro.adaptive.ladder import (
    LadderLevel,
    LadderState,
    build_ladder_state,
    invalidation_sets,
    validate_ladder_levels,
)
from repro.adaptive.result_cache import (
    CacheEntry,
    CacheStats,
    DEFAULT_CAPACITY,
    ResultCache,
)
from repro.adaptive.router import QueryRouter, Route, SAFE
from repro.adaptive.service import (
    AdaptiveConfig,
    AdaptiveIndexService,
    default_ladder,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveIndexService",
    "CacheEntry",
    "CacheStats",
    "CostBasedPolicy",
    "CostConfig",
    "CostInputs",
    "CostModel",
    "DEFAULT_CAPACITY",
    "LadderAdvice",
    "LadderLevel",
    "LadderState",
    "QueryRouter",
    "ResultCache",
    "Route",
    "SAFE",
    "build_ladder_state",
    "default_ladder",
    "invalidation_sets",
    "validate_ladder_levels",
]
