"""The cost model: when to reconstruct, and how the ladder should look.

The paper's trigger is flat: reconstruct whenever the index is 5 %
larger than at the last reconstruction, regardless of what a
reconstruction costs or recovers.  :class:`CostBasedPolicy` keeps that
threshold as a *floor* (it never fires at lower bloat, so by
construction it can never fire more often than the flat policy on the
same size trajectory) and adds two learned terms on top:

* **yield** — the EWMA of how much of the observed bloat past
  reconstructions actually removed.  When recent reconstructions
  recovered essentially nothing (the split/merge partition *is* near
  minimum and the growth is genuine data growth), firing again only
  burns commit latency; the policy skips until either yield recovers or
  bloat crosses the hard cap.
* **pressure** — live serving signals (query p95 against its budget,
  commit p95, cache hit rate, an SLO alert from the watchdog).  Under
  pressure the policy fires as soon as the floor allows; relaxed, it
  waits for the expected recovery to clear ``yield_floor``.

The hard cap bounds worst-case bloat: above it the policy fires
unconditionally, so skipping low-yield reconstructions can never let
the index drift arbitrarily far from minimum.

:class:`CostModel` is the serving-side aggregate: it folds the live obs
inputs (:class:`CostInputs`) into the policy's pressure term and turns
the router's windowed demand statistics into ladder advice — add a rung
where child-only traffic consistently lands far coarser than it needs,
drop a rung nobody routes to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.maintenance.reconstruction import DEFAULT_THRESHOLD


@dataclass(frozen=True)
class CostConfig:
    """Tunables for :class:`CostBasedPolicy` and :class:`CostModel`."""

    #: never reconstruct below this bloat (the paper's flat threshold,
    #: making "no more often than flat 5 %" structural)
    min_bloat: float = DEFAULT_THRESHOLD
    #: always reconstruct above this bloat (bounds drift when yield is low)
    hard_bloat: float = 4 * DEFAULT_THRESHOLD
    #: skip firing when the expected recovered bloat is below this
    yield_floor: float = 0.02
    #: EWMA weight for newly observed reconstruction yield
    yield_alpha: float = 0.5
    #: query p95 budget (seconds) above which serving counts as pressured
    query_p95_budget: float = 0.25
    #: commit p95 budget (seconds) above which serving counts as pressured
    commit_p95_budget: float = 0.5
    #: drop a ladder level whose routed share falls below this
    drop_share: float = 0.02
    #: add a level for a child-only length taking at least this share...
    add_share: float = 0.20
    #: ...while being routed at least this many levels coarser than needed
    add_gap: int = 2
    #: routing decisions required before ladder advice is meaningful
    min_window: int = 50
    #: maximum number of ladder levels below the leaf
    max_levels: int = 3


@dataclass
class CostBasedPolicy:
    """A yield- and pressure-aware reconstruction trigger.

    Speaks :class:`repro.maintenance.ReconstructionPolicyProtocol`, so
    every call site of the flat policy (the experiment runner, the
    adaptive controller) can adopt it unchanged.  Feed the live signals
    through :meth:`note_pressure` / :meth:`note_reconstruction_seconds`;
    without any feeding it behaves exactly like the flat policy at
    ``min_bloat`` until the first reconstruction teaches it a yield.
    """

    config: CostConfig = field(default_factory=CostConfig)
    baseline_size: int = 0
    updates_since: int = 0
    reconstructions: int = 0
    intervals: list[int] = field(default_factory=list)
    #: EWMA of (bloat removed by reconstruction) / (bloat at firing);
    #: ``None`` until the first reconstruction is observed
    expected_yield: Optional[float] = None
    #: EWMA of reconstruction wall-clock (seconds), for reporting
    reconstruction_seconds: Optional[float] = None
    #: latest pressure verdict from the cost model (True = fire eagerly)
    pressured: bool = False
    skipped_low_yield: int = 0
    _size_at_fire: int = 0

    # -- ReconstructionPolicyProtocol ----------------------------------

    def start(self, size: int) -> None:
        self.baseline_size = size
        self.updates_since = 0

    def should_reconstruct(self, current_size: int) -> bool:
        self.updates_since += 1
        if self.baseline_size <= 0:
            return False
        # the floor uses the flat policy's exact float expression, not
        # the ratio form: size/baseline - 1 > t and size > (1+t)*baseline
        # disagree on boundary sizes under IEEE rounding, and "never
        # fires more often than flat" must hold size by size
        if current_size <= (1.0 + self.config.min_bloat) * self.baseline_size:
            return False
        bloat = current_size / self.baseline_size - 1.0
        if bloat >= self.config.hard_bloat:
            self._size_at_fire = current_size
            return True
        if self.pressured:
            self._size_at_fire = current_size
            return True
        expected = bloat * (self.expected_yield if self.expected_yield is not None else 1.0)
        if expected < self.config.yield_floor:
            self.skipped_low_yield += 1
            return False
        self._size_at_fire = current_size
        return True

    def reconstructed(self, new_size: int) -> None:
        self.reconstructions += 1
        self.intervals.append(self.updates_since)
        if self.baseline_size > 0 and self._size_at_fire > self.baseline_size:
            bloat_at_fire = self._size_at_fire / self.baseline_size - 1.0
            recovered = (self._size_at_fire - new_size) / self.baseline_size
            observed = min(1.0, max(0.0, recovered / bloat_at_fire))
            if self.expected_yield is None:
                self.expected_yield = observed
            else:
                alpha = self.config.yield_alpha
                self.expected_yield = alpha * observed + (1 - alpha) * self.expected_yield
        self.baseline_size = new_size
        self.updates_since = 0

    @property
    def mean_interval(self) -> float:
        if not self.intervals:
            return float("inf")
        return sum(self.intervals) / len(self.intervals)

    # -- live feeding ---------------------------------------------------

    def note_pressure(self, pressured: bool) -> None:
        """Latest serving-pressure verdict (see :meth:`CostModel.update`)."""
        self.pressured = pressured

    def note_reconstruction_seconds(self, seconds: float) -> None:
        """Fold one observed reconstruction wall-clock into the EWMA."""
        if self.reconstruction_seconds is None:
            self.reconstruction_seconds = seconds
        else:
            alpha = self.config.yield_alpha
            self.reconstruction_seconds = (
                alpha * seconds + (1 - alpha) * self.reconstruction_seconds
            )


@dataclass
class CostInputs:
    """One controller tick's worth of live serving signals."""

    commit_p95_seconds: Optional[float] = None
    query_p95_seconds: Optional[float] = None
    cache_hit_rate: Optional[float] = None
    #: token count per published level (leaf included), for bloat accounting
    sizes: dict = field(default_factory=dict)
    slo_critical: bool = False


@dataclass
class LadderAdvice:
    """What the model thinks the ladder should become."""

    add: tuple[int, ...] = ()
    drop: tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.add or self.drop)


@dataclass
class CostModel:
    """Folds live signals into the policy and advises the ladder shape."""

    config: CostConfig = field(default_factory=CostConfig)
    #: latest inputs folded in (telemetry/debugging surface)
    inputs: CostInputs = field(default_factory=CostInputs)

    def update(self, inputs: CostInputs, policy: CostBasedPolicy) -> bool:
        """Fold one tick of signals; returns the pressure verdict."""
        self.inputs = inputs
        pressured = inputs.slo_critical
        if inputs.query_p95_seconds is not None:
            pressured = pressured or inputs.query_p95_seconds > self.config.query_p95_budget
        if inputs.commit_p95_seconds is not None:
            pressured = pressured or inputs.commit_p95_seconds > self.config.commit_p95_budget
        policy.note_pressure(pressured)
        return pressured

    def ladder_advice(self, window: dict) -> LadderAdvice:
        """Turn one router window into add/drop advice.

        *window* is :meth:`repro.adaptive.router.QueryRouter.window`
        output.  Advice is empty until the window holds at least
        ``min_window`` routing decisions.
        """
        total = window.get("total", 0)
        if total < self.config.min_window:
            return LadderAdvice()
        levels = tuple(window["levels"])
        k = window["k"]
        routed = window.get("routed", {})
        demand = window.get("demand", {})
        drop = tuple(
            level
            for level in levels
            if routed.get(level, 0) / total < self.config.drop_share
        )
        surviving = [lvl for lvl in levels if lvl not in drop]
        add: list[int] = []
        ladder = sorted(surviving) + [k]
        for length, count in sorted(demand.items()):
            if length in ladder or length <= 0 or length >= k:
                continue
            if count / total < self.config.add_share:
                continue
            landing = next((lvl for lvl in ladder if lvl >= length), k)
            if landing - length >= self.config.add_gap:
                add.append(length)
        room = self.config.max_levels - len(surviving)
        return LadderAdvice(add=tuple(add[:max(0, room)]), drop=drop)
