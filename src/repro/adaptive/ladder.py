"""The A(k) ladder: several published index resolutions off one family.

The maintainer keeps the whole refinement ladder A(0) ⊑ A(1) ⊑ … ⊑ A(k)
live anyway (each level's classes point at their coarser parent through
the refinement tree), but the service publishes only the leaf level.
This module derives any coarser ladder level **from the published leaf
snapshot plus an ancestor map** captured at publish time, so a short
child-only query can run on a far smaller index graph without the
writer freezing k full partitions per commit.

The derivation leans on two facts:

* a level-j extent is exactly the union of the leaf extents below it in
  the refinement tree, and a level-j iedge is exactly the image of a
  leaf iedge under the ancestor map — so ``(leaf FrozenIndex, anc_j)``
  determines the level-j evaluation surface completely;
* leaf tokens are stable across maintenance, so the per-commit work is
  one parent-chain walk per leaf token (O(#leaf tokens · k), leaf token
  count ≪ |G|), not a re-freeze of every level.

:class:`LadderLevel` materialises that surface lazily (first query to a
level at a version pays the O(#leaf tokens + #leaf iedges) projection;
extents are unioned only for inodes a query actually matches), and
:func:`invalidation_sets` turns a commit's touched leaf tokens plus the
ancestor-map diff into per-level sets of changed level tokens — the
currency the result cache intersects against.  The diff term matters:
propagation can re-parent a surviving leaf token at level j **without
any leaf move** (the signature-keeping path of
``AkSplitMergeMaintainer._refresh_level``), so touched leaf tokens alone
under-approximate coarse-level change.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import ServiceError, StructuralIndexError
from repro.graph.datagraph import ROOT_LABEL
from repro.index.akindex import AkIndexFamily
from repro.service.snapshot import FrozenGraph, FrozenIndex


def validate_ladder_levels(levels: tuple[int, ...], k: int) -> tuple[int, ...]:
    """Normalise a ladder spec: sorted, unique, strictly below the leaf k.

    Level k itself is always served (it is the snapshot's own index), so
    it is implied and never listed.  An empty ladder is legal — the
    service degenerates to plain fixed-k serving.
    """
    cleaned = sorted(set(int(j) for j in levels))
    for j in cleaned:
        if j < 0 or j >= k:
            raise ServiceError(
                f"ladder level {j} out of range for an A({k}) family "
                f"(levels must satisfy 0 <= level < k)"
            )
    return tuple(cleaned)


class LadderLevel:
    """The frozen A(j) evaluation surface, derived from the leaf level.

    Duck-types what :func:`repro.query.evaluate_on_index` and
    :func:`repro.query.evaluate_on_ak` consume (``inodes`` / ``label_of``
    / ``isucc`` / ``extent`` / ``.graph``).  Extents are computed lazily
    and memoised — a query pays only for the inodes it matches.
    """

    __slots__ = ("level", "graph", "_leaf", "_groups", "_label", "_isucc", "_extents")

    def __init__(self, level: int, leaf: FrozenIndex, anc: dict[int, int]):
        self.level = level
        self.graph: FrozenGraph = leaf.graph
        self._leaf = leaf
        groups: dict[int, list[int]] = {}
        for token, ancestor in anc.items():
            groups.setdefault(ancestor, []).append(token)
        self._groups = groups
        self._label = {
            ancestor: leaf.label_of(members[0]) for ancestor, members in groups.items()
        }
        isucc_sets: dict[int, set[int]] = {ancestor: set() for ancestor in groups}
        for token, ancestor in anc.items():
            bucket = isucc_sets[ancestor]
            for child in leaf.isucc(token):
                bucket.add(anc[child])
        self._isucc = {ancestor: tuple(s) for ancestor, s in isucc_sets.items()}
        self._extents: dict[int, frozenset[int]] = {}

    # -- the evaluation surface of StructuralIndex ---------------------

    def inodes(self) -> Iterator[int]:
        """Iterate over the level's tokens."""
        return iter(self._groups)

    def label_of(self, inode: int) -> str:
        """The label shared by the extent of *inode*."""
        self._require(inode)
        return self._label[inode]

    def isucc(self, inode: int) -> Iterator[int]:
        """Level-j index successors (image of the leaf iedges)."""
        self._require(inode)
        return iter(self._isucc[inode])

    def extent(self, inode: int) -> frozenset[int]:
        """Union of the leaf extents below *inode* (memoised)."""
        cached = self._extents.get(inode)
        if cached is None:
            members = self._groups[inode]
            if len(members) == 1:
                cached = self._leaf.extent(members[0])
            else:
                cached = frozenset().union(*(self._leaf.extent(t) for t in members))
            self._extents[inode] = cached
        return cached

    def group(self, inode: int) -> list[int]:
        """The leaf tokens grouped under *inode*."""
        self._require(inode)
        return self._groups[inode]

    @property
    def num_inodes(self) -> int:
        """Number of level-j tokens."""
        return len(self._groups)

    def _require(self, inode: int) -> None:
        if inode not in self._groups:
            raise StructuralIndexError(f"inode {inode} does not exist at A({self.level})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LadderLevel A({self.level}) inodes={self.num_inodes}>"


class LadderState:
    """Per-version ladder artifacts riding alongside one snapshot.

    ``anc[j]`` maps every leaf token to its level-j ancestor in the
    refinement tree *as of this version*; ``root_tokens[j]`` is the set
    of ROOT-labelled tokens per level (the evaluation's seed set — a
    change there invalidates every cached entry of the level, see
    :func:`invalidation_sets`); ``sizes[j]`` is the level's token count
    for the cost model's per-level bloat accounting.  Level views are
    derived lazily per version and cached (readers may race the first
    derivation; building twice is benign, both results are identical).
    """

    __slots__ = ("version", "k", "levels", "index", "anc", "root_tokens", "sizes", "_views")

    def __init__(
        self,
        version: int,
        k: int,
        levels: tuple[int, ...],
        index: FrozenIndex,
        anc: dict[int, dict[int, int]],
        root_tokens: dict[int, frozenset[int]],
        sizes: dict[int, int],
    ):
        self.version = version
        self.k = k
        self.levels = levels
        self.index = index
        self.anc = anc
        self.root_tokens = root_tokens
        self.sizes = sizes
        self._views: dict[int, LadderLevel] = {}

    def level_view(self, level: int) -> "LadderLevel | FrozenIndex":
        """The evaluation surface for *level* (the leaf is the index itself)."""
        if level == self.k:
            return self.index
        view = self._views.get(level)
        if view is None:
            view = LadderLevel(level, self.index, self.anc[level])
            self._views[level] = view
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LadderState v{self.version} levels={self.levels + (self.k,)} "
            f"sizes={self.sizes}>"
        )


def build_ladder_state(
    family: AkIndexFamily,
    index: FrozenIndex,
    version: int,
    levels: tuple[int, ...],
) -> LadderState:
    """Capture the ancestor maps for *levels* off the live refinement tree.

    Called by the writer at publish time, after the leaf
    :class:`FrozenIndex` for *version* exists, while the family still
    reflects exactly that version.  One parent-chain walk per leaf
    token; the chain is recorded at every requested ladder level.
    """
    k = family.k
    wanted = sorted(levels, reverse=True)
    anc: dict[int, dict[int, int]] = {j: {} for j in levels}
    for token in index.inodes():
        current = token
        cursor = iter(wanted)
        want = next(cursor, None)
        for level in range(k - 1, -1, -1):
            if want is None:
                break
            current = family.levels[level + 1].parent[current]
            if want == level:
                anc[level][token] = current
                want = next(cursor, None)
    roots_leaf = frozenset(
        t for t in index.inodes() if index.label_of(t) == ROOT_LABEL
    )
    root_tokens = {k: roots_leaf}
    sizes = {k: index.num_inodes}
    for j in levels:
        mapping = anc[j]
        root_tokens[j] = frozenset(mapping[t] for t in roots_leaf)
        sizes[j] = len(set(mapping.values()))
    return LadderState(version, k, tuple(sorted(levels)), index, anc, root_tokens, sizes)


def invalidation_sets(
    prev: LadderState,
    new: LadderState,
    touched_tokens: set[int],
) -> dict[int, Optional[set[int]]]:
    """Per level, the tokens whose derived surface may differ prev → new.

    ``None`` for a level means "flush everything cached there" (the
    level is newly published, or its ROOT token set changed — the one
    dependency the per-entry footprints cannot see, because an entry
    never recorded a root that did not exist when it was evaluated).

    For the leaf level the answer is *touched_tokens* itself (the evolve
    superset contract).  For a coarser level j the changed set is the
    image of the touched leaf tokens under **both** versions' ancestor
    maps — arrivals touch the new ancestor, departures the old — plus
    both ancestors of every leaf token whose mapping changed between the
    versions, which is what catches silent re-parenting.
    """
    out: dict[int, Optional[set[int]]] = {}
    if new.root_tokens[new.k] != prev.root_tokens.get(prev.k):
        out[new.k] = None
    else:
        out[new.k] = set(touched_tokens)
    for j in new.levels:
        prev_anc = prev.anc.get(j)
        if prev_anc is None or new.root_tokens[j] != prev.root_tokens.get(j):
            out[j] = None
            continue
        new_anc = new.anc[j]
        changed: set[int] = set()
        for t in touched_tokens:
            ancestor = new_anc.get(t)
            if ancestor is not None:
                changed.add(ancestor)
            ancestor = prev_anc.get(t)
            if ancestor is not None:
                changed.add(ancestor)
        # re-parenting diff: O(#leaf tokens), cheap relative to publish
        for t, ancestor in new_anc.items():
            before = prev_anc.get(t)
            if before != ancestor:
                changed.add(ancestor)
                if before is not None:
                    changed.add(before)
        for t, before in prev_anc.items():
            if t not in new_anc:
                changed.add(before)
        out[j] = changed
    return out
