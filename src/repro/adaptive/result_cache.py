"""The versioned result cache with TouchedSet intersection invalidation.

A naive query cache over snapshot serving must flush on every version
swap — any commit *might* have changed any answer.  This cache does
better by storing, with each entry, the **footprint** its evaluation
actually read (:class:`repro.query.EvalFootprint`): the index tokens the
fixpoint consulted in the entry's level space, plus the data-graph
ancestor cone when a validation pass ran.  At each commit the writer
hands the cache the per-level changed-token sets derived from the
batch's TouchedSet (:func:`repro.adaptive.ladder.invalidation_sets`)
and the changed dnodes; an entry whose footprint is disjoint from both
provably still answers correctly, so it is *revalidated* — its version
stamp advances to the new version — instead of being dropped.

Correctness contract (enforced by the differential suite):

* an entry is served only when its version stamp equals the serving
  view's version;
* revalidation happens only across a single commit edge (an entry whose
  stamp lags the previous version was stored by a racing reader against
  an already-retired view and is discarded — it was never checked
  against the intervening commits);
* a ``None`` changed-set for a level (full capture, degrade rebuild,
  root-set change, level freshly published) drops every entry of that
  level.

Entries are LRU-bounded; all statistics are lifetime tallies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.query.evaluator import EvaluationReport

#: default maximum number of cached results
DEFAULT_CAPACITY = 256


@dataclass
class CacheEntry:
    """One cached answer and the dependency set that keeps it honest."""

    matches: frozenset[int]
    version: int
    #: index tokens read, in the entry's own level token space
    tokens: frozenset[int]
    #: validation-cone dnodes read (empty for exact routes)
    dnodes: frozenset[int]
    validated: bool
    hits: int = 0


@dataclass
class CacheStats:
    """Lifetime cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    revalidated: int = 0
    evicted: int = 0
    flushes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any traffic)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "revalidated": self.revalidated,
            "evicted": self.evicted,
            "flushes": self.flushes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """LRU result cache keyed by (route key, compiled-path text)."""

    capacity: int = DEFAULT_CAPACITY
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: "int | str", text: str, version: int) -> "CacheEntry | None":
        """The entry for (*key*, *text*) if it is valid at *version*."""
        with self._lock:
            entry = self._entries.get((key, text))
            if entry is None or entry.version != version:
                self.stats.misses += 1
                return None
            self._entries.move_to_end((key, text))
            entry.hits += 1
            self.stats.hits += 1
            return entry

    def store(
        self,
        key: "int | str",
        text: str,
        version: int,
        report: EvaluationReport,
        tokens: frozenset[int],
        dnodes: frozenset[int],
    ) -> None:
        """Insert (or refresh) one answer evaluated at *version*."""
        entry = CacheEntry(
            matches=report.matches,
            version=version,
            tokens=tokens,
            dnodes=dnodes,
            validated=report.validated,
        )
        with self._lock:
            self._entries[(key, text)] = entry
            self._entries.move_to_end((key, text))
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evicted += 1

    def on_commit(
        self,
        new_version: int,
        changed: "dict[int | str, set[int] | None]",
        changed_dnodes: set[int],
    ) -> None:
        """Advance the cache across one commit edge.

        *changed* maps each route key to the set of that key's tokens a
        batch may have perturbed (``None`` = drop everything under the
        key); keys absent from *changed* are dropped wholesale too (the
        writer no longer publishes them).  Entries stamped older than
        ``new_version - 1`` were stored by readers racing a past swap
        and are dropped unexamined.
        """
        previous = new_version - 1
        with self._lock:
            doomed = []
            for cache_key, entry in self._entries.items():
                key = cache_key[0]
                if entry.version != previous:
                    doomed.append(cache_key)
                    continue
                level_changed = changed.get(key)
                if level_changed is None:  # absent key or explicit full drop
                    doomed.append(cache_key)
                    continue
                if entry.tokens & level_changed:
                    doomed.append(cache_key)
                    continue
                if entry.dnodes and (entry.dnodes & changed_dnodes):
                    doomed.append(cache_key)
                    continue
                entry.version = new_version
                self.stats.revalidated += 1
            for cache_key in doomed:
                del self._entries[cache_key]
            self.stats.invalidated += len(doomed)

    def flush(self) -> None:
        """Drop everything (full capture / degrade rebuild path)."""
        with self._lock:
            self.stats.invalidated += len(self._entries)
            self._entries.clear()
            self.stats.flushes += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
