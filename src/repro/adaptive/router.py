"""The query router: dispatch each path to the smallest exact level.

Classification is the compiled-NFA form of
``QueryWorkload.answerable_by_ak`` / Section 3's exactness condition: a
child-only expression of length L is answered *exactly* (no false
positives, no validation pass) by any A(j) with j >= L.  The router
therefore sends it to the **smallest published ladder level >= L** —
the coarsest index that is still precise — and everything else
(descendant axis, or longer than the leaf k) to the *safe level*: the
leaf A(k) plus the validation cone walk, which is exactly what fixed-k
serving does for every query.

Routing never changes an answer, only which (smaller) graph produces
it; the differential suite runs every routed answer against a scratch
evaluation to hold that line.

The router also keeps windowed demand statistics — how many child-only
queries of each length arrived, and where they landed — which is the
signal the :mod:`repro.adaptive.cost_model` uses to advise adding a
missing rung or dropping an idle one.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from repro.query.automaton import PathNfa, as_nfa
from repro.query.path_expression import PathExpression

#: route key for the fall-back path (leaf level + validation)
SAFE = "safe"


@dataclass(frozen=True)
class Route:
    """Where one expression goes and why."""

    #: ladder level for an exact answer; ``None`` = safe fallback
    level: "int | None"
    #: child-only step count of the expression
    length: int
    #: whether the expression uses the descendant axis
    descendant: bool

    @property
    def exact(self) -> bool:
        """True when the chosen level answers without validation."""
        return self.level is not None

    @property
    def key(self) -> "int | str":
        """The result-cache key space this route evaluates in."""
        return self.level if self.level is not None else SAFE


class QueryRouter:
    """Stateless classification + windowed routing statistics.

    ``levels`` is the published ladder (strictly below *k*); *k* is the
    family's leaf and always available.  ``set_levels`` swaps the ladder
    atomically (the controller retunes it mid-run).
    """

    def __init__(self, levels: tuple[int, ...], k: int):
        self.k = k
        self._levels = tuple(sorted(levels))
        self._lock = threading.Lock()
        self.routed: Counter = Counter()  # route key -> queries sent there
        self.demand: Counter = Counter()  # child-only length -> arrivals
        self.total = 0
        #: lifetime route-key tallies; never reset by :meth:`window`, so
        #: experiments can report where a whole run's traffic landed
        self.lifetime_routed: Counter = Counter()

    @property
    def levels(self) -> tuple[int, ...]:
        """The current ladder levels (ascending, leaf excluded)."""
        return self._levels

    def set_levels(self, levels: tuple[int, ...]) -> None:
        """Swap the ladder the router dispatches over."""
        self._levels = tuple(sorted(levels))

    def classify(self, query: "str | PathExpression | PathNfa") -> Route:
        """Pure classification: no statistics recorded."""
        nfa = as_nfa(query)
        expression = nfa.expression
        length = len(expression)
        if not expression.has_descendant_axis:
            for level in self._levels:
                if length <= level:
                    return Route(level=level, length=length, descendant=False)
            if length <= self.k:
                return Route(level=self.k, length=length, descendant=False)
            return Route(level=None, length=length, descendant=False)
        return Route(level=None, length=length, descendant=True)

    def route(self, query: "str | PathExpression | PathNfa") -> Route:
        """Classify and record the dispatch in the demand window."""
        route = self.classify(query)
        with self._lock:
            self.total += 1
            self.routed[route.key] += 1
            self.lifetime_routed[route.key] += 1
            if not route.descendant:
                self.demand[route.length] += 1
        return route

    def window(self) -> dict:
        """Snapshot and reset the routing window (controller cadence)."""
        with self._lock:
            snapshot = {
                "total": self.total,
                "routed": dict(self.routed),
                "demand": dict(self.demand),
                "levels": self._levels,
                "k": self.k,
            }
            self.routed = Counter()
            self.demand = Counter()
            self.total = 0
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueryRouter levels={self._levels}+({self.k}) routed={self.total}>"
