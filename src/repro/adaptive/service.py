"""`AdaptiveIndexService` — ladder-routed, cached, cost-governed serving.

Sits exactly where :class:`repro.service.IndexService` sits — one graph,
one maintainer, snapshot isolation — and adds the adaptive plane on the
read path plus a closed control loop on the write path:

* at every publish the writer captures the **A(k) ladder** ancestor
  maps off the live refinement tree (:mod:`repro.adaptive.ladder`), so
  readers can evaluate short child-only paths on a far coarser level;
* each query is classified by the :class:`~repro.adaptive.router.QueryRouter`
  and dispatched to the smallest level that answers it *exactly*, with
  everything else falling back to the safe leaf + validation path the
  base service always takes;
* answers land in the :class:`~repro.adaptive.result_cache.ResultCache`
  keyed by (route, compiled path, version); each commit invalidates by
  intersecting the batch's TouchedSet-derived change sets with the
  entries' recorded footprints instead of flushing wholesale;
* after every commit the :class:`~repro.adaptive.controller.AdaptiveController`
  feeds live serving signals to the cost model, reconstructs when the
  observed bloat is worth it, and retunes the ladder to demand.

Correctness stance: routing and caching may only change *where* an
answer is computed, never the answer.  ``AdaptiveConfig(audit=True)``
enforces that at runtime — every served result is re-derived from the
version's own frozen graph and a mismatch raises — and the differential
suite runs the whole service in that mode under faults and rollbacks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.cost_model import CostBasedPolicy, CostConfig, CostModel
from repro.adaptive.ladder import (
    LadderState,
    build_ladder_state,
    invalidation_sets,
    validate_ladder_levels,
)
from repro.adaptive.result_cache import DEFAULT_CAPACITY, ResultCache
from repro.adaptive.router import SAFE, QueryRouter, Route
from repro.exceptions import ServiceError
from repro.graph.datagraph import DataGraph
from repro.maintenance.reconstruction import reconstruct_via_index_graph
from repro.obs import current as current_obs
from repro.query.automaton import PathNfa, as_nfa
from repro.query.evaluator import EvaluationReport, evaluate_on_graph
from repro.query.index_evaluator import (
    EvalFootprint,
    evaluate_on_ak,
    evaluate_on_index,
)
from repro.resilience.faults import FaultInjector
from repro.service.service import (
    BatchResult,
    IndexService,
    ServedQuery,
    ServiceConfig,
)
from repro.service.snapshot import IndexSnapshot, touched_leaf_tokens


def default_ladder(k: int) -> tuple[int, ...]:
    """A sensible starting ladder for an A(k) family: A(0) plus midpoint."""
    return tuple(sorted({j for j in (0, k // 2) if 0 <= j < k}))


@dataclass(frozen=True)
class AdaptiveConfig:
    """How an :class:`AdaptiveIndexService` routes, caches and retunes."""

    #: published ladder levels below the leaf; ``None`` = :func:`default_ladder`
    levels: Optional[tuple[int, ...]] = None
    #: result-cache capacity (entries)
    cache_capacity: int = DEFAULT_CAPACITY
    #: re-derive every served answer from the version's frozen graph and
    #: raise on mismatch (the differential suite's mode; costs a full
    #: data-graph evaluation per query)
    audit: bool = False
    #: apply ladder advice every this many commits (0 = never retune)
    retune_every: int = 32
    #: cost-model tunables (reconstruction trigger + ladder advice)
    cost: CostConfig = field(default_factory=CostConfig)


class AdaptiveIndexService(IndexService):
    """An :class:`IndexService` with the adaptive serving plane attached.

    Drop-in: the constructor, ``submit``/``flush``/``start``/``stop``
    surface and :class:`~repro.service.service.ServedQuery` results are
    unchanged.  The ``ak`` family gets the full plane (ladder routing +
    cache + controller); the ``one`` family — already precise at a
    single level — gets the result cache and the cost-based
    reconstruction loop, which is where its split/merge bloat goes.
    """

    def __init__(
        self,
        graph: DataGraph,
        config: Optional[ServiceConfig] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        maintainer: Optional[object] = None,
        initial_version: int = 0,
    ):
        self.adaptive = adaptive if adaptive is not None else AdaptiveConfig()
        super().__init__(
            graph,
            config,
            fault_injector=fault_injector,
            maintainer=maintainer,
            initial_version=initial_version,
        )
        if self.config.family == "ak":
            k = self.config.k
            levels = (
                self.adaptive.levels
                if self.adaptive.levels is not None
                else default_ladder(k)
            )
            self._levels = validate_ladder_levels(tuple(levels), k)
        else:
            k = 0
            self._levels = ()
        self.router = QueryRouter(self._levels, k)
        self.cache = ResultCache(capacity=self.adaptive.cache_capacity)
        self._ladder: Optional[LadderState] = None
        if self.config.family == "ak":
            self._ladder = build_ladder_state(
                self.guarded.family,
                self._snapshot.index,
                self._snapshot.version,
                self._levels,
            )
        self.audits = 0
        self.controller = AdaptiveController(
            service=self,
            policy=CostBasedPolicy(config=self.adaptive.cost),
            model=CostModel(config=self.adaptive.cost),
            retune_every=self.adaptive.retune_every,
        )
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Read side: route -> cache -> evaluate -> account
    # ------------------------------------------------------------------

    def query(self, query: "str | PathNfa") -> ServedQuery:
        """Answer a path expression through the adaptive plane.

        Same contract as the base service — the answer is exact for the
        version it names — only the evaluation surface differs.
        """
        nfa = as_nfa(query)
        if self.config.family == "ak":
            return self._query_ak(nfa)
        return self._query_one(nfa)

    def _query_ak(self, nfa: PathNfa) -> ServedQuery:
        text = nfa.expression.text
        route = self.router.route(nfa)
        state = self._ladder  # one atomic grab; serve only this version
        started = time.perf_counter()
        level = route.level
        if level is not None and level != state.k and level not in state.levels:
            # the router ran ahead of (or behind) the published ladder;
            # fall back to the coarsest *published* level that is exact
            level = next(
                (j for j in state.levels if j >= route.length),
                state.k if route.length <= state.k else None,
            )
        key = level if level is not None else SAFE
        entry = self.cache.lookup(key, text, state.version)
        if entry is not None:
            report = EvaluationReport(matches=entry.matches, validated=entry.validated)
            cached = True
        else:
            footprint = EvalFootprint()
            if level is not None:
                surface = state.level_view(level)
                report = evaluate_on_ak(surface, level, nfa, footprint=footprint)
            else:
                report = evaluate_on_ak(state.index, state.k, nfa, footprint=footprint)
            self.cache.store(
                key,
                text,
                state.version,
                report,
                frozenset(footprint.inodes),
                frozenset(footprint.dnodes),
            )
            cached = False
        elapsed = time.perf_counter() - started
        if self.adaptive.audit:
            self._audit(state.index.graph, nfa, report.matches, state.version, key)
        self._account(elapsed, state.version, route, key, cached)
        return ServedQuery(report=report, version=state.version)

    def _query_one(self, nfa: PathNfa) -> ServedQuery:
        text = nfa.expression.text
        route = self.router.route(nfa)
        snapshot = self._snapshot  # one atomic grab
        started = time.perf_counter()
        entry = self.cache.lookup(SAFE, text, snapshot.version)
        if entry is not None:
            report = EvaluationReport(matches=entry.matches, validated=entry.validated)
            cached = True
        else:
            footprint = EvalFootprint()
            report = evaluate_on_index(snapshot.index, nfa, footprint=footprint)
            self.cache.store(
                SAFE,
                text,
                snapshot.version,
                report,
                frozenset(footprint.inodes),
                frozenset(footprint.dnodes),
            )
            cached = False
        elapsed = time.perf_counter() - started
        if self.adaptive.audit:
            self._audit(snapshot.graph, nfa, report.matches, snapshot.version, SAFE)
        self._account(elapsed, snapshot.version, route, SAFE, cached)
        return ServedQuery(report=report, version=snapshot.version)

    def _audit(self, graph, nfa: PathNfa, matches, version: int, key) -> None:
        """Re-derive the answer from the version's own frozen graph."""
        self.audits += 1
        exact = evaluate_on_graph(graph, nfa)
        if exact.matches != matches:
            raise ServiceError(
                f"adaptive serving diverged at v{version} for "
                f"{nfa.expression.text!r} (route={key!r}): "
                f"served {len(matches)} dnodes, ground truth {len(exact.matches)}"
            )

    def _account(
        self, elapsed: float, version: int, route: Route, key, cached: bool
    ) -> None:
        """Base-service bookkeeping plus the adaptive.* metric surface."""
        obs = current_obs()
        self.stats.queries += 1
        self.stats.query_seconds.append(elapsed)
        with self._query_count_lock:
            if version == self._snapshot.version:
                self._queries_this_version += 1
        obs.add("service.queries")
        obs.observe("service.query_seconds", elapsed)
        obs.add("adaptive.queries")
        obs.observe("adaptive.query_seconds", elapsed)
        obs.add(f"adaptive.routed.{key}")
        obs.add("adaptive.cache_hits" if cached else "adaptive.cache_misses")
        obs.set("adaptive.cache_hit_rate", self.cache.stats.hit_rate)

    # ------------------------------------------------------------------
    # Write side: publish the ladder, advance the cache, close the loop
    # ------------------------------------------------------------------

    def _publish(self, snapshot: IndexSnapshot) -> None:
        """Publish + ladder capture + footprint-based cache advancement.

        Runs on the writer with the batch's TouchedSet still intact
        (the base ``_commit`` clears it only after publish), which is
        exactly what the invalidation sets are derived from.  A full
        capture (degrade rebuild, reconstruction, incremental publish
        off) flushes the cache — no footprint survives a renaming.
        """
        incremental = (
            self._touched is not None
            and not self._touched.full
            and snapshot.version == self._snapshot.version + 1
        )
        changed: "Optional[dict]" = None
        changed_dnodes: set[int] = set()
        if self.config.family == "ak":
            family = self.guarded.family
            new_state = build_ladder_state(
                family, snapshot.index, snapshot.version, self._levels
            )
            if incremental and self._ladder is not None:
                # refine the TouchedSet's conservative superset down to
                # the tokens whose serialized form actually differs —
                # evolve shares untouched entries, so this is mostly
                # pointer comparisons, and it is what lets entries
                # survive commits that merely brushed their neighbours
                prev_index = self._ladder.index
                tokens = {
                    t
                    for t in touched_leaf_tokens(family, self._touched)
                    if not snapshot.index.same_entry(prev_index, t)
                }
                changed = invalidation_sets(self._ladder, new_state, tokens)
                # safe-route entries evaluate in leaf token space (their
                # validation cone is covered by the dnode footprint)
                changed[SAFE] = changed[new_state.k]
                changed_dnodes = {
                    w
                    for w in self._touched.dnodes
                    if not snapshot.graph.same_node(prev_index.graph, w)
                }
            self._ladder = new_state
            self.router.set_levels(new_state.levels)
        elif incremental:
            prev_snapshot = self._snapshot
            changed = {
                SAFE: {
                    i
                    for i in self._touched.inodes
                    if not snapshot.index.same_entry(prev_snapshot.index, i)
                }
            }
            changed_dnodes = {
                w
                for w in self._touched.dnodes
                if not snapshot.graph.same_node(prev_snapshot.graph, w)
            }
        super()._publish(snapshot)
        if changed is None:
            self.cache.flush()
        else:
            self.cache.on_commit(snapshot.version, changed, changed_dnodes)
        self._publish_gauges()

    def flush(self) -> Optional[BatchResult]:
        """Commit one batch, then run the controller outside the lock."""
        result = super().flush()
        if result is not None:
            self.controller.on_commit(result)
        return result

    def reconstruct_now(self, reason: str = "manual") -> None:
        """Rebuild the index to minimum and publish the result as a version.

        ``one``: quotient-graph reconstruction (Kaushik et al. [8]) on
        the live index.  ``ak``: full from-scratch rebuild of the family
        (split/merge A(k) maintenance already keeps the minimum
        partition — Theorem 2 — so this fires only when the cost model
        sees genuine drift, e.g. after a degrade rebuild).  Either way
        every token is renamed, so the publish is a full capture and the
        result cache flushes.
        """
        obs = current_obs()
        with self._writer_lock:
            with obs.span("adaptive.reconstruct", reason=reason):
                if self.config.family == "one":
                    reconstruct_via_index_graph(self.guarded.index)
                else:
                    self.guarded.maintainer.rebuild_from_graph()
                if self._touched is not None:
                    self._touched.mark_all()
                snapshot = self._next_snapshot(self._snapshot.version + 1)
                self._publish(snapshot)
                if self._touched is not None:
                    self._touched.clear()
        obs.add("adaptive.reconstructions")
        obs.event("adaptive.reconstructed", reason=reason, version=self.version)

    # ------------------------------------------------------------------
    # Ladder control
    # ------------------------------------------------------------------

    def set_ladder_levels(self, levels: tuple[int, ...]) -> None:
        """Change the published ladder; takes effect at the next publish.

        The router switches immediately (queries routed at a
        not-yet-published level fall back to the published ladder), the
        ladder state follows at the next commit, and the cache flushes
        the levels that disappear through ``invalidation_sets`` marking
        newly absent levels as full drops.
        """
        if self.config.family != "ak":
            raise ServiceError("ladder levels only apply to the ak family")
        cleaned = validate_ladder_levels(tuple(levels), self.config.k)
        self._levels = cleaned
        self.router.set_levels(cleaned)
        current_obs().event("adaptive.ladder_levels", levels=list(cleaned))

    def ladder_sizes(self) -> dict:
        """Token count per published level (leaf included) at this version."""
        if self.config.family == "ak" and self._ladder is not None:
            return dict(self._ladder.sizes)
        return {0: self._snapshot.num_inodes}

    def _publish_gauges(self) -> None:
        obs = current_obs()
        for level, size in self.ladder_sizes().items():
            obs.set(f"adaptive.ladder_size.{level}", size)
        obs.set("adaptive.cache_entries", len(self.cache))
        obs.set("adaptive.cache_hit_rate", self.cache.stats.hit_rate)

    # ------------------------------------------------------------------
    # Telemetry / introspection
    # ------------------------------------------------------------------

    def start_telemetry(self, **kwargs) -> "object":
        """Base telemetry plus the adaptive SLO rules and the controller
        wired into the watchdog's alert hook (unless the caller supplied
        their own rules/hook)."""
        if self._telemetry is not None:
            return self._telemetry
        if "rules" not in kwargs:
            from repro.obs.slo import default_adaptive_rules, default_service_rules

            kwargs["rules"] = default_service_rules() + default_adaptive_rules()
        bundle = super().start_telemetry(**kwargs)
        if bundle.watchdog.on_alert is None:
            bundle.watchdog.on_alert = self.controller.on_alert
        return bundle

    def health(self) -> dict:
        doc = super().health()
        doc["adaptive"] = {
            "levels": list(self._levels),
            "k": self.config.k if self.config.family == "ak" else 0,
            "ladder_sizes": {str(j): s for j, s in self.ladder_sizes().items()},
            "cache": self.cache.stats.as_dict(),
            "reconstructions": self.controller.policy.reconstructions,
            "retunes": self.controller.retunes,
        }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveIndexService family={self.config.family!r} v{self.version} "
            f"levels={self._levels} cache={len(self.cache)}>"
        )
