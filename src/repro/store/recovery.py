"""Crash recovery: newest checkpoint + surviving WAL tail → live state.

The recovery protocol, in order:

1. **Select** the newest checkpoint that loads and passes its CRC
   (:func:`repro.store.checkpoint.latest_checkpoint`); partial or
   corrupt files fall back to their predecessor.  No checkpoint at all
   is a :class:`RecoveryError` — an initialised store always has one
   (the durable service writes checkpoint 0 on first open).
2. **Materialise** the graph and index/family through the hardened
   loaders (they validate partitions, labels, supports — a tampered
   checkpoint fails here, not mid-replay).
3. **Replay** every WAL record with ``lsn > checkpoint.wal_lsn``
   through :meth:`GuardedMaintainer.apply_batch` — the same code path
   that applied the batches the first time, so replay is deterministic:
   identical oids, identical inode ids, identical split/merge order.  A
   torn tail is truncated at the first bad CRC (the unacknowledged
   suffix); a gap *before* the tail aborts recovery.
4. **Post-check**: an :class:`InvariantGuard` pass at ``valid`` depth
   over the recovered pair, so a recovery that produced an inconsistent
   index fails loudly here instead of corrupting the first live commit.

:func:`apply_ops_raw` is the index-free counterpart (graph mutations
only) used by the recovery-time A/B benchmark: replaying the log onto
the bare graph and rebuilding the index from scratch is the baseline
that checkpointed-index recovery must beat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import RecoveryError
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.oneindex import OneIndex
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.split_merge import SplitMergeMaintainer, _normalise_cross_edges
from repro.obs import current as current_obs
from repro.resilience.guard import GuardConfig, GuardedMaintainer
from repro.resilience.invariants import InvariantGuard
from repro.resilience.wire import batch_from_wire
from repro.store.checkpoint import Checkpoint, latest_checkpoint
from repro.store.wal import read_records_since


@dataclass
class RecoveryResult:
    """Everything :func:`recover` reconstructed, plus how it got there."""

    graph: DataGraph
    maintainer: Any  # SplitMergeMaintainer | AkSplitMergeMaintainer
    guarded: GuardedMaintainer
    kind: str
    k: int
    #: service version of the recovered state (checkpoint version + replay)
    version: int
    checkpoint_lsn: int
    last_lsn: int
    replayed_records: int
    replayed_ops: int

    @property
    def index(self) -> Optional[OneIndex]:
        """The recovered 1-index (``None`` for an A(k) store)."""
        return self.guarded.index

    @property
    def family(self) -> Optional[AkIndexFamily]:
        """The recovered A(k) family (``None`` for a 1-index store)."""
        return self.guarded.family


def recover(
    store_dir: str,
    guard: Optional[GuardConfig] = None,
    check_level: str = "valid",
    repair: bool = True,
) -> RecoveryResult:
    """Run the full recovery protocol over *store_dir*.

    *guard* configures the replay transactions (default: ``raise`` with
    per-record invariant checks disabled — the single post-check at
    *check_level* depth covers the recovered state; pass
    ``check_level=""`` to skip it).  ``repair=True`` truncates a torn
    WAL tail on disk so the recovered service appends from a clean end.
    """
    obs = current_obs()
    started = time.perf_counter()
    with obs.span("store.recover", dir=store_dir):
        ckpt = latest_checkpoint(store_dir)
        if ckpt is None:
            raise RecoveryError(
                f"no loadable checkpoint in {store_dir!r}; the store was never "
                "initialised (or every checkpoint is corrupt)"
            )
        graph, index, family = ckpt.materialize()
        maintainer: Any
        if index is not None:
            maintainer = SplitMergeMaintainer(index)
        else:
            maintainer = AkSplitMergeMaintainer(family)
        config = guard if guard is not None else GuardConfig(policy="raise", check_every=0)
        guarded = GuardedMaintainer(maintainer, config)

        replayed_records = 0
        replayed_ops = 0
        last_lsn = ckpt.wal_lsn
        expected = ckpt.wal_lsn + 1
        for record in read_records_since(store_dir, ckpt.wal_lsn, repair=repair):
            if record.lsn != expected:
                raise RecoveryError(
                    f"WAL gap during replay: expected lsn {expected}, "
                    f"found {record.lsn}"
                )
            expected = record.lsn + 1
            ops = batch_from_wire(record.ops)
            if ops:
                guarded.apply_batch(ops)
            replayed_records += 1
            replayed_ops += len(ops)
            last_lsn = record.lsn
        if check_level:
            InvariantGuard(level=check_level).check(
                graph, index=guarded.index, family=guarded.family
            )
        elapsed = time.perf_counter() - started
        obs.add("store.recoveries")
        obs.add("store.replayed_records", replayed_records)
        obs.add("store.replayed_ops", replayed_ops)
        obs.observe("store.recovery_seconds", elapsed)
        obs.event(
            "store.recovered",
            dir=store_dir,
            checkpoint_lsn=ckpt.wal_lsn,
            last_lsn=last_lsn,
            replayed_records=replayed_records,
            replayed_ops=replayed_ops,
            seconds=elapsed,
        )
        return RecoveryResult(
            graph=graph,
            maintainer=maintainer,
            guarded=guarded,
            kind=ckpt.kind,
            k=ckpt.k,
            version=ckpt.version + replayed_records,
            checkpoint_lsn=ckpt.wal_lsn,
            last_lsn=last_lsn,
            replayed_records=replayed_records,
            replayed_ops=replayed_ops,
        )


def apply_ops_raw(graph: DataGraph, ops: list[tuple[str, tuple]]) -> None:
    """Apply decoded batch operations to the bare graph (no index).

    The rebuild-from-scratch baseline: replay the log onto the graph
    alone, then reconstruct the index once at the end.  Mirrors
    :meth:`GuardedMaintainer._raw_for` for every wire operation.
    """
    for method, args in ops:
        if method == "insert_edge":
            source, target, kind = args
            graph.add_edge(source, target, kind)
        elif method == "delete_edge":
            graph.remove_edge(*args)
        elif method == "insert_node":
            parent, label, value = args
            oid = graph.add_node(label, value)
            graph.add_edge(parent, oid)
        elif method == "delete_node":
            graph.remove_node(args[0])
        elif method == "add_subgraph":
            subgraph, _subgraph_root, cross_edges = args
            mapping = graph.add_subgraph(subgraph)
            for a, b, kind in _normalise_cross_edges(cross_edges):
                graph.add_edge(mapping.get(a, a), mapping.get(b, b), kind)
        elif method == "delete_subgraph":
            graph.remove_nodes(graph.subgraph_from(args[0]).nodes())
        else:
            raise RecoveryError(f"cannot raw-apply unknown operation {method!r}")
