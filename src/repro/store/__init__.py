"""repro.store — durable persistence for the served index.

The volatile layers (graph, index, maintenance, service) never touch
disk; this package adds the persistent spine underneath them:

* :mod:`repro.store.wal` — an append-only write-ahead log of committed
  batches: JSONL segments, per-record CRC32, monotonic LSNs, pluggable
  fsync policy, whole-segment truncation.
* :mod:`repro.store.checkpoint` — atomic full snapshots of the graph +
  index pair (tmp-write / fsync / rename), with cadence, pruning and
  WAL truncation handled by :class:`Checkpointer`.
* :mod:`repro.store.recovery` — crash recovery: newest valid
  checkpoint, torn-tail-tolerant WAL replay through the guarded
  maintainer, invariant post-check.
* :mod:`repro.store.service` — :class:`DurableIndexService`, the
  :class:`~repro.service.IndexService` subclass that logs every commit
  before publishing it and reopens via :meth:`DurableIndexService.recover`.

The crash contract, end to end: any state a reader ever observed is
reconstructible after a crash at any byte of any write — the torture
suite in ``tests/store`` cuts the store at every such byte and asserts
the recovered graph/index dumps are identical to a never-crashed run.
"""

from repro.store.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    Checkpointer,
    checkpoint_from_bytes,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    write_checkpoint,
)
from repro.store.epoch import EPOCH_FILE, read_epoch, write_epoch
from repro.store.recovery import RecoveryResult, apply_ops_raw, recover
from repro.store.service import DurableIndexService, StoreConfig
from repro.store.wal import (
    FSYNC_POLICIES,
    WAL_FORMAT_VERSION,
    AppendResult,
    WalRecord,
    WriteAheadLog,
    encode_record,
    last_lsn_on_disk,
    list_segments,
    read_records,
    read_records_since,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "Checkpointer",
    "latest_checkpoint",
    "checkpoint_from_bytes",
    "list_checkpoints",
    "load_checkpoint",
    "prune_checkpoints",
    "write_checkpoint",
    "EPOCH_FILE",
    "read_epoch",
    "write_epoch",
    "RecoveryResult",
    "apply_ops_raw",
    "recover",
    "DurableIndexService",
    "StoreConfig",
    "FSYNC_POLICIES",
    "WAL_FORMAT_VERSION",
    "AppendResult",
    "WalRecord",
    "WriteAheadLog",
    "encode_record",
    "last_lsn_on_disk",
    "list_segments",
    "read_records",
    "read_records_since",
]
