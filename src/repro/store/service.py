"""`DurableIndexService` — the serving layer with a persistent spine.

Same serving discipline as :class:`~repro.service.IndexService`
(single writer, snapshot-isolated readers, batched guarded commits),
plus durability:

* **every commit is logged before it is published**: the writer applies
  the coalesced batch transactionally, appends it — in the stable
  :mod:`repro.resilience.wire` encoding — to the write-ahead log, and
  only then swaps the new snapshot in.  What a crash can lose is
  bounded by the fsync policy: under ``always``, nothing a reader ever
  saw; under the default ``batch``, a power cut may drop up to
  ``sync_every`` published versions (a plain process crash drops
  nothing — the bytes are in the page cache); under ``off``, whatever
  the OS had not written back.  Everything the log retains is
  reconstructible from checkpoint + log.
* **cadenced checkpoints**: every ``checkpoint_every_records`` commits
  (and on clean :meth:`close`), the live graph + index pair is written
  atomically and the WAL truncated behind it, bounding replay time.
* **recovery** (:meth:`recover`): newest valid checkpoint + surviving
  WAL tail → a fresh ``DurableIndexService`` at the exact version the
  crashed process last published.

Empty batches (everything coalesced away) are logged too: versions and
LSNs stay in lockstep — ``version = checkpoint.version + records after
checkpoint`` — which is what lets recovery name the version it restored.

A failure *inside* the durability hook (an injected io fault, a full
disk) aborts the commit after the in-memory apply but before publish.
The instance is then divergent from its log and must be abandoned;
:meth:`recover` on the same directory reconstructs the last published
state.  That is the crash model the torture tests drive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from repro.exceptions import StalePrimaryError, StoreError
from repro.graph.datagraph import DataGraph
from repro.obs import current as current_obs
from repro.resilience.faults import FaultInjector
from repro.resilience.wire import batch_to_wire
from repro.service.queue import Update
from repro.service.service import IndexService, ServiceConfig
from repro.store.checkpoint import Checkpointer, latest_checkpoint
from repro.store.epoch import read_epoch
from repro.store.recovery import RecoveryResult, recover
from repro.store.wal import FSYNC_POLICIES, WriteAheadLog


@dataclass(frozen=True)
class StoreConfig:
    """How a :class:`DurableIndexService` logs, syncs and checkpoints."""

    #: WAL durability policy: ``always`` / ``batch`` / ``off``
    fsync: str = "batch"
    #: under ``batch``, fsync every N-th appended record
    sync_every: int = 8
    #: rotate WAL segments at this size (whole-file truncation unit)
    segment_max_bytes: int = 1 << 20
    #: checkpoint every N committed batches (0 = only explicit/close)
    checkpoint_every_records: int = 512
    #: checkpoints retained after pruning (newest first)
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {self.fsync!r}; choose from {FSYNC_POLICIES}"
            )
        if self.checkpoint_every_records < 0:
            raise StoreError("checkpoint_every_records must be >= 0")
        if self.keep_checkpoints < 1:
            raise StoreError("keep_checkpoints must be >= 1")


class DurableIndexService(IndexService):
    """An :class:`IndexService` whose commits survive the process.

    Opening a fresh directory builds the index and writes **checkpoint
    0** immediately, so the store is recoverable from its very first
    commit.  Opening a directory that already has a checkpoint is an
    error — use :meth:`recover`, which replays the log instead of
    silently rebuilding over it.
    """

    def __init__(
        self,
        graph: DataGraph,
        store_dir: str,
        config: Optional[ServiceConfig] = None,
        store_config: Optional[StoreConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        maintainer: Optional[object] = None,
        initial_version: int = 0,
        _recovered: bool = False,
    ):
        self.store_config = store_config if store_config is not None else StoreConfig()
        self.store_dir = store_dir
        #: populated by :meth:`recover` with how this instance came back
        self.recovery: Optional[RecoveryResult] = None
        # refuse an already-initialised store *before* building the index
        # or opening (and tail-repairing) the WAL: the refusal path must
        # not mutate the store it refuses, nor leak an open file handle
        if not _recovered and os.path.isdir(store_dir):
            if latest_checkpoint(store_dir) is not None:
                raise StoreError(
                    f"store {store_dir!r} already holds a checkpoint; use "
                    "DurableIndexService.recover() to reopen it"
                )
        super().__init__(
            graph,
            config,
            fault_injector,
            maintainer=maintainer,
            initial_version=initial_version,
        )
        self.wal = WriteAheadLog(
            store_dir,
            fsync=self.store_config.fsync,
            sync_every=self.store_config.sync_every,
            segment_max_bytes=self.store_config.segment_max_bytes,
            fault_injector=fault_injector,
        )
        self.checkpointer = Checkpointer(
            store_dir,
            self.wal,
            every_records=self.store_config.checkpoint_every_records,
            keep=self.store_config.keep_checkpoints,
            fault_injector=fault_injector,
        )
        #: the fencing epoch this writer was opened under; a promotion
        #: bumps the durable epoch file past this and fences us off
        self.epoch = read_epoch(store_dir)
        if not _recovered:
            # checkpoint 0: the store is recoverable before any commit
            self.checkpoint()

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------

    def _on_batch_applied(self, survivors: list[Update]) -> None:
        """Log the committed batch; checkpoint when the cadence fires.

        Called between the in-memory apply and the snapshot publish, so
        the live structures already hold the batch but ``self.version``
        does not yet name it — a cadence checkpoint here must carry the
        version the batch is about to become, or recovery would report
        an off-by-one version.

        The epoch check runs **before** the append: a zombie primary —
        demoted by a failover it never heard about — re-reads the
        durable epoch here and refuses to extend a WAL history that a
        promoted follower now owns.  The in-memory apply is lost, which
        is exactly the abandoned-instance crash model above.
        """
        current = read_epoch(self.store_dir)
        if current > self.epoch:
            self.fence(current)
            raise StalePrimaryError(self.epoch, current)
        self.wal.append(batch_to_wire([u.as_call() for u in survivors]))
        if self.checkpointer.note_record():
            self._checkpoint_at(self.version + 1)

    def checkpoint(self) -> str:
        """Snapshot the live pair now and truncate the WAL behind it.

        Serialises against the writer: taken mid-commit (a background
        writer thread, or another thread flushing), an unlocked snapshot
        could pair a half-applied graph/index with a racing WAL position
        and then truncate segments the published state still needs.
        """
        with self._writer_lock:
            return self._checkpoint_at(self.version)

    def _checkpoint_at(self, version: int) -> str:
        # caller must hold _writer_lock (checkpoint() takes it; the
        # cadence path in _on_batch_applied runs inside _commit's hold)
        return self.checkpointer.checkpoint(
            self.graph,
            version=version,
            index=self.guarded.index,
            family=self.guarded.family,
        )

    def health(self) -> dict:
        """Service health plus the durability plane's position."""
        doc = super().health()
        doc["store"] = {
            "dir": self.store_dir,
            "epoch": self.epoch,
            "last_lsn": self.wal.last_lsn,
            "durable_lsn": self.wal.durable_lsn,
            "wal_last_lsn": self.wal.last_lsn,
            "wal_active_segment": self.wal.active_segment,
            "wal_fsync_policy": self.wal.fsync,
            "wal_rotations": self.wal.rotations,
            "checkpoints_written": self.checkpointer.checkpoints_written,
            "records_since_checkpoint": self.checkpointer.records_since_checkpoint,
        }
        return doc

    def close(self, checkpoint: bool = True) -> None:
        """Drain, optionally write a final checkpoint, and close the WAL.

        A closing checkpoint makes the next :meth:`recover` a pure
        checkpoint load (no replay) — skip it to exercise the replay
        path or to model an unclean shutdown.
        """
        super().close()
        if checkpoint:
            self.checkpoint()
        self.wal.close()
        current_obs().add("store.closes")

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        store_dir: str,
        config: Optional[ServiceConfig] = None,
        store_config: Optional[StoreConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        check_level: str = "valid",
    ) -> "DurableIndexService":
        """Reopen a store: checkpoint + WAL replay + invariant post-check.

        The recovered service continues exactly where the last published
        version left off — same version number, same graph, same index
        partition (byte-identical wire dumps; the torture tests assert
        it).  *config* may tune serving parameters but the index family
        and ``k`` always come from the store.
        """
        result: RecoveryResult = recover(store_dir, check_level=check_level)
        base = config if config is not None else ServiceConfig()
        base = replace(base, family=result.kind, k=result.k if result.kind == "ak" else base.k)
        service = cls(
            result.graph,
            store_dir,
            config=base,
            store_config=store_config,
            fault_injector=fault_injector,
            maintainer=result.maintainer,
            initial_version=result.version,
            _recovered=True,
        )
        service.checkpointer.records_since_checkpoint = result.replayed_records
        service.recovery = result
        return service
