"""The write-ahead log: append-only JSONL segments of mutation batches.

One WAL record is one committed service batch — the list of coalesced
operations in the :mod:`repro.resilience.wire` encoding — stamped with a
monotonically increasing **LSN** (log sequence number, one per commit)
and a CRC32 over the record's canonical JSON.  On disk a record is one
line of a segment file::

    {"crc": 2868999698, "lsn": 7, "ops": [{"op": "insert_edge", ...}], "v": 1}

``crc`` covers the compact sorted-key JSON of the record *without* the
``crc`` field, so a reader re-serialises and compares — any torn or
bit-flipped line fails either JSON parsing or the CRC and marks the end
of the recoverable log (see below).  ``v`` is the WAL format version;
readers reject records from a future format instead of misparsing them.

**Segments** are named ``wal-<first_lsn>.jsonl`` and rotated when the
active segment exceeds ``segment_max_bytes``, so checkpoint truncation
(:meth:`WriteAheadLog.truncate_upto`) can drop whole files instead of
rewriting one unbounded log.

**Durability** is a policy (`fsync`):

* ``always`` — fsync after every append: a record returned from
  :meth:`append` survives an immediate power cut; slowest.
* ``batch``  — fsync every ``sync_every`` appends and at every rotation,
  checkpoint and close: bounded loss window, near-``off`` throughput.
* ``off``    — never fsync (the OS decides); survives process crashes
  (the data is in the page cache) but not power loss.

**Torn tails.**  A crash mid-append leaves a partial final line.  The
reader (:func:`read_records`) accepts every valid record up to the first
bad line of the **final** segment and truncates the file there — that is
exactly the prefix the writer could have acknowledged.  A crash that
cuts only the trailing newline leaves a whole, valid record, which is
accepted; repair rewrites the terminator so the next append starts a
fresh line.  A bad record with valid records *after* it — in any
segment — is real corruption and raises :class:`WalCorruptionError`;
replay must not silently skip the middle of a log.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.exceptions import StoreError, WalCorruptionError
from repro.obs import current as current_obs
from repro.resilience.faults import FaultInjector

#: current WAL record format version; bump on structural changes
WAL_FORMAT_VERSION = 1

#: fsync policies, strongest first
FSYNC_POLICIES = ("always", "batch", "off")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"


def segment_name(first_lsn: int) -> str:
    """The file name of the segment whose first record is *first_lsn*."""
    return f"{SEGMENT_PREFIX}{first_lsn:020d}{SEGMENT_SUFFIX}"


def segment_first_lsn(name: str) -> int:
    """Parse a segment file name back to its first LSN."""
    return int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])


def list_segments(directory: str) -> list[str]:
    """Segment file names in *directory*, in LSN order."""
    names = [
        name
        for name in os.listdir(directory)
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    ]
    return sorted(names, key=segment_first_lsn)


def _record_crc(body: dict[str, Any]) -> int:
    """CRC32 over the canonical JSON of a record body (no ``crc`` field)."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


def encode_record(lsn: int, ops: list[dict[str, Any]]) -> bytes:
    """One WAL record as a CRC-stamped JSONL line."""
    body = {"lsn": lsn, "ops": ops, "v": WAL_FORMAT_VERSION}
    record = dict(body)
    record["crc"] = _record_crc(body)
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: a commit's LSN plus its wire-encoded ops."""

    lsn: int
    ops: list[dict[str, Any]]


@dataclass(frozen=True)
class AppendResult:
    """Where one append landed (the crash-point tests cut inside this span)."""

    lsn: int
    segment: str
    start: int  # byte offset of the record within its segment
    end: int  # byte offset one past the record's newline


def _decode_line(line: bytes) -> Optional[WalRecord]:
    """Decode one segment line; ``None`` marks a torn/corrupt record."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if crc is None or crc != _record_crc(record):
        return None
    version = record.get("v", 0)
    if not isinstance(version, int) or version > WAL_FORMAT_VERSION:
        # a future format is not a torn tail; surface it loudly
        raise WalCorruptionError(
            "<record>", 0, f"record format version {version!r} is newer than "
            f"the supported version {WAL_FORMAT_VERSION}"
        )
    lsn = record.get("lsn")
    ops = record.get("ops")
    if not isinstance(lsn, int) or not isinstance(ops, list):
        return None
    return WalRecord(lsn=lsn, ops=ops)


@dataclass(frozen=True)
class _SegmentScan:
    """What :func:`_scan_segment` found in one segment file."""

    records: list[WalRecord]
    valid_bytes: int  # byte length of the longest whole-valid-record prefix
    bad_reason: Optional[str]  # None iff the valid prefix runs to EOF
    tail_only: bool  # nothing record-like follows the bad data (if any)
    missing_newline: bool  # final record is whole but its newline was cut


def _record_like_follows(data: bytes, offset: int) -> bool:
    """Does any whole, structurally valid record line sit at/after *offset*?

    Distinguishes a torn tail (junk with nothing after it — safe to
    truncate) from mid-log corruption (a bad line *followed by* records
    the writer acknowledged — must never be dropped).
    """
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline
        try:
            if _decode_line(data[offset:end]) is not None:
                return True
        except WalCorruptionError:
            # a future-format record is still a record, not torn junk
            return True
        if newline < 0:
            return False
        offset = newline + 1
    return False


def _scan_segment(path: str) -> _SegmentScan:
    """Read one segment file.

    ``valid_bytes`` is the byte length of the longest prefix of whole,
    valid records; ``bad_reason`` is ``None`` iff the file ends exactly
    at that prefix.
    """
    with open(path, "rb") as fp:
        data = fp.read()
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # unterminated final line: accept it only if it decodes whole
            # (the crash cut exactly the trailing newline)
            record = _decode_line(data[offset:])
            if record is None:
                return _SegmentScan(records, offset, "torn final record", True, False)
            records.append(record)
            return _SegmentScan(records, len(data), None, True, True)
        record = _decode_line(data[offset:newline])
        if record is None:
            tail_only = not _record_like_follows(data, newline + 1)
            reason = f"bad record at byte {offset}"
            if not tail_only:
                reason += " with valid records after it"
            return _SegmentScan(records, offset, reason, tail_only, False)
        records.append(record)
        offset = newline + 1
    return _SegmentScan(records, offset, None, True, False)


def read_records(directory: str, repair: bool = False) -> list[WalRecord]:
    """Read every surviving record of the log, in LSN order.

    A torn tail — a bad line with nothing record-like after it, in the
    **last** segment — is tolerated: reading stops at the last valid
    record, and with ``repair=True`` the segment file is truncated to
    that prefix so subsequent appends continue from a clean end.  A bad
    line *followed by* valid records, in any segment, is real corruption
    and raises :class:`WalCorruptionError` — replay must not silently
    skip the middle of a log.  LSNs must increase by exactly one across
    segment boundaries; a gap or repeat is corruption.

    A crash can also cut exactly the final record's newline, leaving a
    whole, valid, unterminated line; the record is accepted, and
    ``repair=True`` restores the missing terminator so a reopened writer
    cannot glue its next append onto the same line.
    """
    obs = current_obs()
    segments = list_segments(directory)
    records: list[WalRecord] = []
    expected: Optional[int] = None
    for position, name in enumerate(segments):
        path = os.path.join(directory, name)
        scan = _scan_segment(path)
        if scan.bad_reason is not None:
            if position != len(segments) - 1 or not scan.tail_only:
                obs.event(
                    "store.wal_corruption",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=scan.bad_reason,
                )
                raise WalCorruptionError(name, scan.valid_bytes, scan.bad_reason)
            if repair:
                with open(path, "rb+") as fp:
                    fp.truncate(scan.valid_bytes)
                obs.add("store.wal_tail_repairs")
                obs.event(
                    "store.wal_tail_repaired",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=scan.bad_reason,
                )
        elif scan.missing_newline and repair:
            with open(path, "ab") as fp:
                fp.write(b"\n")
            obs.add("store.wal_tail_repairs")
            obs.event(
                "store.wal_tail_repaired",
                segment=name,
                valid_bytes=scan.valid_bytes,
                reason="missing newline on final record",
            )
        for record in scan.records:
            if expected is not None and record.lsn != expected:
                obs.event(
                    "store.wal_corruption",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=f"LSN gap: expected {expected}, found {record.lsn}",
                )
                raise WalCorruptionError(
                    name,
                    scan.valid_bytes,
                    f"LSN gap: expected {expected}, found {record.lsn}",
                )
            expected = record.lsn + 1
            records.append(record)
    return records


def read_records_since(
    directory: str, lsn: int, repair: bool = False
) -> Iterator[WalRecord]:
    """Yield every surviving record with ``record.lsn > lsn``, lazily.

    The streaming counterpart of :func:`read_records` for consumers that
    only need a suffix of the log — recovery replaying past a checkpoint,
    and the replication feed serving a follower's ``since=LSN`` catch-up
    fetch.  Two costs are saved over ``read_records``:

    * **whole segments are skipped by name**: segment *i* holds LSNs
      ``[first_i, first_{i+1})``, so any segment whose successor's
      name-encoded first LSN is ``<= lsn + 1`` cannot contain a wanted
      record and is never even opened;
    * **records are yielded one at a time**, one segment resident in
      memory at once, instead of materialising the whole log up front.

    Corruption semantics match :func:`read_records` exactly over the
    segments actually scanned: a torn tail is tolerated (and repaired
    with ``repair=True``) only in the final segment; a bad line followed
    by valid records raises :class:`WalCorruptionError`; LSNs must
    increase by exactly one within the scanned suffix.  ``lsn`` past the
    end of the log yields nothing — an empty feed, not an error.
    """
    obs = current_obs()
    segments = list_segments(directory)
    expected: Optional[int] = None
    for position, name in enumerate(segments):
        # skip whole segments that end at or before the requested LSN;
        # bounds come from the *successor's* name, so the last segment
        # (no successor) is always scanned
        if position + 1 < len(segments):
            if segment_first_lsn(segments[position + 1]) <= lsn + 1:
                continue
        path = os.path.join(directory, name)
        scan = _scan_segment(path)
        if scan.bad_reason is not None:
            if position != len(segments) - 1 or not scan.tail_only:
                obs.event(
                    "store.wal_corruption",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=scan.bad_reason,
                )
                raise WalCorruptionError(name, scan.valid_bytes, scan.bad_reason)
            if repair:
                with open(path, "rb+") as fp:
                    fp.truncate(scan.valid_bytes)
                obs.add("store.wal_tail_repairs")
                obs.event(
                    "store.wal_tail_repaired",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=scan.bad_reason,
                )
        elif scan.missing_newline and repair:
            with open(path, "ab") as fp:
                fp.write(b"\n")
            obs.add("store.wal_tail_repairs")
            obs.event(
                "store.wal_tail_repaired",
                segment=name,
                valid_bytes=scan.valid_bytes,
                reason="missing newline on final record",
            )
        for record in scan.records:
            if expected is not None and record.lsn != expected:
                obs.event(
                    "store.wal_corruption",
                    segment=name,
                    valid_bytes=scan.valid_bytes,
                    reason=f"LSN gap: expected {expected}, found {record.lsn}",
                )
                raise WalCorruptionError(
                    name,
                    scan.valid_bytes,
                    f"LSN gap: expected {expected}, found {record.lsn}",
                )
            expected = record.lsn + 1
            if record.lsn > lsn:
                yield record


def last_lsn_on_disk(directory: str) -> int:
    """The LSN of the last surviving record in *directory* (0 when empty).

    Reads only the final segment (plus its name): the replication feed
    stamps every response with the log's current end so followers can
    compute their lag without the primary process being alive.
    """
    segments = list_segments(directory)
    if not segments:
        return 0
    scan = _scan_segment(os.path.join(directory, segments[-1]))
    if scan.records:
        return scan.records[-1].lsn
    # an empty active segment (post-truncation) is named for the next
    # LSN, so the log ends just before it
    return segment_first_lsn(segments[-1]) - 1


def _fsync_dir(directory: str) -> None:
    """Persist directory entries (segment creation/unlink); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only, CRC-guarded, segment-rotated log of commit batches.

    Opening a directory repairs any torn tail (see :func:`read_records`)
    and resumes the LSN sequence after the last valid record.  One
    writer per directory — the single-writer discipline of the service
    layer extends to its log; nothing here locks against a second
    process.

    *fault_injector* threads a :class:`FaultInjector` into the write
    path: its :meth:`~FaultInjector.io` hook runs immediately before
    every file write and fsync (chaos testing); production leaves it
    ``None``.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        sync_every: int = 8,
        segment_max_bytes: int = 1 << 20,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        if sync_every < 1:
            raise StoreError("sync_every must be >= 1")
        if segment_max_bytes < 1:
            raise StoreError("segment_max_bytes must be >= 1")
        self.directory = directory
        self.fsync = fsync
        self.sync_every = sync_every
        self.segment_max_bytes = segment_max_bytes
        self.fault_injector = fault_injector
        os.makedirs(directory, exist_ok=True)

        #: lifetime tallies (mirrored into the ``store.*`` obs counters)
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsyncs_performed = 0
        self.rotations = 0
        self._unsynced = 0
        self.last_append: Optional[AppendResult] = None

        existing = read_records(directory, repair=True)
        segments = list_segments(directory)
        # a checkpoint truncation leaves one empty segment named for the
        # next LSN; resume from that floor, never restart at 1 — a record
        # re-using a checkpointed LSN would be skipped as superseded on
        # the next recovery, silently dropping an acknowledged commit
        floor = segment_first_lsn(segments[-1]) if segments else 1
        self.next_lsn = max(existing[-1].lsn + 1 if existing else 1, floor)
        # everything that survived the open scan is on disk already; it
        # is the durability floor until the next fsync moves it forward
        self.synced_lsn = self.next_lsn - 1
        self._segment = segments[-1] if segments else None
        self._fp = None
        if self._segment is not None:
            self._fp = open(os.path.join(directory, self._segment), "ab")

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self.next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """LSN of the last record known to have reached stable storage.

        Advances only when an fsync actually runs, so under ``fsync="off"``
        it stays at the value observed at open — appended records live in
        the page cache and would not survive power loss.  ``last_lsn -
        durable_lsn`` is the acknowledged-but-volatile window that
        ``/health`` exposes.
        """
        return self.synced_lsn

    @property
    def active_segment(self) -> Optional[str]:
        """File name of the segment currently being appended to."""
        return self._segment

    def append(self, ops: list[dict[str, Any]]) -> AppendResult:
        """Append one commit batch (already wire-encoded) as one record.

        Returns the assigned LSN plus the record's byte span within its
        segment.  Durability on return depends on the fsync policy.
        """
        if self._fp is None or self._fp.tell() >= self.segment_max_bytes:
            self._rotate()
        lsn = self.next_lsn
        line = encode_record(lsn, ops)
        if self.fault_injector is not None:
            self.fault_injector.io("wal.append")
        write_started = time.perf_counter()
        start = self._fp.tell()
        self._fp.write(line)
        self._fp.flush()
        write_elapsed = time.perf_counter() - write_started
        self.next_lsn = lsn + 1
        self.appended_records += 1
        self.appended_bytes += len(line)
        self._unsynced += 1
        obs = current_obs()
        obs.add("store.wal_appends")
        obs.add("store.wal_ops", len(ops))
        obs.add("store.wal_bytes", len(line))
        obs.observe("store.wal_append_seconds", write_elapsed)
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.sync_every
        ):
            self.sync()
        self.last_append = AppendResult(
            lsn=lsn, segment=self._segment, start=start, end=start + len(line)
        )
        return self.last_append

    def sync(self) -> None:
        """Force the active segment to stable storage (unless ``off``)."""
        if self._fp is None or self.fsync == "off":
            self._unsynced = 0
            return
        if self.fault_injector is not None:
            self.fault_injector.io("wal.fsync")
        obs = current_obs()
        started = time.perf_counter()
        with obs.span("store.fsync", segment=self._segment):
            self._fp.flush()
            os.fsync(self._fp.fileno())
        self.fsyncs_performed += 1
        self._unsynced = 0
        self.synced_lsn = self.last_lsn
        obs.add("store.fsyncs")
        obs.observe("store.fsync_seconds", time.perf_counter() - started)

    def _rotate(self) -> None:
        """Close the active segment and start a fresh one at ``next_lsn``."""
        if self._fp is not None:
            if self.fsync != "off":
                self.sync()
            self._fp.close()
            self.rotations += 1
            current_obs().add("store.wal_rotations")
        self._segment = segment_name(self.next_lsn)
        self._fp = open(os.path.join(self.directory, self._segment), "ab")
        if self.fsync != "off":
            _fsync_dir(self.directory)

    def truncate_upto(self, lsn: int) -> int:
        """Drop every segment whose records are all ``<= lsn``.

        Called after a checkpoint at *lsn*: the checkpoint supersedes that
        prefix of the log.  Rotates first so the active segment is never
        rewritten, then unlinks obsolete whole segments.  Returns how many
        segments were removed.
        """
        self._rotate()
        segments = list_segments(self.directory)
        removed = 0
        # segment i holds LSNs [first_i, first_{i+1}); the active (last)
        # segment is empty post-rotation and always survives
        for name, successor in zip(segments, segments[1:]):
            if segment_first_lsn(successor) <= lsn + 1:
                os.unlink(os.path.join(self.directory, name))
                removed += 1
        if removed:
            if self.fsync != "off":
                _fsync_dir(self.directory)
            current_obs().add("store.wal_truncated_segments", removed)
        return removed

    def close(self) -> None:
        """Flush, fsync (policy permitting) and close the active segment."""
        if self._fp is None:
            return
        if self.fsync != "off":
            self.sync()
        self._fp.close()
        self._fp = None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def records(self) -> Iterator[WalRecord]:
        """Iterate the whole surviving log (reads from disk, no repair)."""
        return iter(read_records(self.directory, repair=False))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog dir={self.directory!r} next_lsn={self.next_lsn} "
            f"fsync={self.fsync!r} segment={self._segment!r}>"
        )
