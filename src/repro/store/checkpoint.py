"""Checkpoints: atomic full snapshots of the graph + index pair.

Recovery replays a short log over a checkpoint instead of rebuilding the
1-index/A(k) family from scratch — the I/O-conscious discipline of
Hellings et al.'s external-memory bisimulation work, transplanted to the
incremental setting.  A checkpoint file is one JSON document::

    {"crc": 123..., "data": {
        "format_version": 2,
        "kind": "one" | "ak",
        "k": 0,
        "wal_lsn": 42,         # every WAL record <= this is superseded
        "version": 42,         # service version at capture time
        "graph": {...},        # repro.graph.serialize.graph_to_dict
        "index": {...}         # index_to_dict or family_to_dict
    }}

written **atomically**: serialise to ``<name>.tmp``, flush + fsync, then
``os.replace`` onto the final name (and fsync the directory).  A crash
at any byte of that sequence leaves either the previous checkpoint set
untouched or the new file complete — recovery can never select a
partial checkpoint, because ``.tmp`` files are invisible to
:func:`latest_checkpoint` and a torn final file fails its CRC and is
skipped.

File names are ``checkpoint-<wal_lsn>.json``; after a successful write
the WAL is truncated up to ``wal_lsn`` and older checkpoints beyond a
retention count are pruned (newest-first survivors).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import CheckpointError
from repro.graph.datagraph import DataGraph
from repro.graph.serialize import check_format_version, graph_from_dict, graph_to_dict
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.index.oneindex import OneIndex
from repro.index.serialize import (
    family_from_dict,
    family_to_dict,
    index_from_dict,
    index_to_dict,
)
from repro.obs import current as current_obs
from repro.resilience.faults import FaultInjector
from repro.store.wal import WriteAheadLog, _fsync_dir

#: current checkpoint format version; bump on structural changes.
#: v2 embeds v2 graph/index payloads (label table, delta-encoded
#: extents).  The embedded dicts carry their own ``format_version`` and
#: the nested loaders branch on it, so v1 checkpoints still materialize.
CHECKPOINT_FORMAT_VERSION = 2

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"


def checkpoint_name(wal_lsn: int) -> str:
    """The file name of the checkpoint superseding WAL records <= lsn."""
    return f"{CHECKPOINT_PREFIX}{wal_lsn:020d}{CHECKPOINT_SUFFIX}"


def checkpoint_lsn(name: str) -> int:
    """Parse a checkpoint file name back to its WAL LSN."""
    return int(name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)])


def list_checkpoints(directory: str) -> list[str]:
    """Checkpoint file names in *directory*, oldest first (no ``.tmp``)."""
    names = [
        name
        for name in os.listdir(directory)
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)
    ]
    return sorted(names, key=checkpoint_lsn)


@dataclass(frozen=True)
class Checkpoint:
    """One loaded, CRC-verified checkpoint (payload still as dicts)."""

    kind: str
    k: int
    wal_lsn: int
    version: int
    graph_dict: dict[str, Any]
    index_dict: dict[str, Any]
    path: str

    def materialize(self) -> tuple[DataGraph, Optional[OneIndex], Optional[AkIndexFamily]]:
        """Rebuild the live graph and index/family from the payload."""
        graph = graph_from_dict(self.graph_dict)
        if self.kind == "one":
            return graph, index_from_dict(graph, self.index_dict, cls=OneIndex), None
        return graph, None, family_from_dict(graph, self.index_dict)


def write_checkpoint(
    directory: str,
    graph: DataGraph,
    *,
    wal_lsn: int,
    version: int,
    index: Optional[StructuralIndex] = None,
    family: Optional[AkIndexFamily] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> str:
    """Atomically write one checkpoint file; returns its path.

    Exactly one of *index* / *family* must be given.  The tmp-write /
    fsync / rename sequence guarantees no reader ever selects a partial
    file; *fault_injector* (io hook) can kill the sequence between any
    two of those steps for the atomicity tests.
    """
    if (index is None) == (family is None):
        raise CheckpointError("write_checkpoint needs exactly one of index= or family=")
    if index is not None:
        kind, k, index_dict = "one", 0, index_to_dict(index)
    else:
        kind, k, index_dict = "ak", family.k, family_to_dict(family)
    data = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "kind": kind,
        "k": k,
        "wal_lsn": wal_lsn,
        "version": version,
        "graph": graph_to_dict(graph),
        "index": index_dict,
    }
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8"))
    document = f'{{"crc": {crc}, "data": {payload}}}'
    final_path = os.path.join(directory, checkpoint_name(wal_lsn))
    tmp_path = final_path + ".tmp"
    obs = current_obs()
    started = time.perf_counter()
    with obs.span("store.checkpoint", lsn=wal_lsn, kind=kind, bytes=len(document)):
        if fault_injector is not None:
            fault_injector.io("checkpoint.write")
        with open(tmp_path, "w", encoding="utf-8") as fp:
            fp.write(document)
            fp.flush()
            os.fsync(fp.fileno())
        if fault_injector is not None:
            fault_injector.io("checkpoint.rename")
        os.replace(tmp_path, final_path)
        _fsync_dir(directory)
    obs.add("store.checkpoints")
    obs.add("store.checkpoint_bytes", len(document))
    obs.observe("store.checkpoint_write_seconds", time.perf_counter() - started)
    return final_path


def checkpoint_from_bytes(raw: bytes, origin: str = "<bytes>") -> Checkpoint:
    """Verify and parse a checkpoint from its raw file bytes.

    The shared validation core of :func:`load_checkpoint`, factored out
    so the replication feed can ship a checkpoint over the wire and the
    follower can verify it (CRC, format version, field shape) without
    the bytes ever touching the follower's disk.  *origin* names the
    source in error messages — a path for local loads, a feed label for
    shipped bootstraps.
    """
    try:
        document = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {origin!r} is not valid JSON: {exc}"
        ) from exc
    try:
        crc = document["crc"]
        data = document["data"]
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed checkpoint {origin!r}: {exc!r}") from exc
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != crc:
        raise CheckpointError(f"checkpoint {origin!r} failed its CRC check")
    check_format_version(data, CHECKPOINT_FORMAT_VERSION, CheckpointError)
    try:
        kind = data["kind"]
        k = data["k"]
        wal_lsn = data["wal_lsn"]
        version = data["version"]
        graph_dict = data["graph"]
        index_dict = data["index"]
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed checkpoint {origin!r}: {exc!r}") from exc
    if kind not in ("one", "ak"):
        raise CheckpointError(f"checkpoint {origin!r} has unknown kind {kind!r}")
    return Checkpoint(
        kind=kind,
        k=k,
        wal_lsn=wal_lsn,
        version=version,
        graph_dict=graph_dict,
        index_dict=index_dict,
        path=origin,
    )


def load_checkpoint(path: str) -> Checkpoint:
    """Load and verify one checkpoint file.

    Raises :class:`CheckpointError` on truncation, CRC mismatch, missing
    fields, or a format version newer than this library understands.
    """
    try:
        with open(path, "rb") as fp:
            raw = fp.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    return checkpoint_from_bytes(raw, origin=path)


def latest_checkpoint(directory: str) -> Optional[Checkpoint]:
    """The newest checkpoint that loads and verifies; ``None`` if none do.

    Corrupt or future-format files are skipped (newest-first), so a torn
    final checkpoint silently falls back to its predecessor — the
    atomicity contract recovery builds on.
    """
    for name in reversed(list_checkpoints(directory)):
        try:
            return load_checkpoint(os.path.join(directory, name))
        except CheckpointError:
            current_obs().add("store.checkpoints_skipped")
            continue
    return None


def prune_checkpoints(directory: str, keep: int = 2) -> int:
    """Delete all but the *keep* newest checkpoint files; returns count."""
    if keep < 1:
        raise CheckpointError("must keep at least one checkpoint")
    started = time.perf_counter()
    names = list_checkpoints(directory)
    removed = 0
    for name in names[:-keep]:
        os.unlink(os.path.join(directory, name))
        removed += 1
    obs = current_obs()
    obs.add("store.checkpoints_pruned", removed)
    obs.observe("store.checkpoint_prune_seconds", time.perf_counter() - started)
    return removed


class Checkpointer:
    """Cadenced checkpoint policy bound to one store directory + WAL.

    Counts WAL records since the last checkpoint and, when the cadence
    fires (``every_records``; 0 disables automatic checkpoints),
    snapshots the live structures, truncates the WAL through the
    checkpointed LSN, and prunes old checkpoints down to *keep*.
    """

    def __init__(
        self,
        directory: str,
        wal: WriteAheadLog,
        every_records: int = 512,
        keep: int = 2,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if every_records < 0:
            raise CheckpointError("every_records must be >= 0")
        self.directory = directory
        self.wal = wal
        self.every_records = every_records
        self.keep = keep
        self.fault_injector = fault_injector
        self.records_since_checkpoint = 0
        self.checkpoints_written = 0

    def note_record(self) -> bool:
        """Count one appended WAL record; report whether a checkpoint is due."""
        self.records_since_checkpoint += 1
        return (
            self.every_records > 0
            and self.records_since_checkpoint >= self.every_records
        )

    def checkpoint(
        self,
        graph: DataGraph,
        *,
        version: int,
        index: Optional[StructuralIndex] = None,
        family: Optional[AkIndexFamily] = None,
    ) -> str:
        """Snapshot now, truncate the WAL behind it, prune old checkpoints."""
        lsn = self.wal.last_lsn
        path = write_checkpoint(
            self.directory,
            graph,
            wal_lsn=lsn,
            version=version,
            index=index,
            family=family,
            fault_injector=self.fault_injector,
        )
        self.wal.truncate_upto(lsn)
        prune_checkpoints(self.directory, keep=self.keep)
        self.records_since_checkpoint = 0
        self.checkpoints_written += 1
        return path
