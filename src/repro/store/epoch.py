"""The fencing epoch: one durable integer that arbitrates who may write.

Failover's split-brain hazard is a **zombie primary**: the old primary
is still running (it was partitioned, not dead) while a follower has
been promoted.  If both append to the same WAL history, the timeline
forks and replicas diverge irreconcilably.  The classic fix is a
monotonically increasing *epoch* (a.k.a. term): promotion bumps it, and
every writer checks — durably, in its commit path — that its own epoch
is still current before appending.  A demoted primary discovers the
bump at its next commit and refuses the write
(:class:`~repro.exceptions.StalePrimaryError`); reads stay allowed,
they are merely stale.

The epoch lives in ``epoch.json`` inside the store directory, written
with the same tmp + fsync + rename discipline as a checkpoint so a
crash mid-bump leaves either the old or the new value, never garbage.
A store without the file is at epoch 0 (every pre-replication store, so
the format is backward-compatible).
"""

from __future__ import annotations

import json
import os

from repro.exceptions import StoreError
from repro.store.wal import _fsync_dir

EPOCH_FILE = "epoch.json"


def read_epoch(store_dir: str) -> int:
    """The store's current fencing epoch (0 when the file is absent).

    A malformed epoch file is a :class:`StoreError`, not a silent 0 — a
    fenced-off primary must never mistake damage for permission.
    """
    path = os.path.join(store_dir, EPOCH_FILE)
    try:
        with open(path, "r", encoding="utf-8") as fp:
            document = json.load(fp)
    except FileNotFoundError:
        return 0
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot read epoch file {path!r}: {exc}") from exc
    epoch = document.get("epoch") if isinstance(document, dict) else None
    if not isinstance(epoch, int) or epoch < 0:
        raise StoreError(f"malformed epoch file {path!r}: {document!r}")
    return epoch


def write_epoch(store_dir: str, epoch: int) -> None:
    """Durably record *epoch* as the store's current fencing epoch.

    Refuses to move the epoch backwards — a promotion that lost a race
    with another promotion must fail loudly, not quietly un-fence the
    loser's writes.
    """
    if epoch < 0:
        raise StoreError("epoch must be >= 0")
    current = read_epoch(store_dir)
    if epoch < current:
        raise StoreError(
            f"refusing to lower the fencing epoch from {current} to {epoch}"
        )
    path = os.path.join(store_dir, EPOCH_FILE)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fp:
        json.dump({"epoch": epoch}, fp)
        fp.flush()
        os.fsync(fp.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(store_dir)
