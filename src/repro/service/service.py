"""`IndexService` — the library run as a concurrent index server.

This is the layer the ROADMAP's "serve heavy traffic" north star asks
for, and the setting Blume et al. (batched/parallel incremental
summarization) and Munro et al. (dynamic data structures under
interleaved queries and updates) study: one evolving graph + structural
index, queries and updates arriving together.

Discipline: **single writer, many readers, snapshot isolation.**

* Readers call :meth:`IndexService.query`.  A query grabs the current
  :class:`~repro.service.snapshot.IndexSnapshot` reference once and
  evaluates entirely against that immutable version — it never blocks
  on the writer and never observes a half-applied batch.
* Writers call :meth:`IndexService.submit`, which only enqueues.  The
  single writer — either an explicit :meth:`flush` caller or the
  background thread started by :meth:`start` — drains the queue in
  arrival order, coalesces the batch (:func:`repro.service.queue.coalesce`),
  applies the survivors through ``GuardedMaintainer.apply_batch`` (one
  transaction: a mid-batch failure rolls the whole batch back, so the
  served snapshot never points at corrupt state), and publishes a fresh
  snapshot.

Admission control (``ServiceConfig.admission``) decides what a full
queue means: ``block`` waits for capacity (applying inline when no
writer thread runs), ``shed`` rejects the update and counts it,
``flush`` forces an immediate synchronous commit to make room.

Everything the service does is tallied both in :class:`ServiceStats`
and through the process-wide :mod:`repro.obs` observer (``service.*``
counters/histograms), so a traced serve run shows queue pressure,
coalescing wins, commit latency and staleness side by side with the
maintenance spans underneath.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import (
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    StalePrimaryError,
)
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.oneindex import OneIndex
from repro.maintenance.ak_split_merge import AkSplitMergeMaintainer
from repro.maintenance.split_merge import SplitMergeMaintainer
from repro.obs import current as current_obs
from repro.query.automaton import PathNfa
from repro.query.evaluator import EvaluationReport
from repro.query.path_expression import PathExpression
from repro.resilience.faults import FaultInjector
from repro.resilience.guard import GuardConfig, GuardedMaintainer
from repro.resilience.journal import TouchedSet
from repro.service.queue import BoundedQueue, CoalesceStats, Update, coalesce
from repro.service.snapshot import IndexSnapshot

FAMILIES = ("one", "ak")
ADMISSION_POLICIES = ("block", "shed", "flush")


@dataclass(frozen=True)
class ServiceConfig:
    """How an :class:`IndexService` batches, admits and guards updates."""

    #: which index family serves queries: ``one`` (1-index) or ``ak``
    family: str = "one"
    #: leaf level for the ``ak`` family (ignored for ``one``)
    k: int = 2
    #: most operations drained into one batch (the commit unit)
    batch_max_ops: int = 64
    #: queue capacity before admission control engages (0 = unbounded)
    queue_capacity: int = 256
    #: full-queue policy: ``block`` / ``shed`` / ``flush``
    admission: str = "block"
    #: cancel/dedup batch operations before applying them
    coalesce: bool = True
    #: failure policy for batch transactions (``degrade`` keeps serving
    #: through faults at reconstruction cost; see repro.resilience)
    guard: GuardConfig = field(default_factory=lambda: GuardConfig(policy="degrade"))
    #: background-writer poll interval while the queue is empty (seconds)
    writer_idle_wait: float = 0.05
    #: publish via copy-on-write evolve (O(touched)) instead of a full
    #: O(|G|+|I|) capture per commit; off = always full capture (A/B knob)
    incremental_publish: bool = True

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ServiceError(f"unknown family {self.family!r}; choose from {FAMILIES}")
        if self.admission not in ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {self.admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if self.batch_max_ops < 1:
            raise ServiceError("batch_max_ops must be >= 1")


@dataclass
class ServiceStats:
    """Lifetime tallies of one service (mirrors the ``service.*`` metrics)."""

    queries: int = 0
    submitted: int = 0
    shed: int = 0
    forced_flushes: int = 0
    batches: int = 0
    batch_failures: int = 0
    applied_ops: int = 0
    versions_published: int = 0
    coalescing: CoalesceStats = field(default_factory=CoalesceStats)
    #: per-batch commit wall-clock (seconds), for p50/p95 reporting
    commit_seconds: list[float] = field(default_factory=list)
    #: per-query wall-clock (seconds)
    query_seconds: list[float] = field(default_factory=list)
    #: queries served by each retired version (staleness distribution)
    queries_per_version: list[int] = field(default_factory=list)


@dataclass
class ServedQuery:
    """A query answer plus the version that produced it."""

    report: EvaluationReport
    version: int

    @property
    def matches(self) -> frozenset[int]:
        """The dnode result set."""
        return self.report.matches


@dataclass
class BatchResult:
    """What one writer flush committed."""

    version: int
    drained: int
    applied: int
    coalesced_away: int
    seconds: float
    failed: bool = False


class IndexService:
    """One data graph + structural index, served behind snapshots.

    The service **owns** its graph and maintainer: mutate only through
    :meth:`submit` / :meth:`flush`.  Construction builds the configured
    index from the graph's current state and publishes version 0.

    *fault_injector* is threaded into every batch transaction (soak
    testing); production leaves it ``None``.
    """

    def __init__(
        self,
        graph: DataGraph,
        config: Optional[ServiceConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        maintainer: Optional[object] = None,
        initial_version: int = 0,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.graph = graph
        if maintainer is None:
            if self.config.family == "one":
                index = OneIndex.build(graph)
                maintainer = SplitMergeMaintainer(index)
            else:
                family = AkIndexFamily.build(graph, self.config.k)
                maintainer = AkSplitMergeMaintainer(family)
        else:
            # adopt a pre-built maintainer (the recovery path: its index
            # was checkpoint-loaded, not rebuilt) — it must wrap this
            # graph and match the configured family
            if maintainer.graph is not graph:
                raise ServiceError("adopted maintainer wraps a different graph")
            expected = "index" if self.config.family == "one" else "family"
            if getattr(maintainer, expected, None) is None:
                raise ServiceError(
                    f"adopted maintainer does not serve family "
                    f"{self.config.family!r} (no .{expected})"
                )
        self.guarded = GuardedMaintainer(maintainer, self.config.guard, fault_injector)
        self._touched: Optional[TouchedSet] = (
            TouchedSet() if self.config.incremental_publish else None
        )
        if self._touched is not None:
            self.guarded.track_touched(self._touched)
        self.queue = BoundedQueue(self.config.queue_capacity)
        self.stats = ServiceStats()
        self._writer_lock = threading.Lock()  # the single-writer discipline
        self._queries_this_version = 0
        self._query_count_lock = threading.Lock()
        self._closed = False
        self._fenced_epoch: Optional[int] = None  # set by fence(); see below
        self._writer_thread: Optional[threading.Thread] = None
        self._writer_stop = threading.Event()
        self._telemetry = None  # LiveTelemetry bundle, see start_telemetry()
        self._snapshot = self._capture(version=initial_version)
        self.stats.versions_published = 1

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published version (atomic reference read)."""
        return self._snapshot

    @property
    def version(self) -> int:
        """Version number of the currently published snapshot."""
        return self._snapshot.version

    def query(self, query: "str | PathExpression | PathNfa") -> ServedQuery:
        """Answer a path expression from the current snapshot.

        Never blocks on the writer; the answer is exact for the version
        it names (1-index precision, or A(k) + validation against the
        snapshot's own frozen graph).
        """
        snapshot = self._snapshot  # one atomic grab; evaluate only this
        started = time.perf_counter()
        report = snapshot.evaluate(query)
        elapsed = time.perf_counter() - started
        obs = current_obs()
        self.stats.queries += 1
        self.stats.query_seconds.append(elapsed)
        with self._query_count_lock:
            if snapshot.version == self._snapshot.version:
                self._queries_this_version += 1
            # else: served a just-retired version; its count was already
            # rolled into queries_per_version by the publisher
        obs.add("service.queries")
        obs.observe("service.query_seconds", elapsed)
        return ServedQuery(report=report, version=snapshot.version)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def submit(self, update: Update) -> bool:
        """Enqueue one update under the configured admission policy.

        Returns whether the update was admitted (``shed`` is the only
        policy that can return ``False``).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        self._check_fence()
        obs = current_obs()
        # stamp the submitter's trace context so the writer-side commit
        # span stays a descendant of whatever span enqueued the work
        context = obs.trace_context()
        if context is not None and update.trace_parent is None:
            update = replace(update, trace_parent=context)
        while not self.queue.offer(update):
            policy = self.config.admission
            if policy == "shed":
                self.stats.shed += 1
                obs.add("service.shed")
                return False
            if policy == "flush" or self._writer_thread is None:
                # force-flush — or block with nobody else to drain: the
                # submitter becomes the writer for one synchronous batch
                self.stats.forced_flushes += 1
                obs.add("service.forced_flushes")
                self.flush()
            else:
                self.queue.wait_not_full(timeout=self.config.writer_idle_wait)
        self.stats.submitted += 1
        obs.add("service.submitted")
        obs.set("service.queue_depth", len(self.queue))
        obs.set_max("service.queue_peak", len(self.queue))
        return True

    def submit_nowait(self, update: Update) -> None:
        """Enqueue or raise :class:`QueueFullError` (no policy applied)."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        self._check_fence()
        if not self.queue.offer(update):
            raise QueueFullError(self.queue.capacity)
        self.stats.submitted += 1

    def flush(self) -> Optional[BatchResult]:
        """Drain, coalesce, apply and publish one batch synchronously.

        Returns ``None`` when the queue was empty.  A batch whose
        transaction fails terminally (policy ``raise``, or ``retry``
        exhausted) re-raises after rollback — the published snapshot is
        untouched either way.
        """
        with self._writer_lock:
            batch = self.queue.drain(self.config.batch_max_ops)
            if not batch:
                return None
            return self._commit(batch)

    def drain(self) -> list[BatchResult]:
        """Flush until the queue is empty; returns every batch committed."""
        results = []
        while True:
            result = self.flush()
            if result is None:
                return results
            results.append(result)

    def fence(self, epoch: int) -> None:
        """Demote this service: refuse every write from now on.

        Called on the old primary when failover promotes a follower at
        *epoch*.  Queries keep working (they are merely stale); any
        :meth:`submit` or commit raises
        :class:`~repro.exceptions.StalePrimaryError`.  The in-memory
        flag is the fast path — a durable subclass additionally checks
        the store's epoch file in its commit hook, which catches the
        partitioned zombie that never heard the :meth:`fence` call.
        """
        self._fenced_epoch = epoch
        current_obs().event("service.fenced", epoch=epoch)

    @property
    def fenced(self) -> bool:
        """Has this service been demoted by a failover?"""
        return self._fenced_epoch is not None

    def _check_fence(self) -> None:
        if self._fenced_epoch is not None:
            raise StalePrimaryError(self._fenced_epoch - 1, self._fenced_epoch)

    def _commit(self, batch: list[Update]) -> BatchResult:
        """Apply one drained batch and publish the next version."""
        self._check_fence()
        obs = current_obs()
        if self.config.coalesce:
            survivors, pass_stats = coalesce(batch, self.graph)
            self.stats.coalescing.merge(pass_stats)
            obs.add("service.coalesced_away", pass_stats.removed)
        else:
            survivors = batch
        started = time.perf_counter()
        obs.set("service.queue_depth", len(self.queue))
        # stitch the commit under the (first) submitter's span: the batch
        # may mix producers, so the earliest stamped context wins and the
        # rest stay reachable through the shared commit span
        parent = next((u.trace_parent for u in batch if u.trace_parent is not None), None)
        span = obs.span("service.commit", drained=len(batch), applied=len(survivors))
        if parent is not None:
            span.set_parent(parent)
        with span:
            try:
                if survivors:
                    self.guarded.apply_batch([u.as_call() for u in survivors])
            except Exception:
                # rolled back: graph/index/snapshot all still consistent,
                # but the batch's effects are lost — surface that loudly
                self.stats.batch_failures += 1
                obs.add("service.batch_failures")
                raise
            # durability hook: a persistent subclass logs the applied
            # batch before the snapshot becomes visible to readers
            self._on_batch_applied(survivors)
            publish_started = time.perf_counter()
            snapshot = self._next_snapshot(version=self._snapshot.version + 1)
            self._publish(snapshot)
            # only now may the accumulator reset: an exception anywhere
            # above leaves the touches in place, so the next successful
            # publish still re-captures everything this batch perturbed
            if self._touched is not None:
                self._touched.clear()
            obs.observe(
                "service.publish_seconds", time.perf_counter() - publish_started
            )
        elapsed = time.perf_counter() - started
        self.stats.batches += 1
        self.stats.applied_ops += len(survivors)
        self.stats.commit_seconds.append(elapsed)
        obs.add("service.batches")
        obs.add("service.applied_ops", len(survivors))
        obs.observe("service.batch_ops", len(survivors))
        obs.observe("service.batch_commit_seconds", elapsed)
        return BatchResult(
            version=snapshot.version,
            drained=len(batch),
            applied=len(survivors),
            coalesced_away=len(batch) - len(survivors),
            seconds=elapsed,
        )

    def _on_batch_applied(self, survivors: list[Update]) -> None:
        """Commit hook between a successful apply and snapshot publish.

        The base service is volatile — this is a no-op.
        :class:`repro.store.DurableIndexService` overrides it to append
        the batch to the write-ahead log (and maybe checkpoint) so a
        snapshot is only ever published once its batch is logged.  A
        raise here fails the commit *after* the in-memory apply: nothing
        is published, and the caller must treat the service instance as
        lost (recovery from the store reconstructs the last published
        state).
        """

    @classmethod
    def recover(cls, store_dir: str, **kwargs) -> "IndexService":
        """Reopen a durable service from its store directory.

        Convenience alias for
        :meth:`repro.store.DurableIndexService.recover` (checkpoint load
        + WAL replay + invariant post-check); see that method for the
        keyword arguments.
        """
        from repro.store.service import DurableIndexService

        return DurableIndexService.recover(store_dir, **kwargs)

    def _capture(self, version: int) -> IndexSnapshot:
        """Freeze the live structures into a publishable version."""
        if self.config.family == "one":
            return IndexSnapshot.capture(version, self.graph, index=self.guarded.index)
        return IndexSnapshot.capture(version, self.graph, family=self.guarded.family)

    def _next_snapshot(self, version: int) -> IndexSnapshot:
        """Evolve the published version by the batch's touched set.

        Full capture when incremental publication is off or the touched
        set was invalidated wholesale (degrade-rebuild renames every
        inode — nothing of the previous version is reusable).
        """
        if self._touched is None or self._touched.full:
            return self._capture(version)
        if self.config.family == "one":
            return IndexSnapshot.evolve(
                self._snapshot, version, self.graph, self._touched,
                index=self.guarded.index,
            )
        return IndexSnapshot.evolve(
            self._snapshot, version, self.graph, self._touched,
            family=self.guarded.family,
        )

    def _publish(self, snapshot: IndexSnapshot) -> None:
        """Swap the served version and retire the old one's staleness count."""
        obs = current_obs()
        with self._query_count_lock:
            retired = self._queries_this_version
            self._queries_this_version = 0
            self._snapshot = snapshot
        self.stats.queries_per_version.append(retired)
        self.stats.versions_published += 1
        obs.observe("service.queries_per_version", retired)
        obs.add("service.versions")
        obs.set("graph.bytes", self._graph_bytes())
        obs.set("index.bytes", self._index_bytes())

    def _graph_bytes(self) -> int:
        """Approximate resident bytes of the live graph (O(#pages))."""
        return self.graph.approx_bytes()

    def _index_bytes(self) -> int:
        """Approximate resident bytes of the live index or family."""
        if self.config.family == "one":
            return self.guarded.index.approx_bytes()
        return self.guarded.family.approx_bytes()

    # ------------------------------------------------------------------
    # Background writer
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background writer thread (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._writer_thread is not None:
            return
        self._writer_stop.clear()
        self._writer_thread = threading.Thread(
            target=self._writer_loop, name="repro-index-writer", daemon=True
        )
        self._writer_thread.start()

    def stop(self) -> None:
        """Stop the writer thread and drain whatever is still queued."""
        thread = self._writer_thread
        if thread is None:
            return
        self._writer_stop.set()
        thread.join()
        self._writer_thread = None
        self.drain()

    def close(self) -> None:
        """Stop serving: drain outstanding work, reject new submissions."""
        self.stop()
        self.drain()
        self.stop_telemetry()
        self._closed = True

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def start_telemetry(self, **kwargs) -> "object":
        """Attach a live telemetry plane to this service (idempotent).

        Builds a :class:`repro.obs.export.LiveTelemetry` bundle —
        sliding-window metrics attached to the current observer, an SLO
        watchdog, optionally a flight recorder (``dump_dir=``) and a
        JSONL reporter (``jsonl_path=``) — and starts its ``/metrics`` +
        ``/health`` HTTP endpoint (``port=0`` picks an ephemeral port;
        pass ``serve=False`` for windows-only operation).  Keyword
        arguments are forwarded to ``LiveTelemetry``; the bundle is
        stopped by :meth:`close` or an explicit :meth:`stop_telemetry`.

        Returns the bundle (read ``.port`` / ``.url`` / ``.health()``).
        """
        if self._telemetry is not None:
            return self._telemetry
        from repro.obs.export import LiveTelemetry

        self._telemetry = LiveTelemetry(service=self, **kwargs)
        self._telemetry.start()
        return self._telemetry

    def stop_telemetry(self) -> None:
        """Tear down the telemetry bundle started by :meth:`start_telemetry`."""
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None

    def health(self) -> dict:
        """Service-level liveness facts for the ``/health`` endpoint."""
        return {
            "family": self.config.family,
            "version": self.version,
            "closed": self._closed,
            "writer_alive": (
                self._writer_thread is not None and self._writer_thread.is_alive()
            ),
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "admission": self.config.admission,
            "queries": self.stats.queries,
            "submitted": self.stats.submitted,
            "shed": self.stats.shed,
            "batches": self.stats.batches,
            "batch_failures": self.stats.batch_failures,
            "versions_published": self.stats.versions_published,
            "graph_bytes": self._graph_bytes(),
            "index_bytes": self._index_bytes(),
        }

    def _writer_loop(self) -> None:
        """The background single writer: batch up, commit, repeat."""
        while not self._writer_stop.is_set():
            if len(self.queue) == 0:
                self.queue.wait_not_empty(timeout=self.config.writer_idle_wait)
                continue
            self.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Assert the live graph/index pair is internally consistent.

        Runs the library's full oracles (graph invariants + index
        support-counter check against from-scratch derivation).  The
        soak suite calls this after fault-injected runs to prove the
        service never served from, nor left behind, corrupt state.
        """
        self.graph.check_invariants()
        if self.guarded.index is not None:
            self.guarded.index.check_invariants()
        if self.guarded.family is not None:
            # materialising a level re-derives the partition's iedges and
            # validates extents against the graph
            self.guarded.family.level_index(self.config.k).check_invariants()

    def queue_depth(self) -> int:
        """Updates currently waiting for the writer."""
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IndexService family={self.config.family!r} v{self.version} "
            f"queued={len(self.queue)} inodes={self._snapshot.num_inodes}>"
        )
