"""The write side of the service: queued updates, batching, coalescing.

Updates do not hit the maintainer one by one — they are enqueued,
drained in arrival order up to a batch bound, **coalesced**, and applied
as one guarded transaction.  Coalescing is where batching wins beyond
amortised snapshot publishing: real update streams are full of churn
(an edge inserted and deleted again within one batch window, repeated
identical operations), and every cancelled pair is maintenance work —
splits, merges, journaling — that never happens at all.

Coalescing rules (:func:`coalesce`), applied per edge ``(source,
target)`` key over the batch's arrival order:

* ``insert e`` followed later by ``delete e``  → both dropped (the edge
  was absent before the batch and is absent after it);
* ``delete e`` followed later by ``insert e`` of the same
  :class:`~repro.graph.datagraph.EdgeKind` → both dropped (present
  before, present after, same kind);
* an operation identical to the previous surviving operation on its key
  → duplicate, dropped (a validated stream never produces these, but a
  lossy client retry can).

Only adjacent *surviving* operations on the same key cancel, so chains
collapse fully (``insert, delete, insert, delete`` → nothing).
Operations on different keys never reorder relative to each other, and
**non-edge operations are barriers**: a subgraph addition or deletion
flushes the pending per-key state, because it may create or remove the
very endpoints queued edge operations refer to.  This keeps coalescing
sound without knowing subgraph member sets.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import ServiceError
from repro.graph.datagraph import DataGraph, EdgeKind

#: queued operation names → the GuardedMaintainer method they map to
EDGE_OPS = ("insert_edge", "delete_edge")
SUBGRAPH_OPS = ("add_subgraph", "delete_subgraph")
NODE_OPS = ("insert_node", "delete_node")
VALUE_OPS = ("set_value",)
ALL_OPS = EDGE_OPS + SUBGRAPH_OPS + NODE_OPS + VALUE_OPS


@dataclass(frozen=True)
class Update:
    """One queued mutation: a guarded-maintainer method name plus args.

    ``trace_parent`` is the submitting thread's open span id (stamped by
    ``IndexService.submit`` from ``Observer.trace_context``); the writer
    thread reparents its commit span under it so a trace stitches the
    producer and the consumer of an update back together.  It is carried
    metadata, not identity — excluded from equality so coalescing still
    cancels identical operations submitted from different spans.
    """

    op: str
    args: tuple
    trace_parent: Optional[int] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ServiceError(f"unknown update op {self.op!r}; choose from {ALL_OPS}")

    # -- constructors --------------------------------------------------

    @classmethod
    def insert_edge(
        cls, source: int, target: int, kind: EdgeKind = EdgeKind.TREE
    ) -> "Update":
        """A dedge insertion."""
        return cls("insert_edge", (source, target, kind))

    @classmethod
    def delete_edge(cls, source: int, target: int) -> "Update":
        """A dedge deletion."""
        return cls("delete_edge", (source, target))

    @classmethod
    def insert_node(cls, parent: int, label: str, value: object = None) -> "Update":
        """A dnode creation under *parent*."""
        return cls("insert_node", (parent, label, value))

    @classmethod
    def delete_node(cls, dnode: int) -> "Update":
        """A dnode deletion."""
        return cls("delete_node", (dnode,))

    @classmethod
    def add_subgraph(
        cls,
        subgraph: DataGraph,
        subgraph_root: int,
        cross_edges: Iterable = (),
        preserve_oids: bool = False,
    ) -> "Update":
        """A rooted subgraph addition.

        ``preserve_oids=True`` keeps the subgraph's oids in the host
        graph (the corpus layer pre-allocates oids so it can compile
        later diffs before this op commits); the flag is only appended
        to the args when set, keeping the wire encoding of the common
        case unchanged.
        """
        args: tuple = (subgraph, subgraph_root, tuple(cross_edges))
        if preserve_oids:
            args += (True,)
        return cls("add_subgraph", args)

    @classmethod
    def delete_subgraph(cls, subgraph_root: int) -> "Update":
        """A rooted subgraph deletion."""
        return cls("delete_subgraph", (subgraph_root,))

    @classmethod
    def set_value(cls, dnode: int, value: object) -> "Update":
        """A dnode value change (index-neutral, but journaled/replicated)."""
        return cls("set_value", (dnode, value))

    # -- classification ------------------------------------------------

    @property
    def is_edge_op(self) -> bool:
        """Whether this update is an edge insert/delete (coalescable)."""
        return self.op in EDGE_OPS

    @property
    def edge_key(self) -> tuple[int, int]:
        """The ``(source, target)`` coalescing key of an edge op."""
        if not self.is_edge_op:
            raise ServiceError(f"{self.op!r} has no edge key")
        return (self.args[0], self.args[1])

    @property
    def edge_kind(self) -> Optional[EdgeKind]:
        """The kind of an ``insert_edge`` (``None`` for other ops)."""
        if self.op == "insert_edge":
            return self.args[2]
        return None

    def as_call(self) -> tuple[str, tuple]:
        """The ``(method, args)`` pair ``GuardedMaintainer.apply_batch`` takes."""
        return (self.op, self.args)


@dataclass
class CoalesceStats:
    """What one coalescing pass did to a batch."""

    examined: int = 0
    kept: int = 0
    cancelled: int = 0  # operations removed as insert/delete (or reverse) pairs
    deduplicated: int = 0  # operations removed as exact repeats

    @property
    def removed(self) -> int:
        """Total operations that will never touch the maintainer."""
        return self.cancelled + self.deduplicated

    def merge(self, other: "CoalesceStats") -> None:
        """Accumulate another pass's counts (service lifetime totals)."""
        self.examined += other.examined
        self.kept += other.kept
        self.cancelled += other.cancelled
        self.deduplicated += other.deduplicated


def coalesce(
    batch: list[Update], graph: Optional[DataGraph] = None
) -> tuple[list[Update], CoalesceStats]:
    """Reduce a batch to its net effect (see the module docstring).

    *graph* is the live data graph the batch is **about to be applied
    to** (i.e. none of the batch has run yet).  It is consulted for one
    rule only: a ``delete e`` → ``insert e`` pair cancels only when the
    insert provably restores the pre-batch edge kind, which is readable
    from the graph exactly when the delete is the first operation on
    that edge in the batch.  Without *graph*, that rule is disabled —
    never wrong, just less thorough.

    Returns the surviving operations in their original relative order
    plus the pass's :class:`CoalesceStats`.  The input list is not
    modified.
    """
    stats = CoalesceStats(examined=len(batch))
    # kept[i] is None once batch[i] has been cancelled/deduplicated;
    # per-key stacks hold *indexes* of surviving edge ops since the last
    # barrier, so cancellation can reach back and void them.
    kept: list[Optional[Update]] = list(batch)
    open_ops: dict[tuple[int, int], list[int]] = {}
    ops_on_key: dict[tuple[int, int], int] = {}
    for i, update in enumerate(batch):
        if not update.is_edge_op:
            open_ops.clear()  # barrier: subgraph/node ops may touch endpoints
            continue
        key = update.edge_key
        ops_on_key[key] = ops_on_key.get(key, 0) + 1
        stack = open_ops.setdefault(key, [])
        if stack:
            previous = kept[stack[-1]]
            assert previous is not None
            if previous.op == update.op and previous.args == update.args:
                kept[i] = None  # exact repeat of the surviving op
                stats.deduplicated += 1
                continue
            if previous.op == "insert_edge" and update.op == "delete_edge":
                # insert-then-delete of one edge is an identity on any
                # state where the insert is legal; net no-op
                kept[stack.pop()] = None
                kept[i] = None
                stats.cancelled += 2
                continue
            if (
                previous.op == "delete_edge"
                and update.op == "insert_edge"
                # the delete must be the batch's first touch of this key,
                # so the live graph still shows the pre-batch edge …
                and ops_on_key[key] == 2
                and graph is not None
                and graph.has_edge(*key)
                # … and the insert must restore its kind exactly
                and graph.edge_kind(*key) == update.edge_kind
            ):
                kept[stack.pop()] = None
                kept[i] = None
                stats.cancelled += 2
                continue
        stack.append(i)
    survivors = [u for u in kept if u is not None]
    stats.kept = len(survivors)
    return survivors, stats


class BoundedQueue:
    """A thread-safe bounded FIFO of :class:`Update` objects.

    Policy-free: :meth:`offer` reports rejection instead of deciding
    what rejection means — admission policy (block / shed / flush)
    lives in :class:`~repro.service.service.IndexService`, which owns
    the means to make room.  ``capacity <= 0`` means unbounded.
    """

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self._items: list[Update] = []
        self._lock = threading.Lock()
        self.not_full = threading.Condition(self._lock)
        self.not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether the queue is at capacity."""
        return 0 < self.capacity <= len(self._items)

    def offer(self, update: Update) -> bool:
        """Enqueue unless full; returns whether the update was admitted."""
        with self._lock:
            if self.full:
                return False
            self._items.append(update)
            self.not_empty.notify()
            return True

    def wait_not_full(self, timeout: Optional[float] = None) -> bool:
        """Block until space frees up (the ``block`` admission policy)."""
        with self.not_full:
            return self.not_full.wait_for(lambda: not self.full, timeout=timeout)

    def wait_not_empty(self, timeout: Optional[float] = None) -> bool:
        """Block until at least one update is queued (writer idle loop)."""
        with self.not_empty:
            return self.not_empty.wait_for(lambda: len(self._items) > 0, timeout=timeout)

    def drain(self, max_ops: int = 0) -> list[Update]:
        """Dequeue up to *max_ops* updates in FIFO order (0 = everything)."""
        with self._lock:
            if max_ops <= 0 or max_ops >= len(self._items):
                batch, self._items = self._items, []
            else:
                batch = self._items[:max_ops]
                del self._items[:max_ops]
            if batch:
                self.not_full.notify_all()
            return batch
