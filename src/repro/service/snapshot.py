"""Immutable published index versions (the read side of the service).

The serving discipline of :class:`~repro.service.service.IndexService`
is single-writer / multi-reader: queries never touch the live graph or
the live index the writer is mutating.  Instead, after every committed
batch the writer *publishes* an :class:`IndexSnapshot` — a frozen copy
of the index graph (extents, labels, iedges) plus a frozen copy of the
data graph — and swaps it in atomically (one reference assignment).
Readers grab the current snapshot reference once per query and evaluate
entirely against it, so a query sees one consistent version end to end
no matter how many batches commit underneath it.

Freezing costs O(|G| + |I|) per publish; the batching writer amortises
that across every operation in the batch, which is one of the two
reasons batches beat per-update commits (the other is the per-batch
invariant check — see :meth:`GuardedMaintainer.apply_batch`).

Both frozen views duck-type exactly the surface the evaluators in
:mod:`repro.query` consume, so ``evaluate_on_graph(snapshot.graph, q)``
and ``snapshot.evaluate(q)`` run unchanged — the differential serving
tests lean on that to byte-compare index-served answers against
from-scratch graph evaluation *of the same version*.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import GraphError, StructuralIndexError
from repro.graph.datagraph import DataGraph
from repro.index.akindex import AkIndexFamily
from repro.index.base import StructuralIndex
from repro.query.automaton import PathNfa
from repro.query.evaluator import EvaluationReport
from repro.query.index_evaluator import evaluate_on_ak, evaluate_on_index
from repro.query.path_expression import PathExpression


class FrozenGraph:
    """A read-only adjacency copy of a :class:`DataGraph` at one version.

    Exposes the evaluation surface (``root`` / ``iter_succ`` /
    ``iter_pred`` / ``label``) the query engine walks, nothing that
    mutates.  Adjacency is stored as tuples, so even a caller holding a
    reference cannot perturb a published version.
    """

    __slots__ = ("_succ", "_pred", "_label", "_root")

    def __init__(
        self,
        succ: dict[int, tuple[int, ...]],
        pred: dict[int, tuple[int, ...]],
        label: dict[int, str],
        root: Optional[int],
    ):
        self._succ = succ
        self._pred = pred
        self._label = label
        self._root = root

    @classmethod
    def capture(cls, graph: DataGraph) -> "FrozenGraph":
        """Freeze the graph's current nodes, labels and adjacency."""
        succ = {w: tuple(graph.iter_succ(w)) for w in graph.nodes()}
        pred = {w: tuple(graph.iter_pred(w)) for w in graph.nodes()}
        label = {w: graph.label(w) for w in graph.nodes()}
        root = graph.root if graph.has_root else None
        return cls(succ, pred, label, root)

    # -- the evaluation surface of DataGraph ---------------------------

    @property
    def has_root(self) -> bool:
        """Whether the captured graph had a ROOT node."""
        return self._root is not None

    @property
    def root(self) -> int:
        """The ROOT node's oid."""
        if self._root is None:
            raise GraphError("frozen graph has no root")
        return self._root

    def iter_succ(self, oid: int) -> Iterator[int]:
        """Successors of *oid* at capture time."""
        return iter(self._succ[oid])

    def iter_pred(self, oid: int) -> Iterator[int]:
        """Predecessors of *oid* at capture time."""
        return iter(self._pred[oid])

    def label(self, oid: int) -> str:
        """Label of *oid* at capture time."""
        return self._label[oid]

    def nodes(self) -> Iterator[int]:
        """Iterate over the captured node ids."""
        return iter(self._label)

    def has_node(self, oid: int) -> bool:
        """Whether *oid* existed at capture time."""
        return oid in self._label

    @property
    def num_nodes(self) -> int:
        """Number of captured dnodes."""
        return len(self._label)

    @property
    def num_edges(self) -> int:
        """Number of captured dedges."""
        return sum(len(targets) for targets in self._succ.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FrozenGraph nodes={self.num_nodes} edges={self.num_edges}>"


class FrozenIndex:
    """A read-only extent/iedge copy of a :class:`StructuralIndex`.

    Duck-types the surface :func:`repro.query.evaluate_on_index` and
    :func:`repro.query.evaluate_on_ak` consume (``inodes`` / ``label_of``
    / ``isucc`` / ``extent`` / ``.graph``); the attached graph is the
    :class:`FrozenGraph` of the same version, so A(k) validation walks
    the matching data, never the writer's live copy.
    """

    __slots__ = ("graph", "_extent", "_label", "_isucc")

    def __init__(
        self,
        graph: FrozenGraph,
        extent: dict[int, frozenset[int]],
        label: dict[int, str],
        isucc: dict[int, tuple[int, ...]],
    ):
        self.graph = graph
        self._extent = extent
        self._label = label
        self._isucc = isucc

    @classmethod
    def capture(cls, index: StructuralIndex, graph: FrozenGraph) -> "FrozenIndex":
        """Freeze an index's partition and iedges against *graph*."""
        extent = {i: frozenset(index.extent(i)) for i in index.inodes()}
        label = {i: index.label_of(i) for i in index.inodes()}
        isucc = {i: tuple(index.isucc(i)) for i in index.inodes()}
        return cls(graph, extent, label, isucc)

    # -- the evaluation surface of StructuralIndex ---------------------

    def inodes(self) -> Iterator[int]:
        """Iterate over the captured inode ids."""
        return iter(self._extent)

    def label_of(self, inode: int) -> str:
        """The label shared by the extent of *inode*."""
        self._require(inode)
        return self._label[inode]

    def extent(self, inode: int) -> frozenset[int]:
        """The captured extent of *inode*."""
        self._require(inode)
        return self._extent[inode]

    def isucc(self, inode: int) -> Iterator[int]:
        """Captured index successors of *inode*."""
        self._require(inode)
        return iter(self._isucc[inode])

    @property
    def num_inodes(self) -> int:
        """Number of captured inodes."""
        return len(self._extent)

    def _require(self, inode: int) -> None:
        if inode not in self._extent:
            raise StructuralIndexError(f"inode {inode} does not exist")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FrozenIndex inodes={self.num_inodes}>"


class IndexSnapshot:
    """One published, immutable index version.

    ``version`` counts committed batches (version 0 is the freshly built
    index before any update).  ``kind`` records which family produced it:
    ``"one"`` evaluates precisely on the index graph alone; ``"ak"``
    evaluates on the materialised leaf level and validates long or
    descendant-axis expressions against the snapshot's own frozen data
    graph (Section 3's validation, version-consistently).
    """

    __slots__ = ("version", "kind", "k", "graph", "index")

    def __init__(
        self,
        version: int,
        kind: str,
        k: int,
        graph: FrozenGraph,
        index: FrozenIndex,
    ):
        if kind not in ("one", "ak"):
            raise ValueError(f"unknown snapshot kind {kind!r}")
        self.version = version
        self.kind = kind
        self.k = k
        self.graph = graph
        self.index = index

    @classmethod
    def capture(
        cls,
        version: int,
        graph: DataGraph,
        index: Optional[StructuralIndex] = None,
        family: Optional[AkIndexFamily] = None,
    ) -> "IndexSnapshot":
        """Freeze the writer's live structures into one version.

        Exactly one of *index* (1-index service) and *family* (A(k)
        service, materialised at its leaf level) must be given.
        """
        if (index is None) == (family is None):
            raise ValueError("capture needs exactly one of index= or family=")
        frozen_graph = FrozenGraph.capture(graph)
        if index is not None:
            return cls(
                version, "one", 0, frozen_graph, FrozenIndex.capture(index, frozen_graph)
            )
        leaf = family.level_index(family.k)
        return cls(
            version, "ak", family.k, frozen_graph, FrozenIndex.capture(leaf, frozen_graph)
        )

    def evaluate(self, query: "str | PathExpression | PathNfa") -> EvaluationReport:
        """Answer a path expression from this version, exactly.

        1-index snapshots are precise by construction; A(k) snapshots
        run the validation pass when the expression needs it, against
        this snapshot's frozen graph.
        """
        if self.kind == "one":
            return evaluate_on_index(self.index, query)
        return evaluate_on_ak(self.index, self.k, query)

    @property
    def num_inodes(self) -> int:
        """Index size of this version."""
        return self.index.num_inodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IndexSnapshot v{self.version} kind={self.kind!r} "
            f"inodes={self.num_inodes} nodes={self.graph.num_nodes}>"
        )
